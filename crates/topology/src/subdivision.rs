//! The standard chromatic subdivision `Chr` and recipe-driven subdivisions.
//!
//! A facet of `Chr σ` corresponds to an ordered set partition ([`Osp`]) of
//! the colors of `σ` (an immediate-snapshot run, Section 2 of the paper);
//! the vertex of color `c` is `(c, face of σ spanned by c's view)`.
//! Subdividing every facet of a complex and gluing along shared faces
//! (vertices are deduplicated by their canonical key `(color, carrier)`)
//! yields `Chr K`. Iterating gives `Chr^m K`, which captures the `m`-round
//! iterated-immediate-snapshot model.
//!
//! A *recipe* is a fixed-length sequence of OSPs describing a facet of
//! `Chr^ℓ σ` relative to `σ`; recipe-driven subdivision
//! ([`Complex::subdivide_patterned`]) generates only the facets whose recipe
//! is allowed, which is exactly the iteration operation on affine tasks
//! (`L^m` of the paper).

use std::collections::HashMap;
use std::sync::Arc;

use crate::color::{ColorSet, ProcessId};
use crate::complex::{Complex, Structure};
use crate::intern::{FacetAccumulator, InternArena};
use crate::osp::{osp_table, Osp};
use crate::parallel::{parallel_map_ranges, subdivision_threads};
use crate::simplex::{Simplex, VertexId};

/// A facet of `Chr^ℓ σ` described relative to `σ`: one ordered set
/// partition of `χ(σ)` per subdivision round.
pub type Recipe = Vec<Osp>;

/// Enumerates all depth-`ℓ` recipes over the color set `ground`:
/// all sequences of `ℓ` ordered set partitions of `ground`.
pub fn all_recipes(ground: ColorSet, depth: usize) -> Vec<Recipe> {
    let osps = osp_table(ground);
    let mut out: Vec<Recipe> = vec![Vec::new()];
    for _ in 0..depth {
        let mut next = Vec::with_capacity(out.len() * osps.len());
        for prefix in &out {
            for osp in osps.iter() {
                let mut r = prefix.clone();
                r.push(osp.clone());
                next.push(r);
            }
        }
        out = next;
    }
    out
}

/// One subdivision round under construction: an interning arena for the
/// round's vertices plus its (order-preserving, deduplicated) facet list.
struct LevelBuilder {
    arena: InternArena,
    facets: FacetAccumulator,
}

impl LevelBuilder {
    fn new() -> Self {
        LevelBuilder {
            arena: InternArena::new(),
            facets: FacetAccumulator::new(),
        }
    }

    fn new_chain(depth: usize) -> Vec<LevelBuilder> {
        (0..depth).map(|_| LevelBuilder::new()).collect()
    }
}

/// Expands one input facet into the level builders: for every allowed
/// recipe, walks the rounds interning the generated vertices and facets.
///
/// Round-0 carriers reference the *input* level's (global) vertex ids;
/// round `r ≥ 1` carriers reference the ids issued by `builders[r - 1]`.
/// Base-carrier data always references the base (level-0) complex, so it is
/// chunk-independent.
fn expand_facet(
    input: &Complex,
    facet: &Simplex,
    recipe_cache: &HashMap<ColorSet, Arc<Vec<Recipe>>>,
    builders: &mut [LevelBuilder],
) {
    let colors = input.colors(facet);
    let recipe_set = &recipe_cache[&colors];
    for recipe in recipe_set.iter() {
        // `current_ids` is the simplex being subdivided at each round, as
        // (color, vertex id, base_carrier, base_colors) per vertex.
        let mut current_ids: Vec<(ProcessId, VertexId, Simplex, ColorSet)> = facet
            .vertices()
            .iter()
            .map(|&v| {
                let d = input.vertex(v);
                (d.color, v, d.base_carrier.clone(), d.base_colors)
            })
            .collect();
        for (round, osp) in recipe.iter().enumerate() {
            assert_eq!(
                osp.ground(),
                colors,
                "recipe OSP ground set must equal the facet's colors"
            );
            let builder = &mut builders[round];
            let mut next_ids = Vec::with_capacity(current_ids.len());
            for &(c, _, _, _) in &current_ids {
                let view = osp.view_of(c).expect("osp covers every color of the facet");
                // Carrier: the face of `current` spanned by `view`.
                let carrier = Simplex::from_vertices(
                    current_ids
                        .iter()
                        .filter(|&&(cc, _, _, _)| view.contains(cc))
                        .map(|&(_, v, _, _)| v),
                );
                let mut base_carrier = Simplex::empty();
                let mut base_colors = ColorSet::EMPTY;
                for &(cc, _, ref bc, bcol) in &current_ids {
                    if view.contains(cc) {
                        base_carrier = base_carrier.union(bc);
                        base_colors = base_colors.union(bcol);
                    }
                }
                let id = builder
                    .arena
                    .intern(c, carrier, base_carrier.clone(), base_colors);
                next_ids.push((c, id, base_carrier, base_colors));
            }
            builder.facets.push(Simplex::from_vertices(
                next_ids.iter().map(|&(_, v, _, _)| v),
            ));
            current_ids = next_ids;
        }
    }
}

/// Rewrites a simplex's vertex ids through a local→global id map.
fn remap(simplex: &Simplex, map: &[VertexId]) -> Simplex {
    Simplex::from_vertices(simplex.vertices().iter().map(|&v| map[v.index()]))
}

/// Merges per-chunk builder chains into one global chain, replaying every
/// chunk's intern and facet sequences *in chunk order*.
///
/// Chunks are contiguous ranges of the input facet list, so replaying them
/// in order reproduces the serial first-occurrence order of every vertex
/// key and facet exactly: the merged tables are byte-identical to a serial
/// build. Cross-chunk duplicates are safe because the base data of a vertex
/// is a function of its canonical key `(color, carrier)`.
fn merge_builder_chains(chunks: Vec<Vec<LevelBuilder>>, depth: usize) -> Vec<LevelBuilder> {
    let mut global = LevelBuilder::new_chain(depth);
    for chain in chunks {
        // `prev_map`: local vertex index at the previous round -> global id.
        let mut prev_map: Vec<VertexId> = Vec::new();
        for (round, local) in chain.into_iter().enumerate() {
            let g = &mut global[round];
            let mut map = Vec::with_capacity(local.arena.len());
            for d in local.arena.vertex_table() {
                // Round-0 carriers already hold input-level (global) ids;
                // deeper carriers hold the previous round's local ids.
                let carrier = if round == 0 {
                    d.carrier.clone()
                } else {
                    remap(&d.carrier, &prev_map)
                };
                map.push(
                    g.arena
                        .intern(d.color, carrier, d.base_carrier.clone(), d.base_colors),
                );
            }
            for f in local.facets.into_facets() {
                g.facets.push(remap(&f, &map));
            }
            prev_map = map;
        }
    }
    global
}

impl Complex {
    /// The standard chromatic subdivision `Chr K` of this complex.
    ///
    /// Every facet is replaced by its chromatic subdivision; shared faces
    /// are glued (vertices deduplicated by `(color, carrier)`), so the
    /// result is a genuine subdivision of `K`.
    ///
    /// # Examples
    ///
    /// ```
    /// use act_topology::Complex;
    ///
    /// let chr2 = Complex::standard(3).chromatic_subdivision().chromatic_subdivision();
    /// assert_eq!(chr2.facet_count(), 13 * 13); // Chr² s for n = 3
    /// assert_eq!(chr2.level(), 2);
    /// ```
    pub fn chromatic_subdivision(&self) -> Complex {
        self.subdivide_patterned(1, |colors| all_recipes(colors, 1))
    }

    /// [`Complex::chromatic_subdivision`] with an explicit worker-thread
    /// count (the default uses [`crate::subdivision_threads`]). The result
    /// is identical for every thread count.
    pub fn chromatic_subdivision_threaded(&self, threads: usize) -> Complex {
        self.subdivide_patterned_threaded(1, |colors| all_recipes(colors, 1), threads)
    }

    /// The `m`-fold iterated standard chromatic subdivision `Chr^m K`.
    pub fn iterated_subdivision(&self, m: usize) -> Complex {
        self.iterated_subdivision_threaded(m, subdivision_threads())
    }

    /// [`Complex::iterated_subdivision`] with an explicit worker-thread
    /// count. The result is identical for every thread count.
    pub fn iterated_subdivision_threaded(&self, m: usize, threads: usize) -> Complex {
        let mut c = self.clone();
        for _ in 0..m {
            c = c.chromatic_subdivision_threaded(threads);
        }
        c
    }

    /// Recipe-driven subdivision: for every facet `σ` of this complex,
    /// generates the facets of `Chr^ℓ σ` whose recipe (relative to `σ`)
    /// appears in `recipes(χ(σ))`, then glues shared faces.
    ///
    /// With `recipes = all_recipes(·, 1)` this is `Chr`; with the recipe set
    /// of an affine task `L` it computes one iteration step of `L` applied
    /// to this complex.
    ///
    /// Returns a complex `ℓ` levels deeper. The intermediate levels contain
    /// exactly the simplices generated as carriers along the way.
    ///
    /// # Panics
    ///
    /// Panics if a recipe's ground set does not match the facet's colors or
    /// its length differs from `depth`.
    pub fn subdivide_patterned<F>(&self, depth: usize, recipes: F) -> Complex
    where
        F: Fn(ColorSet) -> Vec<Recipe>,
    {
        self.subdivide_patterned_threaded(depth, recipes, subdivision_threads())
    }

    /// [`Complex::subdivide_patterned`] with an explicit worker-thread
    /// count.
    ///
    /// Input facets are fanned out over contiguous chunks, each chunk
    /// builds private interning arenas, and the per-chunk arenas are merged
    /// in chunk order — reproducing the serial first-occurrence order of
    /// every vertex and facet, so the result is byte-identical for every
    /// thread count (`threads = 1` is the serial build).
    pub fn subdivide_patterned_threaded<F>(
        &self,
        depth: usize,
        recipes: F,
        threads: usize,
    ) -> Complex
    where
        F: Fn(ColorSet) -> Vec<Recipe>,
    {
        assert!(depth >= 1, "subdivision depth must be at least 1");
        let span = act_obs::span("subdivide.patterned");

        // Recipe sets are computed once per distinct facet color set, up
        // front, so worker threads only read the shared cache (and the
        // closure needs no `Sync` bound).
        let mut recipe_cache: HashMap<ColorSet, Arc<Vec<Recipe>>> = HashMap::new();
        for facet in self.facets() {
            let colors = self.colors(facet);
            assert_eq!(
                colors.len(),
                facet.len(),
                "subdivide_patterned requires a chromatic complex"
            );
            recipe_cache.entry(colors).or_insert_with(|| {
                let set = recipes(colors);
                for recipe in &set {
                    assert_eq!(recipe.len(), depth, "recipe depth mismatch");
                }
                Arc::new(set)
            });
        }

        let facets = self.facets();
        let threads = threads.clamp(1, facets.len().max(1));
        let builders = if threads <= 1 {
            let mut chain = LevelBuilder::new_chain(depth);
            for facet in facets {
                expand_facet(self, facet, &recipe_cache, &mut chain);
            }
            chain
        } else {
            // Per-chunk telemetry is emitted from the worker threads
            // (sinks are `Sync`); the global `seq` field totally orders
            // the interleaved events.
            let chunk_chains = parallel_map_ranges(facets.len(), threads, |range| {
                let chunk_span = act_obs::span("subdivide.chunk");
                let chunk_start = range.start;
                let chunk_len = range.len();
                let mut chain = LevelBuilder::new_chain(depth);
                for facet in &facets[range] {
                    expand_facet(self, facet, &recipe_cache, &mut chain);
                }
                if act_obs::enabled() {
                    let interned: usize = chain.iter().map(|b| b.arena.len()).sum();
                    chunk_span
                        .finish()
                        .u64("chunk_start", chunk_start as u64)
                        .u64("facets_in", chunk_len as u64)
                        .u64("interned_vertices", interned as u64)
                        .emit();
                }
                chain
            });
            merge_builder_chains(chunk_chains, depth)
        };

        // Assemble the chain of complexes.
        let mut parent = self.clone();
        let mut result = None;
        for (i, b) in builders.into_iter().enumerate() {
            let (vertices, key_index) = b.arena.into_parts();
            let structure = Arc::new(Structure {
                n: self.num_processes(),
                level: parent.level() + 1,
                parent: Some(parent.clone()),
                vertices,
                key_index,
            });
            let complex = Complex::assemble(structure, b.facets.into_facets());
            parent = complex.clone();
            if i + 1 == depth {
                result = Some(complex);
            }
        }
        let result = result.expect("depth >= 1");
        if act_obs::enabled() {
            span.finish()
                .u64("depth", depth as u64)
                .u64("threads", threads as u64)
                .u64("facets_in", facets.len() as u64)
                .u64("facets_out", result.facet_count() as u64)
                .u64("interned_vertices", result.num_vertices() as u64)
                .emit();
        }
        result
    }

    /// Resolves the simplex of this complex described by a recipe relative
    /// to a base facet: round `i` of `recipe` is the ordered set partition
    /// of some color set `C ⊆ χ(base_facet)` describing the `i`-th
    /// immediate snapshot.
    ///
    /// Returns `None` if some described vertex does not exist at the
    /// corresponding level (possible when this complex was built by a
    /// patterned subdivision that never generated it).
    ///
    /// # Panics
    ///
    /// Panics if `recipe`'s length differs from this complex's level, if
    /// the rounds use different ground sets, or if the ground set is not a
    /// subset of the base facet's colors.
    pub fn simplex_for_recipe(&self, base_facet: &Simplex, recipe: &[Osp]) -> Option<Simplex> {
        assert_eq!(
            recipe.len(),
            self.level(),
            "recipe length must equal the level"
        );
        // Collect the level chain: base, level 1, ..., self.
        let mut chain: Vec<Complex> = Vec::with_capacity(self.level() + 1);
        let mut c = self.clone();
        loop {
            chain.push(c.clone());
            match c.parent() {
                Some(p) => c = p.clone(),
                None => break,
            }
        }
        chain.reverse();
        let base = &chain[0];
        let ground = recipe
            .first()
            .map(|o| o.ground())
            .unwrap_or(ColorSet::EMPTY);
        assert!(
            ground.is_subset_of(base.colors(base_facet)),
            "recipe ground set must be contained in the base facet's colors"
        );
        // current: color -> vertex id at the current level.
        let mut current: Vec<(ProcessId, crate::simplex::VertexId)> = base_facet
            .vertices()
            .iter()
            .filter(|&&v| ground.contains(base.color(v)))
            .map(|&v| (base.color(v), v))
            .collect();
        for (round, osp) in recipe.iter().enumerate() {
            assert_eq!(
                osp.ground(),
                ground,
                "recipe rounds use inconsistent ground sets"
            );
            let level = &chain[round + 1];
            let mut next = Vec::with_capacity(current.len());
            for &(color, _) in &current {
                let view = osp.view_of(color).expect("ground covers every color");
                let carrier = Simplex::from_vertices(
                    current
                        .iter()
                        .filter(|(c2, _)| view.contains(*c2))
                        .map(|&(_, v)| v),
                );
                let v = level.find_vertex(color, &carrier)?;
                next.push((color, v));
            }
            current = next;
        }
        Some(Simplex::from_vertices(current.into_iter().map(|(_, v)| v)))
    }

    /// Recovers the recipe round of a facet of this (subdivision) complex:
    /// the ordered set partition of the facet's colors describing it
    /// relative to its carrier in the parent level.
    ///
    /// # Panics
    ///
    /// Panics if called on a level-0 complex or a non-facet simplex whose
    /// carriers do not nest properly.
    pub fn osp_of_facet(&self, facet: &Simplex) -> Osp {
        assert!(
            self.level() > 0,
            "level-0 complexes have no subdivision recipe"
        );
        // Group colors by carrier, ordered by carrier size (carriers of a
        // Chr facet are totally ordered by containment).
        let mut by_carrier: Vec<(usize, ColorSet)> = Vec::new();
        let mut groups: HashMap<Simplex, ColorSet> = HashMap::new();
        for &v in facet.vertices() {
            let d = self.vertex(v);
            groups
                .entry(d.carrier.clone())
                .and_modify(|cs| *cs = cs.with(d.color))
                .or_insert_with(|| ColorSet::singleton(d.color));
        }
        for (carrier, cs) in groups {
            by_carrier.push((carrier.len(), cs));
        }
        by_carrier.sort_by_key(|&(len, _)| len);
        Osp::new(by_carrier.into_iter().map(|(_, cs)| cs).collect())
            .expect("facet carriers induce a valid ordered set partition")
    }

    /// Recovers the full depth-`ℓ` recipe of a facet of `Chr^ℓ` relative to
    /// its carrier facet `ℓ` levels up: element `i` is the OSP of round
    /// `i + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `depth` exceeds this complex's level.
    pub fn recipe_of_facet(&self, facet: &Simplex, depth: usize) -> Recipe {
        assert!(
            depth <= self.level(),
            "recipe depth exceeds subdivision level"
        );
        let mut rounds = Vec::with_capacity(depth);
        let mut complex = self.clone();
        let mut current = facet.clone();
        for _ in 0..depth {
            rounds.push(complex.osp_of_facet(&current));
            let parent = complex.parent().expect("level checked above").clone();
            current = complex.carrier_in_parent(&current);
            complex = parent;
        }
        rounds.reverse();
        rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osp::fubini;

    #[test]
    fn chr_facet_counts_match_fubini() {
        for n in 1..=4 {
            let chr = Complex::standard(n).chromatic_subdivision();
            assert_eq!(chr.facet_count() as u64, fubini(n), "n = {n}");
            assert!(chr.is_pure());
            assert!(chr.is_chromatic());
            assert_eq!(chr.dim(), n as isize - 1);
        }
    }

    #[test]
    fn chr_of_triangle_is_figure_1a() {
        // Figure 1a: 13 triangles, 12 vertices, 24 edges.
        let chr = Complex::standard(3).chromatic_subdivision();
        assert_eq!(chr.f_vector(), vec![12, 24, 13]);
    }

    #[test]
    fn chr2_facet_count_is_fubini_squared() {
        let chr2 = Complex::standard(3).iterated_subdivision(2);
        assert_eq!(chr2.facet_count(), 169);
        assert_eq!(chr2.level(), 2);
        assert!(chr2.is_pure());
        assert!(chr2.is_chromatic());
    }

    #[test]
    fn chr_vertices_have_consistent_carriers() {
        let s = Complex::standard(3);
        let chr = s.chromatic_subdivision();
        for facet in chr.facets() {
            // Carriers of a facet are totally ordered by inclusion
            // (containment property) and satisfy immediacy.
            for &v in facet.vertices() {
                let d = chr.vertex(v);
                assert!(
                    d.base_colors.contains(d.color),
                    "self-inclusion: a process sees itself"
                );
                for &w in facet.vertices() {
                    let dw = chr.vertex(w);
                    assert!(
                        d.carrier.is_face_of(&dw.carrier) || dw.carrier.is_face_of(&d.carrier),
                        "containment"
                    );
                    if dw.base_colors.contains(d.color) {
                        assert!(d.carrier.is_face_of(&dw.carrier), "immediacy");
                    }
                }
            }
        }
    }

    #[test]
    fn boundary_faces_are_shared() {
        // Chr glues subdivided facets along shared faces: Chr of the
        // boundary edge between two triangles appears once.
        let verts = vec![
            (ProcessId::new(0), 0),
            (ProcessId::new(1), 0),
            (ProcessId::new(2), 0),
            (ProcessId::new(2), 1),
        ];
        // Two triangles sharing the {p1, p2} edge.
        let c = Complex::from_labeled_vertices(3, verts, vec![vec![0, 1, 2], vec![0, 1, 3]]);
        let chr = c.chromatic_subdivision();
        assert_eq!(chr.facet_count(), 26);
        // Vertices: 12 per triangle, minus the 4 vertices of the
        // subdivided common edge counted twice.
        assert_eq!(chr.num_vertices(), 20);
    }

    #[test]
    fn osp_roundtrip() {
        let chr = Complex::standard(3).chromatic_subdivision();
        let mut seen = std::collections::BTreeSet::new();
        for facet in chr.facets() {
            let osp = chr.osp_of_facet(facet);
            assert_eq!(osp.ground(), ColorSet::full(3));
            seen.insert(osp);
        }
        assert_eq!(seen.len(), 13, "all 13 OSPs are realized exactly once");
    }

    #[test]
    fn recipe_of_facet_roundtrip() {
        let chr2 = Complex::standard(3).iterated_subdivision(2);
        let mut seen = std::collections::BTreeSet::new();
        for facet in chr2.facets() {
            let recipe = chr2.recipe_of_facet(facet, 2);
            assert_eq!(recipe.len(), 2);
            seen.insert(recipe);
        }
        assert_eq!(seen.len(), 169, "recipes identify facets uniquely");
    }

    #[test]
    fn subdivide_patterned_with_single_recipe() {
        // Only the synchronous run: one facet per facet of the input.
        let s = Complex::standard(3);
        let sub = s.subdivide_patterned(1, |colors| vec![vec![Osp::synchronous(colors)]]);
        assert_eq!(sub.facet_count(), 1);
        // The synchronous facet is the "central" simplex: every vertex has
        // full base colors.
        let f = &sub.facets()[0];
        for &v in f.vertices() {
            assert_eq!(sub.base_colors_of_vertex(v), ColorSet::full(3));
        }
    }

    #[test]
    fn patterned_depth_two_equals_two_single_steps() {
        let s = Complex::standard(2);
        let a = s.subdivide_patterned(2, |c| all_recipes(c, 2));
        let b = s.iterated_subdivision(2);
        assert_eq!(a.facet_count(), b.facet_count());
        assert!(a.same_complex(&b));
    }

    #[test]
    fn simplex_for_recipe_roundtrip() {
        let chr2 = Complex::standard(3).iterated_subdivision(2);
        let base_facet = Complex::standard(3).facets()[0].clone();
        for facet in chr2.facets() {
            let recipe = chr2.recipe_of_facet(facet, 2);
            let resolved = chr2.simplex_for_recipe(&base_facet, &recipe).unwrap();
            assert_eq!(&resolved, facet);
        }
    }

    #[test]
    fn simplex_for_recipe_partial_participation() {
        let chr = Complex::standard(3).chromatic_subdivision();
        let base_facet = Complex::standard(3).facets()[0].clone();
        let pair = ColorSet::from_indices([0, 2]);
        let run = vec![Osp::sequential(pair)];
        let sx = chr.simplex_for_recipe(&base_facet, &run).unwrap();
        assert_eq!(sx.len(), 2);
        assert_eq!(chr.colors(&sx), pair);
        assert!(chr.contains_simplex(&sx));
        // p1 ran first: its vertex saw only itself.
        for &v in sx.vertices() {
            let seen = chr.base_colors_of_vertex(v);
            if chr.color(v).index() == 0 {
                assert_eq!(seen, ColorSet::from_indices([0]));
            } else {
                assert_eq!(seen, pair);
            }
        }
    }

    #[test]
    fn all_recipes_counts() {
        let g = ColorSet::full(3);
        assert_eq!(all_recipes(g, 1).len(), 13);
        assert_eq!(all_recipes(g, 2).len(), 169);
    }

    #[test]
    fn parallel_subdivision_is_byte_identical_to_serial() {
        // The deterministic merge reproduces the serial build exactly —
        // same vertex tables, same ids, same facet order — for every
        // thread count. `==` compares the interned tables structurally.
        let inputs = [
            Complex::standard(3).chromatic_subdivision(),
            Complex::standard(4).chromatic_subdivision(),
        ];
        for input in &inputs {
            let serial = input.chromatic_subdivision_threaded(1);
            for threads in [2, 3, 5, 8] {
                let parallel = input.chromatic_subdivision_threaded(threads);
                assert_eq!(serial, parallel, "threads = {threads}");
                assert_eq!(serial.facets(), parallel.facets());
            }
        }
    }

    #[test]
    fn parallel_patterned_depth_two_is_byte_identical_to_serial() {
        let s = Complex::standard(3).chromatic_subdivision();
        let serial = s.subdivide_patterned_threaded(2, |c| all_recipes(c, 2), 1);
        let parallel = s.subdivide_patterned_threaded(2, |c| all_recipes(c, 2), 4);
        assert_eq!(serial, parallel);
        // Intermediate levels are merged identically too.
        assert_eq!(serial.parent().unwrap(), parallel.parent().unwrap());
    }

    #[test]
    fn carrier_in_base_tracks_participation() {
        let chr2 = Complex::standard(3).iterated_subdivision(2);
        for facet in chr2.facets() {
            // A full facet's carrier is the whole base simplex.
            assert_eq!(chr2.carrier_colors(facet), ColorSet::full(3));
        }
    }
}
