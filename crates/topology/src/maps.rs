//! Simplicial, chromatic and carrier maps between complexes.
//!
//! The (F)ACT characterizations are stated in terms of *chromatic simplicial
//! maps carried by the task's carrier map Δ*. This module provides the
//! vertex-map representation and the verification predicates; the search for
//! such maps lives in the `act-tasks` crate.

use std::collections::HashMap;
use std::fmt;

use crate::complex::Complex;
use crate::simplex::{Simplex, VertexId};

/// A vertex-to-vertex map from a domain complex to a codomain complex,
/// inducing a candidate simplicial map.
///
/// # Examples
///
/// ```
/// use act_topology::{Complex, VertexMap, VertexId};
///
/// let s = Complex::standard(3);
/// let chr = s.chromatic_subdivision();
/// // Map every vertex of Chr s to the base vertex of its own color:
/// // this is the chromatic simplicial "color-collapse" map.
/// let mut m = VertexMap::new();
/// for v in chr.used_vertices() {
///     m.set(v, VertexId::from_index(chr.color(v).index()));
/// }
/// assert!(m.is_simplicial(&chr, &s));
/// assert!(m.is_chromatic(&chr, &s));
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct VertexMap {
    map: HashMap<VertexId, VertexId>,
}

impl VertexMap {
    /// Creates an empty (nowhere-defined) vertex map.
    pub fn new() -> Self {
        VertexMap::default()
    }

    /// Sets the image of `v`, returning the previous image if any.
    pub fn set(&mut self, v: VertexId, image: VertexId) -> Option<VertexId> {
        self.map.insert(v, image)
    }

    /// The image of `v`, if defined.
    pub fn get(&self, v: VertexId) -> Option<VertexId> {
        self.map.get(&v).copied()
    }

    /// Removes the image of `v`.
    pub fn unset(&mut self, v: VertexId) -> Option<VertexId> {
        self.map.remove(&v)
    }

    /// The number of vertices with a defined image.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no vertex has a defined image.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The map as `(vertex, image)` pairs sorted by vertex — a canonical
    /// flat encoding: two equal maps always produce the same pair list,
    /// so persisted witnesses are byte-stable.
    pub fn entries(&self) -> Vec<(VertexId, VertexId)> {
        let mut pairs: Vec<(VertexId, VertexId)> = self.map.iter().map(|(&v, &i)| (v, i)).collect();
        pairs.sort();
        pairs
    }

    /// Rebuilds a map from `(vertex, image)` pairs (the inverse of
    /// [`VertexMap::entries`]); later duplicates win.
    pub fn from_entries<I: IntoIterator<Item = (VertexId, VertexId)>>(pairs: I) -> VertexMap {
        let mut m = VertexMap::new();
        for (v, image) in pairs {
            m.set(v, image);
        }
        m
    }

    /// Whether every vertex used by `domain` has an image.
    pub fn is_total_on(&self, domain: &Complex) -> bool {
        domain
            .used_vertices()
            .iter()
            .all(|v| self.map.contains_key(v))
    }

    /// The image of a simplex: the set of images of its vertices (which may
    /// be smaller if the map collapses vertices).
    ///
    /// Returns `None` if some vertex has no image.
    pub fn image(&self, simplex: &Simplex) -> Option<Simplex> {
        let mut verts = Vec::with_capacity(simplex.len());
        for &v in simplex.vertices() {
            verts.push(self.get(v)?);
        }
        Some(Simplex::from_vertices(verts))
    }

    /// Whether the induced map is simplicial: the image of every facet of
    /// `domain` (hence of every simplex) is a simplex of `codomain`.
    ///
    /// Returns `false` if the map is not total on `domain`.
    pub fn is_simplicial(&self, domain: &Complex, codomain: &Complex) -> bool {
        domain.facets().iter().all(|f| {
            self.image(f)
                .is_some_and(|img| codomain.contains_simplex(&img))
        })
    }

    /// Whether the map preserves colors on every mapped vertex.
    pub fn is_chromatic(&self, domain: &Complex, codomain: &Complex) -> bool {
        self.map
            .iter()
            .all(|(&v, &w)| domain.color(v) == codomain.color(w))
    }

    /// Whether the induced simplicial map is carried by the carrier map
    /// `delta`: for every facet `σ` of `domain`, `φ(σ) ∈ delta(σ)`.
    ///
    /// `delta` receives the domain facet and the candidate image and decides
    /// whether the image lies in `Δ(σ)`. (Checking facets suffices: carrier
    /// maps are monotone, so faces are carried automatically.)
    pub fn is_carried_by<F>(&self, domain: &Complex, mut delta: F) -> bool
    where
        F: FnMut(&Simplex, &Simplex) -> bool,
    {
        domain
            .facets()
            .iter()
            .all(|f| self.image(f).is_some_and(|img| delta(f, &img)))
    }
}

impl fmt::Debug for VertexMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VertexMap")
            .field("assigned", &self.map.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::ProcessId;

    fn color_collapse(domain: &Complex) -> VertexMap {
        let mut m = VertexMap::new();
        for v in domain.used_vertices() {
            m.set(v, VertexId::from_index(domain.color(v).index()));
        }
        m
    }

    #[test]
    fn color_collapse_is_chromatic_simplicial() {
        let s = Complex::standard(4);
        let chr = s.chromatic_subdivision();
        let m = color_collapse(&chr);
        assert!(m.is_total_on(&chr));
        assert!(m.is_simplicial(&chr, &s));
        assert!(m.is_chromatic(&chr, &s));
    }

    #[test]
    fn non_chromatic_map_detected() {
        let s = Complex::standard(2);
        let chr = s.chromatic_subdivision();
        let mut m = color_collapse(&chr);
        // Swap the image of one vertex to the wrong color.
        let v = chr.used_vertices()[0];
        let wrong = VertexId::from_index(1 - chr.color(v).index());
        m.set(v, wrong);
        assert!(!m.is_chromatic(&chr, &s));
    }

    #[test]
    fn partial_map_is_not_simplicial() {
        let s = Complex::standard(2);
        let chr = s.chromatic_subdivision();
        let m = VertexMap::new();
        assert!(!m.is_simplicial(&chr, &s));
        assert!(!m.is_total_on(&chr));
    }

    #[test]
    fn carried_by_carrier_colors() {
        // The color-collapse map Chr s -> s is carried by the carrier map
        // σ ↦ carrier(σ, s): φ(σ)'s colors are a subset of carrier colors.
        let s = Complex::standard(3);
        let chr = s.chromatic_subdivision();
        let m = color_collapse(&chr);
        assert!(m.is_carried_by(&chr, |sigma, img| {
            s.colors(img).is_subset_of(chr.carrier_colors(sigma))
        }));
    }

    #[test]
    fn image_collapses_duplicates() {
        let s = Complex::standard(2);
        let chr = s.chromatic_subdivision();
        let mut m = VertexMap::new();
        for v in chr.used_vertices() {
            m.set(v, VertexId::from_index(0));
        }
        let facet = chr.facets()[0].clone();
        let img = m.image(&facet).unwrap();
        assert_eq!(img.len(), 1);
        // Collapsing map is simplicial (image is a vertex of s) but not
        // chromatic.
        assert!(m.is_simplicial(&chr, &s));
        assert!(!m.is_chromatic(&chr, &s));
        let _ = m.unset(chr.used_vertices()[0]);
        assert!(m.image(&facet).is_none());
    }

    #[test]
    fn set_returns_previous() {
        let mut m = VertexMap::new();
        let v = VertexId::from_index(0);
        assert_eq!(m.set(v, VertexId::from_index(1)), None);
        assert_eq!(
            m.set(v, VertexId::from_index(2)),
            Some(VertexId::from_index(1))
        );
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
        let _ = ProcessId::new(0);
    }

    #[test]
    fn entries_round_trip_canonically() {
        let mut m = VertexMap::new();
        for (v, i) in [(3, 0), (0, 2), (7, 1)] {
            m.set(VertexId::from_index(v), VertexId::from_index(i));
        }
        let pairs = m.entries();
        // Sorted by vertex regardless of insertion order.
        assert_eq!(
            pairs,
            vec![
                (VertexId::from_index(0), VertexId::from_index(2)),
                (VertexId::from_index(3), VertexId::from_index(0)),
                (VertexId::from_index(7), VertexId::from_index(1)),
            ]
        );
        let back = VertexMap::from_entries(pairs.clone());
        assert_eq!(back, m);
        assert_eq!(back.entries(), pairs);
    }
}
