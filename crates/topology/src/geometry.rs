//! Geometric realization coordinates for iterated chromatic subdivisions.
//!
//! Kozlov's embedding (Appendix A of the paper) places the vertex `(i, t)`
//! of `Chr s` at
//!
//! ```text
//!   1/(2k−1) · x_i  +  2/(2k−1) · Σ_{j ∈ t, j ≠ i} x_j,     k = |t|,
//! ```
//!
//! where `x_j` are the coordinates of the carrier's vertices. Applying the
//! formula recursively yields coordinates for every vertex of `Chr^m s`,
//! which is how the paper's figures are drawn. The benches export these
//! coordinates so the figures can be re-rendered.

use crate::complex::Complex;
use crate::simplex::VertexId;

/// Coordinates (one point per vertex id of the complex's level) of the
/// geometric realization `|Chr^m s| ⊂ R^n`, with the base vertex of color
/// `i` at the `i`-th unit vector.
///
/// Returns a vector indexed by vertex id; each point has `n` barycentric
/// coordinates summing to 1.
///
/// # Panics
///
/// Panics if the base complex is not the standard simplex (bases with
/// several vertices per color have no canonical embedding).
pub fn realization_coordinates(complex: &Complex) -> Vec<Vec<f64>> {
    let n = complex.num_processes();
    let base = complex.base();
    assert_eq!(
        base.num_vertices(),
        n,
        "geometric realization requires the standard-simplex base"
    );

    // Walk the parent chain, computing coordinates level by level.
    let mut chain: Vec<Complex> = Vec::new();
    let mut c = complex.clone();
    loop {
        chain.push(c.clone());
        match c.parent() {
            Some(p) => c = p.clone(),
            None => break,
        }
    }
    chain.reverse(); // base first

    let mut coords: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let mut x = vec![0.0; n];
            x[i] = 1.0;
            x
        })
        .collect();

    for level in chain.iter().skip(1) {
        let mut next: Vec<Vec<f64>> = Vec::with_capacity(level.num_vertices());
        for idx in 0..level.num_vertices() {
            let v = VertexId::from_index(idx);
            let data = level.vertex(v);
            let k = data.carrier.len() as f64;
            let own_weight = 1.0 / (2.0 * k - 1.0);
            let other_weight = 2.0 / (2.0 * k - 1.0);
            let mut x = vec![0.0; n];
            for &w in data.carrier.vertices() {
                let parent = level.parent().expect("non-base level has a parent");
                let weight = if parent.color(w) == data.color {
                    own_weight
                } else {
                    other_weight
                };
                for (xi, pi) in x.iter_mut().zip(&coords[w.index()]) {
                    *xi += weight * pi;
                }
            }
            next.push(x);
        }
        coords = next;
    }
    coords
}

/// The volume of each facet of a subdivision, as a fraction of the base
/// simplex's volume: the absolute determinant of the matrix of the
/// facet's barycentric coordinate vectors.
///
/// A genuine subdivision has all-positive facet volumes summing to 1
/// ([`verify_subdivision_geometry`] checks exactly that), which is how we
/// certify computationally that `Chr` *is* a subdivision (Kozlov's
/// theorem, cited as [22] in the paper).
///
/// # Panics
///
/// Panics if the complex is not pure of full dimension over the standard
/// simplex base.
pub fn facet_volume_fractions(complex: &Complex) -> Vec<f64> {
    let n = complex.num_processes();
    assert!(
        complex.is_pure() && complex.dim() == n as isize - 1,
        "volumes are defined for pure full-dimensional complexes"
    );
    let coords = realization_coordinates(complex);
    complex
        .facets()
        .iter()
        .map(|facet| {
            let m: Vec<Vec<f64>> = facet
                .vertices()
                .iter()
                .map(|v| coords[v.index()].clone())
                .collect();
            determinant(m).abs()
        })
        .collect()
}

/// Checks that the complex is a geometric subdivision of the standard
/// simplex: every facet has positive volume and the volumes sum to 1
/// (within `tolerance`).
///
/// # Errors
///
/// Returns a description of the violated condition.
pub fn verify_subdivision_geometry(complex: &Complex, tolerance: f64) -> Result<(), String> {
    let volumes = facet_volume_fractions(complex);
    for (i, &v) in volumes.iter().enumerate() {
        if v <= tolerance {
            return Err(format!(
                "facet {i} is geometrically degenerate (volume {v})"
            ));
        }
    }
    let total: f64 = volumes.iter().sum();
    if (total - 1.0).abs() > tolerance {
        return Err(format!("facet volumes sum to {total}, expected 1"));
    }
    Ok(())
}

/// Determinant by Gaussian elimination with partial pivoting.
fn determinant(mut m: Vec<Vec<f64>>) -> f64 {
    let n = m.len();
    debug_assert!(m.iter().all(|row| row.len() == n));
    let mut det = 1.0;
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&a, &b| m[a][col].abs().partial_cmp(&m[b][col].abs()).unwrap())
            .unwrap();
        if m[pivot][col].abs() < 1e-15 {
            return 0.0;
        }
        if pivot != col {
            m.swap(pivot, col);
            det = -det;
        }
        det *= m[col][col];
        for row in col + 1..n {
            let factor = m[row][col] / m[col][col];
            let pivot_row = m[col].clone();
            for (cell, pv) in m[row][col..].iter_mut().zip(&pivot_row[col..]) {
                *cell -= factor * pv;
            }
        }
    }
    det
}

/// Projects barycentric coordinates over 3 processes to the plane, using
/// an equilateral triangle (for figure export).
///
/// # Panics
///
/// Panics if a point does not have exactly 3 coordinates.
pub fn barycentric_to_plane(point: &[f64]) -> (f64, f64) {
    assert_eq!(point.len(), 3, "planar projection is for 3-process systems");
    // Corners of an equilateral triangle.
    const CORNERS: [(f64, f64); 3] = [(0.0, 0.0), (1.0, 0.0), (0.5, 0.866_025_403_784_438_6)];
    let mut x = 0.0;
    let mut y = 0.0;
    for (w, (cx, cy)) in point.iter().zip(CORNERS) {
        x += w * cx;
        y += w * cy;
    }
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} != {b}");
    }

    #[test]
    fn base_coordinates_are_unit_vectors() {
        let s = Complex::standard(3);
        let coords = realization_coordinates(&s);
        assert_eq!(coords.len(), 3);
        for (i, c) in coords.iter().enumerate() {
            for (j, &x) in c.iter().enumerate() {
                assert_close(x, if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn chr_coordinates_are_barycentric() {
        let chr = Complex::standard(3).chromatic_subdivision();
        let coords = realization_coordinates(&chr);
        assert_eq!(coords.len(), chr.num_vertices());
        for c in &coords {
            let sum: f64 = c.iter().sum();
            assert_close(sum, 1.0);
            assert!(c.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn solo_vertex_sits_at_corner() {
        // The vertex (p, {p}) of Chr s has carrier of size 1, so the Kozlov
        // formula puts it exactly at p's corner.
        let chr = Complex::standard(3).chromatic_subdivision();
        let coords = realization_coordinates(&chr);
        for (idx, point) in coords.iter().enumerate() {
            let v = VertexId::from_index(idx);
            if chr.vertex(v).carrier.len() == 1 {
                let c = chr.color(v).index();
                assert_close(point[c], 1.0);
            }
        }
    }

    #[test]
    fn central_vertex_weights() {
        // The vertex (p, s) (full carrier) of Chr s for n = 3 has k = 3:
        // weights 1/5 on its own corner and 2/5 on the others.
        let chr = Complex::standard(3).chromatic_subdivision();
        let coords = realization_coordinates(&chr);
        for (idx, point) in coords.iter().enumerate() {
            let v = VertexId::from_index(idx);
            if chr.vertex(v).carrier.len() == 3 {
                let c = chr.color(v).index();
                assert_close(point[c], 0.2);
                for (j, &x) in point.iter().enumerate() {
                    if j != c {
                        assert_close(x, 0.4);
                    }
                }
            }
        }
    }

    #[test]
    fn distinct_vertices_get_distinct_coordinates() {
        let chr2 = Complex::standard(3).iterated_subdivision(2);
        let coords = realization_coordinates(&chr2);
        for i in 0..coords.len() {
            for j in i + 1..coords.len() {
                let d: f64 = coords[i]
                    .iter()
                    .zip(&coords[j])
                    .map(|(a, b)| (a - b).abs())
                    .sum();
                // Distinct vertices of a subdivision can share a geometric
                // point only if they have different colors (chromatic
                // vertices at the same point). Same-color vertices must
                // differ.
                let vi = VertexId::from_index(i);
                let vj = VertexId::from_index(j);
                if chr2.color(vi) == chr2.color(vj) {
                    assert!(d > 1e-9, "same-color vertices {i} and {j} coincide");
                }
            }
        }
    }

    #[test]
    fn chr_is_a_geometric_subdivision() {
        // The computational form of Kozlov's theorem: Chr^m s tiles |s|
        // with positive-volume simplices summing to the whole.
        for n in 2..=4 {
            let chr = Complex::standard(n).chromatic_subdivision();
            verify_subdivision_geometry(&chr, 1e-9).unwrap();
        }
        for m in 1..=3 {
            let c = Complex::standard(3).iterated_subdivision(m);
            verify_subdivision_geometry(&c, 1e-9).unwrap();
        }
    }

    #[test]
    fn strict_subcomplex_volume_is_less_than_one() {
        let chr = Complex::standard(3).chromatic_subdivision();
        let most: Vec<_> = chr.facets().iter().skip(1).cloned().collect();
        let sub = chr.sub_complex(most);
        let err = verify_subdivision_geometry(&sub, 1e-9).unwrap_err();
        assert!(err.contains("sum"), "missing volume is detected: {err}");
    }

    #[test]
    fn volume_fractions_of_chr_edge() {
        // Chr of an edge splits it 1/3 + 1/3 + 1/3 (Kozlov's embedding
        // puts the two interior points at the third points).
        let chr = Complex::standard(2).chromatic_subdivision();
        let mut vols = facet_volume_fractions(&chr);
        vols.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(vols.len(), 3);
        for v in vols {
            assert!((v - 1.0 / 3.0).abs() < 1e-12, "got {v}");
        }
    }

    #[test]
    fn determinant_basics() {
        assert!((determinant(vec![vec![1.0, 0.0], vec![0.0, 1.0]]) - 1.0).abs() < 1e-12);
        assert!((determinant(vec![vec![0.0, 1.0], vec![1.0, 0.0]]) + 1.0).abs() < 1e-12);
        assert_eq!(determinant(vec![vec![1.0, 2.0], vec![2.0, 4.0]]), 0.0);
    }

    #[test]
    fn plane_projection_is_affine() {
        let (x, y) = barycentric_to_plane(&[1.0, 0.0, 0.0]);
        assert_close(x, 0.0);
        assert_close(y, 0.0);
        let (x, y) = barycentric_to_plane(&[0.0, 0.0, 1.0]);
        assert_close(x, 0.5);
        assert!(y > 0.8);
    }
}
