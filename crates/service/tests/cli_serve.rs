//! End-to-end tests of the `fact-cli` binary's serving surface: the
//! `solve --store` warm path, the `serve --stdio` wire protocol, the
//! CLI/server store sharing, and the exit-code contract.

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};

use serde::Value;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fact-cli"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fact-cli-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the serve loop over stdio, feeding it `requests` (the last one
/// should be a shutdown) and returning one parsed response per request.
fn serve_stdio(dir: &std::path::Path, requests: &[&str]) -> Vec<Value> {
    let mut child = bin()
        .args(["serve", "--stdio", "--workers", "2", "--store"])
        .arg(dir)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn fact-cli serve --stdio");
    {
        let stdin = child.stdin.as_mut().expect("piped stdin");
        for r in requests {
            writeln!(stdin, "{r}").expect("write request");
        }
    }
    let out = child.wait_with_output().expect("serve exits");
    assert!(out.status.success(), "serve must drain and exit 0: {out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    let responses: Vec<Value> = stdout
        .lines()
        .map(|l| serde_json::from_str(l).expect("each response line is JSON"))
        .collect();
    assert_eq!(responses.len(), requests.len(), "one response per request");
    responses
}

fn str_field<'v>(v: &'v Value, name: &str) -> &'v str {
    match v.field(name) {
        Ok(Value::Str(s)) => s,
        other => panic!("expected string field {name}, got {other:?}"),
    }
}

fn u64_field(v: &Value, name: &str) -> u64 {
    match v.field(name) {
        Ok(Value::UInt(n)) => *n,
        other => panic!("expected integer field {name}, got {other:?}"),
    }
}

#[test]
fn solve_store_makes_the_second_run_warm() {
    let dir = temp_dir("warm");
    let run = || {
        let out = bin()
            .args(["solve", "t-res:3:1", "2", "--store"])
            .arg(&dir)
            .output()
            .expect("run fact-cli solve");
        assert!(out.status.success(), "{out:?}");
        String::from_utf8(out.stdout).unwrap()
    };
    let cold = run();
    assert!(cold.contains("SOLVABLE with 1 iteration(s)"), "{cold}");
    assert!(!cold.contains("served from store"), "{cold}");
    let warm = run();
    assert!(warm.contains("(served from store)"), "{warm}");
    // Identical verdict line, cold and warm.
    let verdict_line = |s: &str| {
        s.lines()
            .find(|l| l.starts_with("SOLVABLE"))
            .map(str::to_string)
    };
    assert_eq!(verdict_line(&cold), verdict_line(&warm));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stdio_serve_answers_coalesces_and_drains() {
    let dir = temp_dir("stdio");
    let responses = serve_stdio(
        &dir,
        &[
            r#"{"op":"solve","id":1,"model":"t-res:3:1","k":2}"#,
            r#"{"op":"solve","id":2,"model":"t-res:3:1","k":2}"#,
            r#"{"op":"solve","id":3,"model":"nope:9","k":1}"#,
            r#"{"op":"stats","id":4}"#,
            r#"{"op":"shutdown","id":5}"#,
        ],
    );

    let cold = &responses[0];
    assert_eq!(str_field(cold, "verdict"), "solvable");
    assert_eq!(str_field(cold, "source"), "engine");
    assert!(matches!(cold.field("authoritative"), Ok(Value::Bool(true))));

    // Same query again: a store hit, byte-identical verdict fields.
    let warm = &responses[1];
    assert_eq!(str_field(warm, "source"), "store");
    assert_eq!(str_field(warm, "verdict"), str_field(cold, "verdict"));
    assert_eq!(u64_field(warm, "iterations"), u64_field(cold, "iterations"));
    assert_eq!(
        u64_field(warm, "witness_len"),
        u64_field(cold, "witness_len")
    );

    // Malformed model spec: an error reply with the usage code, and the
    // server keeps serving.
    let bad = &responses[2];
    assert!(matches!(bad.field("ok"), Ok(Value::Bool(false))));
    assert_eq!(u64_field(bad, "code"), 2);

    let stats = responses[3].field("stats").expect("stats body");
    assert_eq!(u64_field(stats, "hits"), 1);
    assert_eq!(u64_field(stats, "misses"), 1);
    assert_eq!(u64_field(stats, "engine_runs"), 1);
    assert_eq!(u64_field(stats, "workers"), 2);

    let bye = &responses[4];
    assert_eq!(str_field(bye, "op"), "shutdown");
    assert!(matches!(bye.field("ok"), Ok(Value::Bool(true))));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_and_server_share_one_store() {
    let dir = temp_dir("shared");
    // Warm the store with a one-shot CLI run…
    let out = bin()
        .args(["solve", "k-of:3:2", "2", "1", "--store"])
        .arg(&dir)
        .output()
        .expect("run fact-cli solve");
    assert!(out.status.success(), "{out:?}");

    // …then the server answers the same query from it, no engine run.
    let responses = serve_stdio(
        &dir,
        &[
            r#"{"op":"solve","id":1,"model":"k-of:3:2","k":2,"iters":1}"#,
            r#"{"op":"stats","id":2}"#,
            r#"{"op":"shutdown","id":3}"#,
        ],
    );
    assert_eq!(str_field(&responses[0], "source"), "store");
    assert_eq!(str_field(&responses[0], "verdict"), "solvable");
    let stats = responses[1].field("stats").expect("stats body");
    assert_eq!(u64_field(stats, "engine_runs"), 0);
    assert_eq!(u64_field(stats, "hits"), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_specs_exit_with_the_usage_code() {
    for args in [
        vec!["solve", "nope:3", "1"],
        vec!["solve", "t-res:3:3", "1"],
        vec!["solve", "t-res:3:1", "0"],
        vec!["analyze", "wait-free:9"],
        vec!["serve", "--workers", "0"],
        vec!["serve", "t-res:3:1"],
    ] {
        let out = bin().args(&args).output().expect("run fact-cli");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?} must exit 2 (usage), got {out:?}"
        );
    }
}

#[test]
fn a_corrupted_store_entry_recomputes_instead_of_lying() {
    let dir = temp_dir("recompute");
    let solve = || {
        bin()
            .args(["solve", "t-res:3:1", "2", "--store"])
            .arg(&dir)
            .output()
            .expect("run fact-cli solve")
    };
    let cold = solve();
    assert!(cold.status.success());
    // Damage every stored entry in place — verdict entries at the root
    // and persisted tower levels under `towers/` alike.
    fn damage_all(dir: &std::path::Path) {
        for entry in std::fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                damage_all(&path);
            } else {
                let text = std::fs::read_to_string(&path).unwrap();
                std::fs::write(&path, &text[..text.len() / 3]).unwrap();
            }
        }
    }
    damage_all(&dir);
    let recomputed = solve();
    assert!(recomputed.status.success(), "{recomputed:?}");
    let stdout = String::from_utf8(recomputed.stdout).unwrap();
    // Not a store hit — the entry was unusable, so the engine re-ran and
    // produced the same verdict.
    assert!(!stdout.contains("served from store"), "{stdout}");
    assert!(stdout.contains("SOLVABLE with 1 iteration(s)"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}
