//! The resilient client path: deadline propagation, jittered
//! exponential backoff, backpressure honoring, and replica fallback.
//!
//! A [`ClusterClient`] holds the full peer list and answers one request
//! at a time. Its retry loop classifies every failure:
//!
//! * **connect / io errors, dropped connections** — transient: rotate
//!   to the next peer and retry after a jittered exponential backoff
//!   (`serve.client.retries`);
//! * **backpressure (code 5)** — the server said *when* to come back:
//!   honor the reply's `retry_after_ms` (still jittered, so a thundering
//!   herd of clients decorrelates) instead of the generic backoff;
//! * **draining (code 6)** — this peer is going away: rotate
//!   immediately;
//! * **usage (code 2)** — deterministic: never retried, the request
//!   itself is wrong;
//! * **runtime (code 1)** — an answered failure, returned to the caller
//!   (the server already ran the engine; retrying re-runs a
//!   deterministic computation).
//!
//! A caller-supplied deadline bounds the *whole* loop and propagates:
//! every attempt re-encodes the request with the remaining budget as
//! its `deadline_ms`, so a retried query never asks a server for more
//! time than the client has left. The jitter stream is seeded
//! ([`ClusterClient::new`] takes the seed), keeping chaos runs
//! replayable end to end.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::protocol::{Response, CODE_BACKPRESSURE, CODE_DRAINING, CODE_USAGE};
use crate::SERVE_CLIENT_RETRIES;

/// Retry shape of one [`ClusterClient`].
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts across all peers before giving up.
    pub max_attempts: usize,
    /// First backoff (doubled each retry, jittered 0.5–1.5×).
    pub base_backoff_ms: u64,
    /// Backoff ceiling.
    pub max_backoff_ms: u64,
    /// Per-attempt connect timeout.
    pub connect_timeout_ms: u64,
    /// Per-attempt read/write timeout.
    pub io_timeout_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 8,
            base_backoff_ms: 15,
            max_backoff_ms: 500,
            connect_timeout_ms: 250,
            io_timeout_ms: 10_000,
        }
    }
}

/// Why a request ultimately failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// The request is malformed (server code 2) — retrying cannot help.
    Usage(String),
    /// The caller's deadline expired before any peer answered.
    DeadlineExceeded(String),
    /// Every attempt failed transiently (all peers down or saturated).
    Unavailable(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Usage(m) => write!(f, "usage: {m}"),
            ClientError::DeadlineExceeded(m) => write!(f, "deadline exceeded: {m}"),
            ClientError::Unavailable(m) => write!(f, "unavailable: {m}"),
        }
    }
}

/// A retrying, failover-aware client over a peer list.
pub struct ClusterClient {
    peers: Vec<String>,
    policy: RetryPolicy,
    rng: Mutex<ChaCha8Rng>,
    // Rotates across requests so one client spreads load, and advances
    // on failure so the next request skips a peer just seen down.
    preferred: AtomicUsize,
}

impl ClusterClient {
    /// A client over `peers` with the default policy; `seed` fixes the
    /// jitter stream (chaos replays pass the plan's seed).
    pub fn new(peers: Vec<String>, seed: u64) -> ClusterClient {
        ClusterClient::with_policy(peers, seed, RetryPolicy::default())
    }

    /// A client with an explicit [`RetryPolicy`].
    pub fn with_policy(peers: Vec<String>, seed: u64, policy: RetryPolicy) -> ClusterClient {
        ClusterClient {
            peers,
            policy,
            rng: Mutex::new(ChaCha8Rng::seed_from_u64(seed)),
            preferred: AtomicUsize::new(0),
        }
    }

    /// The peer list this client rotates over.
    pub fn peers(&self) -> &[String] {
        &self.peers
    }

    /// Decides `k`-set consensus under `model`, deepening to `iters`.
    /// `deadline_ms` bounds the whole retry loop *and* propagates to
    /// the server (each attempt carries the remaining budget);
    /// `proof` asks for a Merkle inclusion proof on store-committed
    /// verdicts.
    pub fn solve(
        &self,
        model: &str,
        k: usize,
        iters: usize,
        proof: bool,
        deadline_ms: Option<u64>,
    ) -> Result<Response, ClientError> {
        let started = Instant::now();
        self.request_with(deadline_ms, |remaining_ms| {
            let mut line = format!(
                "{{\"op\":\"solve\",\"id\":1,\"model\":{},\"k\":{k},\"iters\":{iters}",
                encode_json_string(model)
            );
            if proof {
                line.push_str(",\"proof\":true");
            }
            if let Some(ms) = remaining_ms {
                line.push_str(&format!(",\"deadline_ms\":{ms}"));
            }
            line.push('}');
            line
        })
        .map_err(|e| at_deadline(e, started, deadline_ms))
    }

    /// Snapshots one peer's serving counters (rotating on failure like
    /// any other request).
    pub fn stats(&self) -> Result<Response, ClientError> {
        self.request_with(None, |_| "{\"op\":\"stats\",\"id\":1}".to_string())
    }

    /// Sends one fixed request line through the retry loop.
    pub fn request(&self, line: &str, deadline_ms: Option<u64>) -> Result<Response, ClientError> {
        self.request_with(deadline_ms, |_| line.to_string())
    }

    /// The retry loop. `encode` rebuilds the request line per attempt
    /// from the remaining deadline budget (deadline propagation).
    fn request_with(
        &self,
        deadline_ms: Option<u64>,
        encode: impl Fn(Option<u64>) -> String,
    ) -> Result<Response, ClientError> {
        if self.peers.is_empty() {
            return Err(ClientError::Unavailable("no peers configured".into()));
        }
        let started = Instant::now();
        let deadline = deadline_ms.map(Duration::from_millis);
        let mut last_error = String::new();
        let start_peer = self.preferred.load(Ordering::Relaxed);
        for attempt in 0..self.policy.max_attempts {
            let remaining_ms = match remaining(started, deadline) {
                Ok(ms) => ms,
                Err(()) => return Err(ClientError::DeadlineExceeded(last_error)),
            };
            let peer = (start_peer + attempt) % self.peers.len();
            let line = encode(remaining_ms);
            match self.send_once(&self.peers[peer], &line) {
                Ok(reply) => match reply.code {
                    Some(CODE_USAGE) => {
                        return Err(ClientError::Usage(
                            reply.error.unwrap_or_else(|| "usage error".into()),
                        ))
                    }
                    Some(CODE_BACKPRESSURE) => {
                        last_error = format!(
                            "peer {} backpressure (retry_after {:?} ms)",
                            self.peers[peer], reply.retry_after_ms
                        );
                        // Honor the server's hint over the generic
                        // schedule; jitter decorrelates the herd.
                        let wait = reply
                            .retry_after_ms
                            .unwrap_or_else(|| self.backoff_ms(attempt));
                        self.retry_sleep(wait, started, deadline, &last_error)?;
                    }
                    Some(CODE_DRAINING) => {
                        last_error = format!("peer {} draining", self.peers[peer]);
                        SERVE_CLIENT_RETRIES.add(1);
                        self.preferred.store(peer + 1, Ordering::Relaxed);
                        // No sleep: another peer can answer right now.
                    }
                    _ => {
                        self.preferred.store(peer, Ordering::Relaxed);
                        return Ok(reply);
                    }
                },
                Err(e) => {
                    last_error = format!("peer {}: {e}", self.peers[peer]);
                    self.preferred.store(peer + 1, Ordering::Relaxed);
                    self.retry_sleep(self.backoff_ms(attempt), started, deadline, &last_error)?;
                }
            }
        }
        Err(ClientError::Unavailable(format!(
            "{} attempts exhausted; last: {last_error}",
            self.policy.max_attempts
        )))
    }

    /// One wire exchange with one peer.
    fn send_once(&self, addr: &str, line: &str) -> Result<Response, String> {
        let target = addr
            .parse::<std::net::SocketAddr>()
            .map_err(|e| format!("bad address: {e}"))?;
        let run = || -> std::io::Result<String> {
            let stream = TcpStream::connect_timeout(
                &target,
                Duration::from_millis(self.policy.connect_timeout_ms),
            )?;
            stream.set_read_timeout(Some(Duration::from_millis(self.policy.io_timeout_ms)))?;
            stream.set_write_timeout(Some(Duration::from_millis(self.policy.io_timeout_ms)))?;
            let mut writer = stream.try_clone()?;
            writer.write_all(line.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
            let mut reply = String::new();
            let n = BufReader::new(stream).read_line(&mut reply)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before reply",
                ));
            }
            Ok(reply)
        };
        let reply = run().map_err(|e| e.to_string())?;
        serde_json::from_str::<Response>(reply.trim_end()).map_err(|e| format!("bad reply: {e}"))
    }

    /// The attempt's exponential backoff with multiplicative 0.5–1.5×
    /// jitter from the seeded stream.
    fn backoff_ms(&self, attempt: usize) -> u64 {
        let base = self
            .policy
            .base_backoff_ms
            .saturating_mul(1u64 << attempt.min(10))
            .min(self.policy.max_backoff_ms);
        let jitter_permille = self
            .rng
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .gen_range(500..=1500u64);
        (base * jitter_permille / 1000).max(1)
    }

    /// Counts a retry and sleeps `wait_ms`, truncated to the remaining
    /// deadline (and failing if none remains).
    fn retry_sleep(
        &self,
        wait_ms: u64,
        started: Instant,
        deadline: Option<Duration>,
        context: &str,
    ) -> Result<(), ClientError> {
        SERVE_CLIENT_RETRIES.add(1);
        let wait = match remaining(started, deadline) {
            Ok(Some(ms)) if ms <= wait_ms => {
                return Err(ClientError::DeadlineExceeded(context.to_string()))
            }
            Ok(_) => wait_ms,
            Err(()) => return Err(ClientError::DeadlineExceeded(context.to_string())),
        };
        std::thread::sleep(Duration::from_millis(wait));
        Ok(())
    }
}

/// Remaining budget in ms (`Ok(None)` when unbounded, `Err` when
/// exhausted).
fn remaining(started: Instant, deadline: Option<Duration>) -> Result<Option<u64>, ()> {
    match deadline {
        None => Ok(None),
        Some(d) => {
            let elapsed = started.elapsed();
            if elapsed >= d {
                Err(())
            } else {
                Ok(Some((d - elapsed).as_millis() as u64))
            }
        }
    }
}

/// Refines a terminal transient failure into a deadline failure when
/// the budget is what actually ran out.
fn at_deadline(e: ClientError, started: Instant, deadline_ms: Option<u64>) -> ClientError {
    if let (ClientError::Unavailable(m), Some(ms)) = (&e, deadline_ms) {
        if started.elapsed() >= Duration::from_millis(ms) {
            return ClientError::DeadlineExceeded(m.clone());
        }
    }
    e
}

/// Encodes a string as a JSON literal (model specs contain no exotic
/// characters, but quoting stays correct regardless).
fn encode_json_string(s: &str) -> String {
    serde_json::to_string(&s.to_string()).unwrap_or_else(|_| format!("\"{s}\""))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_jitters_within_bounds() {
        let client = ClusterClient::new(vec!["127.0.0.1:1".into()], 7);
        for attempt in 0..6 {
            let base = RetryPolicy::default()
                .base_backoff_ms
                .saturating_mul(1 << attempt)
                .min(RetryPolicy::default().max_backoff_ms);
            for _ in 0..32 {
                let b = client.backoff_ms(attempt);
                assert!(b >= base / 2 && b <= base * 3 / 2, "attempt {attempt}: {b}");
            }
        }
        // Seeded stream: two clients with one seed produce one schedule.
        let a = ClusterClient::new(vec!["127.0.0.1:1".into()], 9);
        let b = ClusterClient::new(vec!["127.0.0.1:1".into()], 9);
        let seq_a: Vec<u64> = (0..8).map(|i| a.backoff_ms(i)).collect();
        let seq_b: Vec<u64> = (0..8).map(|i| b.backoff_ms(i)).collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn no_peers_and_dead_peers_fail_cleanly() {
        let none = ClusterClient::new(Vec::new(), 1);
        assert!(matches!(none.stats(), Err(ClientError::Unavailable(_))));
        // A port from the reserved block nothing listens on; a tight
        // policy keeps the test fast.
        let dead = ClusterClient::with_policy(
            vec!["127.0.0.1:1".into()],
            1,
            RetryPolicy {
                max_attempts: 2,
                base_backoff_ms: 1,
                max_backoff_ms: 2,
                connect_timeout_ms: 50,
                io_timeout_ms: 50,
            },
        );
        assert!(matches!(dead.stats(), Err(ClientError::Unavailable(_))));
    }

    #[test]
    fn deadlines_bound_the_retry_loop() {
        let dead = ClusterClient::with_policy(
            vec!["127.0.0.1:1".into()],
            1,
            RetryPolicy {
                max_attempts: 100,
                base_backoff_ms: 20,
                max_backoff_ms: 100,
                connect_timeout_ms: 50,
                io_timeout_ms: 50,
            },
        );
        let started = Instant::now();
        let result = dead.solve("t-res:3:1", 1, 1, false, Some(80));
        assert!(
            matches!(
                result,
                Err(ClientError::DeadlineExceeded(_)) | Err(ClientError::Unavailable(_))
            ),
            "got {result:?}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "the deadline cut the loop short"
        );
    }

    #[test]
    fn remaining_budget_math() {
        let t = Instant::now();
        assert_eq!(remaining(t, None), Ok(None));
        let r = remaining(t, Some(Duration::from_millis(10_000))).unwrap();
        assert!(r.is_some_and(|ms| ms <= 10_000 && ms > 9_000));
        assert!(remaining(
            t - Duration::from_millis(10),
            Some(Duration::from_millis(5))
        )
        .is_err());
    }

    #[test]
    fn json_string_encoding_quotes() {
        assert_eq!(encode_json_string("t-res:3:1"), "\"t-res:3:1\"");
    }
}
