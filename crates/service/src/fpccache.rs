//! Content-addressed caching for FPC finalization summaries (the
//! `fpc:` query namespace).
//!
//! A summary is addressed by `(spec, runs, seed)` through the same
//! canonical-text-to-content-hash discipline the verdict store uses:
//! every spelling of one workload resolves to one key, so a summary
//! computed once — by `fact-cli fpc` or by a serve worker — is a store
//! hit for every later query. Summaries are tiny (one [`FpcStats`]
//! JSON object), deterministic (the whole batch is a pure function of
//! the key), and **validated on read**: a disk entry must reproduce its
//! own content address from its recorded `(spec, runs, seed)` fields,
//! so a truncated or tampered file degrades to a counted miss instead
//! of serving a wrong summary.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use act_fpc::{run_stats, FpcSpec, FpcStats};

use crate::{SERVE_FPC_CORRUPT, SERVE_FPC_HITS, SERVE_FPC_MISSES};

/// Schema version of the persisted summary JSON.
pub const FPC_SUMMARY_SCHEMA: u64 = 1;

/// The largest batch a single query may ask for (simulation is cheap,
/// but a summary is computed synchronously on the serving thread).
pub const FPC_MAX_RUNS: u64 = 1_000_000;

/// Default batch size when a query names none.
pub const FPC_DEFAULT_RUNS: u64 = 10_000;

/// Default batch seed when a query names none (the campaign default).
pub const FPC_DEFAULT_SEED: u64 = 0xFAC7;

/// The content address of one `(spec, runs, seed)` summary.
pub fn summary_key(spec: &FpcSpec, runs: u64, seed: u64) -> u128 {
    crate::content_hash128(
        format!(
            "fact-fpc|schema={FPC_SUMMARY_SCHEMA}|spec={}|runs={runs}|seed={seed}",
            spec.canonical_string()
        )
        .as_bytes(),
    )
}

/// A two-tier (memory + optional disk) cache of FPC summaries.
pub struct FpcCache {
    memory: Mutex<BTreeMap<u128, FpcStats>>,
    disk: Option<PathBuf>,
}

impl FpcCache {
    /// A memory-only cache.
    pub fn in_memory() -> FpcCache {
        FpcCache {
            memory: Mutex::new(BTreeMap::new()),
            disk: None,
        }
    }

    /// A cache persisting under `<store>/fpc/` — the same store root the
    /// verdict store uses, so one `--store` directory carries both
    /// namespaces.
    pub fn open(store_root: &Path) -> std::io::Result<FpcCache> {
        let dir = store_root.join("fpc");
        std::fs::create_dir_all(&dir)?;
        Ok(FpcCache {
            memory: Mutex::new(BTreeMap::new()),
            disk: Some(dir),
        })
    }

    fn entry_path(&self, key: u128) -> Option<PathBuf> {
        self.disk
            .as_ref()
            .map(|d| d.join(format!("fpc-{key:032x}.json")))
    }

    /// Looks a summary up (memory first, then validated disk read).
    pub fn get(&self, spec: &FpcSpec, runs: u64, seed: u64) -> Option<FpcStats> {
        let key = summary_key(spec, runs, seed);
        if let Some(stats) = self
            .memory
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
        {
            return Some(stats.clone());
        }
        let path = self.entry_path(key)?;
        let json = std::fs::read_to_string(&path).ok()?;
        let stats: FpcStats = match serde_json::from_str(&json) {
            Ok(s) => s,
            Err(_) => {
                SERVE_FPC_CORRUPT.add(1);
                return None;
            }
        };
        // Validate on read: the entry must reproduce its own address
        // from its recorded fields, or it is not the summary we asked
        // for (tampering, truncation-survivable JSON, or a moved file).
        let recorded_spec = FpcSpec::parse(&stats.spec).ok();
        let valid = recorded_spec
            .map(|s| summary_key(&s, stats.runs, stats.seed) == key)
            .unwrap_or(false);
        if !valid {
            SERVE_FPC_CORRUPT.add(1);
            return None;
        }
        self.memory
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, stats.clone());
        Some(stats)
    }

    /// Commits a summary (memory insert + atomic disk publish).
    pub fn put(&self, spec: &FpcSpec, runs: u64, seed: u64, stats: &FpcStats) {
        let key = summary_key(spec, runs, seed);
        self.memory
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, stats.clone());
        if let Some(path) = self.entry_path(key) {
            if let Ok(json) = serde_json::to_string_pretty(stats) {
                let tmp = path.with_extension("json.tmp");
                if std::fs::write(&tmp, json).is_ok() {
                    let _ = std::fs::rename(&tmp, &path);
                }
            }
        }
    }

    /// Answers one query: a cache hit, or a freshly simulated batch
    /// committed for the next asker. The `&'static str` is the answer's
    /// source (`"store"` / `"engine"`), mirroring solve replies.
    pub fn summary(&self, spec: &FpcSpec, runs: u64, seed: u64) -> (FpcStats, &'static str) {
        if let Some(stats) = self.get(spec, runs, seed) {
            SERVE_FPC_HITS.add(1);
            return (stats, "store");
        }
        SERVE_FPC_MISSES.add(1);
        let stats = run_stats(spec, runs, seed);
        self.put(spec, runs, seed, &stats);
        (stats, "engine")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fact-fpc-cache-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn keys_are_canonical_across_spellings() {
        let a = FpcSpec::parse("fpc:32:8:berserk").unwrap();
        let b = FpcSpec::parse("fpc:32:8:berserk:10:500").unwrap();
        assert_eq!(summary_key(&a, 100, 7), summary_key(&b, 100, 7));
        assert_ne!(summary_key(&a, 100, 7), summary_key(&a, 101, 7));
        assert_ne!(summary_key(&a, 100, 7), summary_key(&a, 100, 8));
    }

    #[test]
    fn second_query_is_a_store_hit_across_cache_instances() {
        let root = temp_store("hit");
        let spec = FpcSpec::parse("fpc:16:4:berserk:5:500").unwrap();
        let cache = FpcCache::open(&root).unwrap();
        let (first, source) = cache.summary(&spec, 200, 42);
        assert_eq!(source, "engine");
        let (again, source) = cache.summary(&spec, 200, 42);
        assert_eq!(source, "store");
        assert_eq!(first, again);

        // A fresh cache over the same directory hits the disk tier.
        let reopened = FpcCache::open(&root).unwrap();
        let (persisted, source) = reopened.summary(&spec, 200, 42);
        assert_eq!(source, "store");
        assert_eq!(persisted, first);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_entries_degrade_to_misses() {
        let root = temp_store("corrupt");
        let spec = FpcSpec::parse("fpc:16:4:berserk:5:500").unwrap();
        let cache = FpcCache::open(&root).unwrap();
        let (stats, _) = cache.summary(&spec, 100, 1);

        // Tamper with the persisted entry: swap the recorded seed, so
        // the content address no longer matches.
        let key = summary_key(&spec, 100, 1);
        let path = root.join("fpc").join(format!("fpc-{key:032x}.json"));
        let mut forged = stats.clone();
        forged.seed = 999;
        std::fs::write(&path, serde_json::to_string(&forged).unwrap()).unwrap();
        let corrupt_before = SERVE_FPC_CORRUPT.get();
        let fresh = FpcCache::open(&root).unwrap();
        let (recomputed, source) = fresh.summary(&spec, 100, 1);
        assert_eq!(source, "engine", "a forged entry must not serve");
        assert_eq!(SERVE_FPC_CORRUPT.get(), corrupt_before + 1);
        assert_eq!(recomputed, stats);

        // Truncated JSON degrades the same way.
        std::fs::write(&path, "{\"spec\":").unwrap();
        let truncated = FpcCache::open(&root).unwrap();
        assert!(truncated.get(&spec, 100, 1).is_none());
        let _ = std::fs::remove_dir_all(&root);
    }
}
