//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line, one response per line. Every request carries an
//! `op` and an optional client-chosen `id` (echoed back, default 0):
//!
//! ```json
//! {"op":"solve","id":1,"model":"t-res:3:1","k":1,"iters":2}
//! {"op":"solve","id":2,"model":"k-of:3:2","k":2,"deadline_ms":500}
//! {"op":"stats","id":3}
//! {"op":"shutdown","id":4}
//! ```
//!
//! Responses are flat JSON objects; absent fields are `null`:
//!
//! ```json
//! {"id":1,"op":"solve","ok":true,"verdict":"solvable","iterations":1,
//!  "witness_len":30,"source":"store","authoritative":true, ...}
//! {"id":9,"op":"error","ok":false,"error":"...","code":2, ...}
//! ```
//!
//! Error `code`s follow the CLI exit-code vocabulary where they overlap
//! — `1` runtime, `2` usage (malformed request or spec) — plus the
//! serving-only classes `5` (backpressure: bounded queue full, retry
//! later) and `6` (draining: the server is shutting down).

use fact::{ModelSpec, TaskSpec};
use serde::{Deserialize, Serialize, Value};

/// Version of the request/response schema.
pub const PROTOCOL_VERSION: u32 = 1;

/// Error code: runtime failure while answering a well-formed query.
pub const CODE_RUNTIME: u64 = 1;
/// Error code: malformed request or spec (the CLI's usage exit code).
pub const CODE_USAGE: u64 = 2;
/// Error code: backpressure — the bounded queue is full, retry later.
pub const CODE_BACKPRESSURE: u64 = 5;
/// Error code: the server is draining and accepts no new queries.
pub const CODE_DRAINING: u64 = 6;

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id (0 when omitted).
    pub id: u64,
    /// What the client asked for.
    pub body: RequestBody,
}

/// The operation a request names.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestBody {
    /// Decide `k`-set consensus under `model` deepening to `iters`.
    Solve {
        /// The model, parsed through the canonical parser.
        model: ModelSpec,
        /// The task (validated `k` against the model's process count).
        task: TaskSpec,
        /// Deepening bound `ℓ` (≥ 1).
        iters: usize,
        /// Optional per-request wall-clock budget for the search.
        deadline_ms: Option<u64>,
    },
    /// Snapshot the serving counters.
    Stats,
    /// Drain the queue and stop the server.
    Shutdown,
}

/// Parses one request line. On failure returns `(id, message)` — the id
/// is recovered from the malformed request when possible so the error
/// reply still correlates.
pub fn parse_request(line: &str) -> Result<Request, (u64, String)> {
    let v: Value = serde_json::from_str(line).map_err(|e| (0, format!("bad JSON: {e}")))?;
    let id = opt_u64(&v, "id").unwrap_or(0);
    let fail = |msg: String| (id, msg);
    let op = match v.field("op") {
        Ok(Value::Str(s)) => s.clone(),
        _ => return Err(fail("missing string field `op`".into())),
    };
    let body = match op.as_str() {
        "solve" => {
            let model_text = match v.field("model") {
                Ok(Value::Str(s)) => s.clone(),
                _ => return Err(fail("solve needs a string `model`".into())),
            };
            let model = ModelSpec::parse(&model_text, false).map_err(&fail)?;
            let k =
                opt_u64(&v, "k").ok_or_else(|| fail("solve needs an integer `k`".into()))? as usize;
            let task = TaskSpec::set_consensus(model.num_processes(), k).map_err(&fail)?;
            let iters = opt_u64(&v, "iters").unwrap_or(1) as usize;
            if iters == 0 {
                return Err(fail("iters must be at least 1".into()));
            }
            RequestBody::Solve {
                model,
                task,
                iters,
                deadline_ms: opt_u64(&v, "deadline_ms"),
            }
        }
        "stats" => RequestBody::Stats,
        "shutdown" => RequestBody::Shutdown,
        other => return Err(fail(format!("unknown op {other:?}"))),
    };
    Ok(Request { id, body })
}

/// An optional unsigned field of a request object.
fn opt_u64(v: &Value, name: &str) -> Option<u64> {
    match v.field(name) {
        Ok(Value::UInt(n)) => Some(*n),
        Ok(Value::Int(n)) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

/// Counter snapshot carried by a `stats` response.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StatsBody {
    /// Queries answered from the store.
    pub hits: u64,
    /// Queries that needed (or joined) an engine run.
    pub misses: u64,
    /// Queries coalesced onto an in-flight identical computation.
    pub coalesced: u64,
    /// Engine runs executed by workers.
    pub engine_runs: u64,
    /// Store entries degraded to misses (truncated / bad checksum).
    pub store_corrupt: u64,
    /// Domain-tower levels served from the tower store (subdivision
    /// rounds the engine did not have to run).
    pub tower_hits: u64,
    /// Tower-store lookups that found nothing and built in-process.
    pub tower_misses: u64,
    /// Tower-store entries degraded to counted misses.
    pub tower_corrupt: u64,
    /// Queries rejected with a backpressure reply.
    pub rejected: u64,
    /// Jobs admitted and waiting for a worker right now.
    pub queue_depth: u64,
    /// Jobs admitted (queued or running) right now.
    pub inflight: u64,
    /// Worker threads serving the queue.
    pub workers: u64,
}

/// One response line (flat; unused fields are `null` on the wire).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Response {
    /// Echo of the request id (0 when the request carried none).
    pub id: u64,
    /// `solve` | `stats` | `shutdown` | `error`.
    pub op: String,
    /// Whether the request was answered (a non-authoritative verdict is
    /// still `ok: true` — the *request* succeeded).
    pub ok: bool,
    /// Verdict name for `solve` replies.
    pub verdict: Option<String>,
    /// Iteration count of the verdict.
    pub iterations: Option<u64>,
    /// Size of the witnessing map (vertices mapped), for `solvable`.
    pub witness_len: Option<u64>,
    /// Where the answer came from: `store`, `engine`, or `coalesced`.
    pub source: Option<String>,
    /// Whether the verdict is authoritative (`solvable` / `no-map`).
    /// `false` marks `exhausted` / `timed-out`, which are never served
    /// from or written to the persistent store.
    pub authoritative: Option<bool>,
    /// Error message for `error` replies.
    pub error: Option<String>,
    /// Error class for `error` replies (see the module docs).
    pub code: Option<u64>,
    /// Counter snapshot for `stats` replies.
    pub stats: Option<StatsBody>,
}

impl Response {
    fn blank(id: u64, op: &str, ok: bool) -> Response {
        Response {
            id,
            op: op.to_string(),
            ok,
            verdict: None,
            iterations: None,
            witness_len: None,
            source: None,
            authoritative: None,
            error: None,
            code: None,
            stats: None,
        }
    }

    /// A `solve` reply.
    pub fn solve(
        id: u64,
        verdict: &str,
        iterations: u64,
        witness_len: u64,
        source: &str,
        authoritative: bool,
    ) -> Response {
        let mut r = Response::blank(id, "solve", true);
        r.verdict = Some(verdict.to_string());
        r.iterations = Some(iterations);
        r.witness_len = Some(witness_len);
        r.source = Some(source.to_string());
        r.authoritative = Some(authoritative);
        r
    }

    /// An `error` reply.
    pub fn error(id: u64, code: u64, message: &str) -> Response {
        let mut r = Response::blank(id, "error", false);
        r.error = Some(message.to_string());
        r.code = Some(code);
        r
    }

    /// A `stats` reply.
    pub fn stats(id: u64, stats: StatsBody) -> Response {
        let mut r = Response::blank(id, "stats", true);
        r.stats = Some(stats);
        r
    }

    /// The `shutdown` acknowledgement, sent after the drain completes.
    pub fn shutdown(id: u64) -> Response {
        Response::blank(id, "shutdown", true)
    }

    /// The response as one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|e| {
            format!(
                "{{\"id\":{},\"op\":\"error\",\"ok\":false,\"error\":\"encode: {e}\",\"code\":1}}",
                self.id
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_requests_parse_with_defaults() {
        let r = parse_request(r#"{"op":"solve","id":7,"model":"t-res:3:1","k":1}"#).unwrap();
        assert_eq!(r.id, 7);
        match r.body {
            RequestBody::Solve {
                model,
                task,
                iters,
                deadline_ms,
            } => {
                assert_eq!(model.canonical_string(), "t-res:3:1");
                assert_eq!(task.canonical_string(), "set-consensus:3:1");
                assert_eq!(iters, 1);
                assert_eq!(deadline_ms, None);
            }
            other => panic!("expected solve, got {other:?}"),
        }
        let r =
            parse_request(r#"{"op":"solve","model":"k-of:3:2","k":2,"iters":3,"deadline_ms":250}"#)
                .unwrap();
        assert_eq!(r.id, 0);
        assert!(matches!(
            r.body,
            RequestBody::Solve {
                iters: 3,
                deadline_ms: Some(250),
                ..
            }
        ));
    }

    #[test]
    fn malformed_requests_fail_with_correlated_ids() {
        assert_eq!(parse_request("not json").unwrap_err().0, 0);
        let (id, msg) =
            parse_request(r#"{"op":"solve","id":9,"model":"nope:3","k":1}"#).unwrap_err();
        assert_eq!(id, 9);
        assert!(msg.contains("unrecognized model spec"));
        let (id, _) = parse_request(r#"{"op":"solve","id":3,"model":"t-res:3:1"}"#).unwrap_err();
        assert_eq!(id, 3);
        assert!(parse_request(r#"{"op":"frobnicate","id":1}"#).is_err());
        assert!(parse_request(r#"{"id":1}"#).is_err());
        // k out of range is a spec validation error, same as the CLI's.
        assert!(parse_request(r#"{"op":"solve","model":"t-res:3:1","k":3}"#).is_err());
        assert!(parse_request(r#"{"op":"solve","model":"t-res:3:1","k":1,"iters":0}"#).is_err());
    }

    #[test]
    fn stats_and_shutdown_parse() {
        assert_eq!(
            parse_request(r#"{"op":"stats","id":2}"#).unwrap().body,
            RequestBody::Stats
        );
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap().body,
            RequestBody::Shutdown
        );
    }

    #[test]
    fn responses_encode_and_reparse() {
        let line = Response::solve(4, "solvable", 1, 30, "store", true).encode();
        let v: Value = serde_json::from_str(&line).unwrap();
        assert!(matches!(v.field("verdict"), Ok(Value::Str(s)) if s == "solvable"));
        assert!(matches!(v.field("ok"), Ok(Value::Bool(true))));
        assert!(matches!(v.field("authoritative"), Ok(Value::Bool(true))));
        assert!(matches!(v.field("error"), Ok(Value::Null)));

        let line = Response::error(0, CODE_USAGE, "bad spec").encode();
        let v: Value = serde_json::from_str(&line).unwrap();
        assert!(matches!(v.field("code"), Ok(Value::UInt(2))));

        let round: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(round.code, Some(CODE_USAGE));
        assert!(!round.ok);

        let line = Response::stats(1, StatsBody::default()).encode();
        let v: Value = serde_json::from_str(&line).unwrap();
        assert!(v.field("stats").unwrap().field("hits").is_ok());
    }
}
