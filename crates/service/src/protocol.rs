//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line, one response per line. Every request carries an
//! `op` and an optional client-chosen `id` (echoed back, default 0):
//!
//! ```json
//! {"op":"solve","id":1,"model":"t-res:3:1","k":1,"iters":2}
//! {"op":"solve","id":2,"model":"k-of:3:2","k":2,"deadline_ms":500}
//! {"op":"stats","id":3}
//! {"op":"shutdown","id":4}
//! ```
//!
//! Responses are flat JSON objects; absent fields are `null`:
//!
//! ```json
//! {"id":1,"op":"solve","ok":true,"verdict":"solvable","iterations":1,
//!  "witness_len":30,"source":"store","authoritative":true, ...}
//! {"id":9,"op":"error","ok":false,"error":"...","code":2, ...}
//! ```
//!
//! Error `code`s follow the CLI exit-code vocabulary where they overlap
//! — `1` runtime, `2` usage (malformed request or spec) — plus the
//! serving-only classes `5` (backpressure: bounded queue full, retry
//! after the reply's `retry_after_ms`) and `6` (draining: the server is
//! shutting down).
//!
//! Version 2 adds the cluster surface: `solve` accepts `"proof":true`
//! (the reply then carries a Merkle inclusion proof), any request may
//! carry `"fwd":true` (an intra-cluster forward — the receiver answers
//! locally instead of re-forwarding), and the peer ops `root`,
//! `entries`, `fetch`, `replicate`, `scrub`, and `sync` drive
//! anti-entropy and repair (see [`crate::cluster`]). All response
//! fields are additive, so v1 clients keep working.

use crate::fpccache::{FPC_DEFAULT_RUNS, FPC_DEFAULT_SEED, FPC_MAX_RUNS};
use crate::merkle::{parse_hash_hex, InclusionProof, ScrubReport};
use act_fpc::{FpcSpec, FpcStats};
use fact::{ModelSpec, TaskSpec};
use serde::{Deserialize, Serialize, Value};

/// Version of the request/response schema.
pub const PROTOCOL_VERSION: u32 = 2;

/// Error code: runtime failure while answering a well-formed query.
pub const CODE_RUNTIME: u64 = 1;
/// Error code: malformed request or spec (the CLI's usage exit code).
pub const CODE_USAGE: u64 = 2;
/// Error code: backpressure — the bounded queue is full, retry later.
pub const CODE_BACKPRESSURE: u64 = 5;
/// Error code: the server is draining and accepts no new queries.
pub const CODE_DRAINING: u64 = 6;

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id (0 when omitted).
    pub id: u64,
    /// Whether this line is an intra-cluster forward (`"fwd":true`):
    /// the receiver must answer locally, never forward again.
    pub forwarded: bool,
    /// What the client asked for.
    pub body: RequestBody,
}

/// The operation a request names.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestBody {
    /// Decide `k`-set consensus under `model` deepening to `iters`.
    Solve {
        /// The model, parsed through the canonical parser.
        model: ModelSpec,
        /// The task (validated `k` against the model's process count).
        task: TaskSpec,
        /// Deepening bound `ℓ` (≥ 1).
        iters: usize,
        /// Optional per-request wall-clock budget for the search.
        deadline_ms: Option<u64>,
        /// Whether the reply should carry a Merkle inclusion proof for
        /// a store-committed verdict.
        proof: bool,
    },
    /// Answer an FPC finalization-statistics query from the summary
    /// cache (simulating and committing the batch on a miss).
    Fpc {
        /// The workload, parsed through the canonical `fpc:` parser.
        spec: FpcSpec,
        /// Batch size (1..=[`FPC_MAX_RUNS`]).
        runs: u64,
        /// Batch seed.
        seed: u64,
    },
    /// Snapshot the serving counters.
    Stats,
    /// Drain the queue and stop the server.
    Shutdown,
    /// Peer op: report the store's Merkle root and entry count.
    Root,
    /// Peer op: list every `(entry hash, file hash)` pair.
    Entries,
    /// Peer op: ship one entry's canonical serialized bytes.
    Fetch {
        /// Content address of the wanted entry.
        hash: u128,
    },
    /// Peer op: accept one replicated entry (validated before commit).
    Replicate {
        /// The entry's canonical serialized bytes.
        entry: String,
    },
    /// Operator op: run one scrub pass now and report it.
    Scrub,
    /// Operator op: run one anti-entropy round against every peer now.
    SyncNow,
}

/// Parses one request line. On failure returns `(id, message)` — the id
/// is recovered from the malformed request when possible so the error
/// reply still correlates.
pub fn parse_request(line: &str) -> Result<Request, (u64, String)> {
    let v: Value = serde_json::from_str(line).map_err(|e| (0, format!("bad JSON: {e}")))?;
    let id = opt_u64(&v, "id").unwrap_or(0);
    let fail = |msg: String| (id, msg);
    let op = match v.field("op") {
        Ok(Value::Str(s)) => s.clone(),
        _ => return Err(fail("missing string field `op`".into())),
    };
    let body = match op.as_str() {
        "solve" => {
            let model_text = match v.field("model") {
                Ok(Value::Str(s)) => s.clone(),
                _ => return Err(fail("solve needs a string `model`".into())),
            };
            let model = ModelSpec::parse(&model_text, false).map_err(&fail)?;
            let k =
                opt_u64(&v, "k").ok_or_else(|| fail("solve needs an integer `k`".into()))? as usize;
            let task = TaskSpec::set_consensus(model.num_processes(), k).map_err(&fail)?;
            let iters = opt_u64(&v, "iters").unwrap_or(1) as usize;
            if iters == 0 {
                return Err(fail("iters must be at least 1".into()));
            }
            RequestBody::Solve {
                model,
                task,
                iters,
                deadline_ms: opt_u64(&v, "deadline_ms"),
                proof: opt_bool(&v, "proof"),
            }
        }
        "fpc" => {
            let spec_text = match v.field("spec") {
                Ok(Value::Str(s)) => s.clone(),
                _ => return Err(fail("fpc needs a string `spec`".into())),
            };
            let spec = FpcSpec::parse(&spec_text).map_err(&fail)?;
            let runs = opt_u64(&v, "runs").unwrap_or(FPC_DEFAULT_RUNS);
            if !(1..=FPC_MAX_RUNS).contains(&runs) {
                return Err(fail(format!("fpc runs must be in 1..={FPC_MAX_RUNS}")));
            }
            RequestBody::Fpc {
                spec,
                runs,
                seed: opt_u64(&v, "seed").unwrap_or(FPC_DEFAULT_SEED),
            }
        }
        "stats" => RequestBody::Stats,
        "shutdown" => RequestBody::Shutdown,
        "root" => RequestBody::Root,
        "entries" => RequestBody::Entries,
        "fetch" => {
            let hash = match v.field("hash") {
                Ok(Value::Str(s)) => parse_hash_hex(s)
                    .ok_or_else(|| fail("fetch needs a 32-hex-digit `hash`".into()))?,
                _ => return Err(fail("fetch needs a string `hash`".into())),
            };
            RequestBody::Fetch { hash }
        }
        "replicate" => {
            let entry = match v.field("entry") {
                Ok(Value::Str(s)) => s.clone(),
                _ => return Err(fail("replicate needs a string `entry`".into())),
            };
            RequestBody::Replicate { entry }
        }
        "scrub" => RequestBody::Scrub,
        "sync" => RequestBody::SyncNow,
        other => return Err(fail(format!("unknown op {other:?}"))),
    };
    Ok(Request {
        id,
        forwarded: opt_bool(&v, "fwd"),
        body,
    })
}

/// An optional unsigned field of a request object.
fn opt_u64(v: &Value, name: &str) -> Option<u64> {
    match v.field(name) {
        Ok(Value::UInt(n)) => Some(*n),
        Ok(Value::Int(n)) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

/// An optional boolean field of a request object (absent → `false`).
fn opt_bool(v: &Value, name: &str) -> bool {
    matches!(v.field(name), Ok(Value::Bool(true)))
}

/// The backpressure retry hint for a given queue depth: ~10 ms per
/// queued job (a cheap query's service time), capped at one second.
pub fn retry_after_for_depth(queue_depth: u64) -> u64 {
    ((queue_depth + 1) * 10).min(1_000)
}

/// Counter snapshot carried by a `stats` response.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StatsBody {
    /// Queries answered from the store.
    pub hits: u64,
    /// Queries that needed (or joined) an engine run.
    pub misses: u64,
    /// Queries coalesced onto an in-flight identical computation.
    pub coalesced: u64,
    /// Engine runs executed by workers.
    pub engine_runs: u64,
    /// Store entries degraded to misses (truncated / bad checksum).
    pub store_corrupt: u64,
    /// Domain-tower levels served from the tower store (subdivision
    /// rounds the engine did not have to run).
    pub tower_hits: u64,
    /// Tower-store lookups that found nothing and built in-process.
    pub tower_misses: u64,
    /// Tower-store entries degraded to counted misses.
    pub tower_corrupt: u64,
    /// Queries rejected with a backpressure reply.
    pub rejected: u64,
    /// Jobs admitted and waiting for a worker right now.
    pub queue_depth: u64,
    /// Jobs admitted (queued or running) right now.
    pub inflight: u64,
    /// Worker threads serving the queue.
    pub workers: u64,
    /// The store's current Merkle root (32 hex digits; all zeros when
    /// empty).
    pub merkle_root: String,
    /// Entries committed under the Merkle root.
    pub merkle_entries: u64,
    /// Scrub passes completed.
    pub scrub_runs: u64,
    /// Entries scrub found corrupt.
    pub scrub_corrupt: u64,
    /// Corrupt entries scrub repaired from a good copy.
    pub scrub_repaired: u64,
    /// Corrupt entries scrub quarantined (no good copy anywhere).
    pub scrub_quarantined: u64,
    /// Requests forwarded to an owner peer.
    pub peer_forwards: u64,
    /// Forwards that failed over to a replica (an owner was down).
    pub failovers: u64,
    /// Fresh verdicts write-through-replicated to peers.
    pub peer_replications: u64,
    /// Entries pulled from peers by anti-entropy sync.
    pub peer_sync_pulls: u64,
    /// `fpc:` queries answered from a cached summary.
    pub fpc_hits: u64,
    /// `fpc:` queries that simulated the batch.
    pub fpc_misses: u64,
    /// Cached FPC summaries degraded to misses by validate-on-read.
    pub fpc_corrupt: u64,
}

/// One response line (flat; unused fields are `null` on the wire).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Response {
    /// Echo of the request id (0 when the request carried none).
    pub id: u64,
    /// `solve` | `stats` | `shutdown` | `error`.
    pub op: String,
    /// Whether the request was answered (a non-authoritative verdict is
    /// still `ok: true` — the *request* succeeded).
    pub ok: bool,
    /// Verdict name for `solve` replies.
    pub verdict: Option<String>,
    /// Iteration count of the verdict.
    pub iterations: Option<u64>,
    /// Size of the witnessing map (vertices mapped), for `solvable`.
    pub witness_len: Option<u64>,
    /// Where the answer came from: `store`, `engine`, or `coalesced`.
    pub source: Option<String>,
    /// Whether the verdict is authoritative (`solvable` / `no-map`).
    /// `false` marks `exhausted` / `timed-out`, which are never served
    /// from or written to the persistent store.
    pub authoritative: Option<bool>,
    /// Error message for `error` replies.
    pub error: Option<String>,
    /// Error class for `error` replies (see the module docs).
    pub code: Option<u64>,
    /// Counter snapshot for `stats` replies.
    pub stats: Option<StatsBody>,
    /// Backpressure hint: milliseconds to wait before retrying
    /// (code-5 `error` replies; derived from the queue depth).
    pub retry_after_ms: Option<u64>,
    /// The store's Merkle root (32 hex digits) for `root`, `sync`, and
    /// proof-carrying `solve` replies.
    pub merkle_root: Option<String>,
    /// Entry count under the root, for `root` replies.
    pub entry_count: Option<u64>,
    /// Inclusion proof: the entry's content address.
    pub proof_entry: Option<String>,
    /// Inclusion proof: the hash of the entry's committed bytes.
    pub proof_file: Option<String>,
    /// Inclusion proof: the sibling path, leaf first (`"l:<hex>"` /
    /// `"r:<hex>"`).
    pub proof_path: Option<Vec<String>>,
    /// Entry listing for `entries` replies (`"<entry>:<file>"` hex
    /// pairs).
    pub entries: Option<Vec<String>>,
    /// One entry's canonical serialized bytes, for `fetch` replies.
    pub entry: Option<String>,
    /// Scrub outcome, for `scrub` replies.
    pub scrub: Option<ScrubReport>,
    /// Entries pulled during the round, for `sync` replies.
    pub pulled: Option<u64>,
    /// Finalization statistics, for `fpc` replies.
    pub fpc: Option<FpcStats>,
}

impl Response {
    fn blank(id: u64, op: &str, ok: bool) -> Response {
        Response {
            id,
            op: op.to_string(),
            ok,
            verdict: None,
            iterations: None,
            witness_len: None,
            source: None,
            authoritative: None,
            error: None,
            code: None,
            stats: None,
            retry_after_ms: None,
            merkle_root: None,
            entry_count: None,
            proof_entry: None,
            proof_file: None,
            proof_path: None,
            entries: None,
            entry: None,
            scrub: None,
            pulled: None,
            fpc: None,
        }
    }

    /// A `solve` reply.
    pub fn solve(
        id: u64,
        verdict: &str,
        iterations: u64,
        witness_len: u64,
        source: &str,
        authoritative: bool,
    ) -> Response {
        let mut r = Response::blank(id, "solve", true);
        r.verdict = Some(verdict.to_string());
        r.iterations = Some(iterations);
        r.witness_len = Some(witness_len);
        r.source = Some(source.to_string());
        r.authoritative = Some(authoritative);
        r
    }

    /// An `error` reply.
    pub fn error(id: u64, code: u64, message: &str) -> Response {
        let mut r = Response::blank(id, "error", false);
        r.error = Some(message.to_string());
        r.code = Some(code);
        r
    }

    /// A backpressure (`code` 5) reply with the structured retry hint:
    /// roughly one scheduling quantum per queued job, capped at a
    /// second, so a deep queue pushes clients further out.
    pub fn backpressure(id: u64, queue_depth: u64) -> Response {
        let mut r = Response::error(id, CODE_BACKPRESSURE, "queue full, retry later");
        r.retry_after_ms = Some(retry_after_for_depth(queue_depth));
        r
    }

    /// Attaches a Merkle inclusion proof to a reply (proof-carrying
    /// `solve`).
    pub fn with_proof(mut self, proof: &InclusionProof) -> Response {
        self.proof_entry = Some(format!("{:032x}", proof.entry_hash));
        self.proof_file = Some(format!("{:032x}", proof.file_hash));
        self.proof_path = Some(proof.encode_path());
        self.merkle_root = Some(format!("{:032x}", proof.root));
        self
    }

    /// Extracts and verifies the inclusion proof a reply carries.
    /// `None` when any field is absent, malformed, or fails
    /// verification — callers treat all three identically (an
    /// unverified answer).
    pub fn verified_proof(&self) -> Option<InclusionProof> {
        let proof = InclusionProof::decode(
            self.proof_entry.as_deref()?,
            self.proof_file.as_deref()?,
            self.proof_path.as_deref()?,
            self.merkle_root.as_deref()?,
        )?;
        proof.verify().then_some(proof)
    }

    /// A `root` reply.
    pub fn root(id: u64, root: u128, entry_count: u64) -> Response {
        let mut r = Response::blank(id, "root", true);
        r.merkle_root = Some(format!("{root:032x}"));
        r.entry_count = Some(entry_count);
        r
    }

    /// An `entries` reply listing `(entry hash, file hash)` pairs.
    pub fn entries(id: u64, pairs: &[(u128, u128)]) -> Response {
        let mut r = Response::blank(id, "entries", true);
        r.entries = Some(
            pairs
                .iter()
                .map(|(e, f)| format!("{e:032x}:{f:032x}"))
                .collect(),
        );
        r
    }

    /// Splits an `entries` reply back into hash pairs (malformed items
    /// are dropped — the sync round simply won't pull them).
    pub fn decode_entries(&self) -> Vec<(u128, u128)> {
        self.entries
            .as_deref()
            .unwrap_or(&[])
            .iter()
            .filter_map(|item| {
                let (e, f) = item.split_once(':')?;
                Some((parse_hash_hex(e)?, parse_hash_hex(f)?))
            })
            .collect()
    }

    /// A `fetch` reply (`ok: false` with no entry when the peer does
    /// not hold it).
    pub fn fetch(id: u64, entry: Option<String>) -> Response {
        let mut r = Response::blank(id, "fetch", entry.is_some());
        r.entry = entry;
        r
    }

    /// A `replicate` acknowledgement (`accepted` = the bytes validated
    /// and were committed).
    pub fn replicate(id: u64, accepted: bool) -> Response {
        Response::blank(id, "replicate", accepted)
    }

    /// A `scrub` reply carrying the pass's report and the post-scrub
    /// root.
    pub fn scrub(id: u64, report: ScrubReport, root: u128) -> Response {
        let mut r = Response::blank(id, "scrub", true);
        r.scrub = Some(report);
        r.merkle_root = Some(format!("{root:032x}"));
        r
    }

    /// A `sync` reply: entries pulled this round and the post-sync root.
    pub fn sync(id: u64, pulled: u64, root: u128) -> Response {
        let mut r = Response::blank(id, "sync", true);
        r.pulled = Some(pulled);
        r.merkle_root = Some(format!("{root:032x}"));
        r
    }

    /// An `fpc` reply carrying the batch's finalization statistics and
    /// where they came from (`store` / `engine`).
    pub fn fpc(id: u64, stats: FpcStats, source: &str) -> Response {
        let mut r = Response::blank(id, "fpc", true);
        r.fpc = Some(stats);
        r.source = Some(source.to_string());
        r
    }

    /// A `stats` reply.
    pub fn stats(id: u64, stats: StatsBody) -> Response {
        let mut r = Response::blank(id, "stats", true);
        r.stats = Some(stats);
        r
    }

    /// The `shutdown` acknowledgement, sent after the drain completes.
    pub fn shutdown(id: u64) -> Response {
        Response::blank(id, "shutdown", true)
    }

    /// The response as one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|e| {
            format!(
                "{{\"id\":{},\"op\":\"error\",\"ok\":false,\"error\":\"encode: {e}\",\"code\":1}}",
                self.id
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_requests_parse_with_defaults() {
        let r = parse_request(r#"{"op":"solve","id":7,"model":"t-res:3:1","k":1}"#).unwrap();
        assert_eq!(r.id, 7);
        assert!(!r.forwarded);
        match r.body {
            RequestBody::Solve {
                model,
                task,
                iters,
                deadline_ms,
                proof,
            } => {
                assert_eq!(model.canonical_string(), "t-res:3:1");
                assert_eq!(task.canonical_string(), "set-consensus:3:1");
                assert_eq!(iters, 1);
                assert_eq!(deadline_ms, None);
                assert!(!proof);
            }
            other => panic!("expected solve, got {other:?}"),
        }
        let r =
            parse_request(r#"{"op":"solve","model":"k-of:3:2","k":2,"iters":3,"deadline_ms":250}"#)
                .unwrap();
        assert_eq!(r.id, 0);
        assert!(matches!(
            r.body,
            RequestBody::Solve {
                iters: 3,
                deadline_ms: Some(250),
                ..
            }
        ));
    }

    #[test]
    fn malformed_requests_fail_with_correlated_ids() {
        assert_eq!(parse_request("not json").unwrap_err().0, 0);
        let (id, msg) =
            parse_request(r#"{"op":"solve","id":9,"model":"nope:3","k":1}"#).unwrap_err();
        assert_eq!(id, 9);
        assert!(msg.contains("unrecognized model spec"));
        let (id, _) = parse_request(r#"{"op":"solve","id":3,"model":"t-res:3:1"}"#).unwrap_err();
        assert_eq!(id, 3);
        assert!(parse_request(r#"{"op":"frobnicate","id":1}"#).is_err());
        assert!(parse_request(r#"{"id":1}"#).is_err());
        // k out of range is a spec validation error, same as the CLI's.
        assert!(parse_request(r#"{"op":"solve","model":"t-res:3:1","k":3}"#).is_err());
        assert!(parse_request(r#"{"op":"solve","model":"t-res:3:1","k":1,"iters":0}"#).is_err());
    }

    #[test]
    fn proof_and_forward_markers_parse() {
        let r =
            parse_request(r#"{"op":"solve","model":"t-res:3:1","k":1,"proof":true,"fwd":true}"#)
                .unwrap();
        assert!(r.forwarded);
        assert!(matches!(r.body, RequestBody::Solve { proof: true, .. }));
    }

    #[test]
    fn cluster_ops_parse() {
        assert_eq!(
            parse_request(r#"{"op":"root","id":1}"#).unwrap().body,
            RequestBody::Root
        );
        assert_eq!(
            parse_request(r#"{"op":"entries"}"#).unwrap().body,
            RequestBody::Entries
        );
        assert_eq!(
            parse_request(r#"{"op":"scrub"}"#).unwrap().body,
            RequestBody::Scrub
        );
        assert_eq!(
            parse_request(r#"{"op":"sync"}"#).unwrap().body,
            RequestBody::SyncNow
        );
        let hash = format!("{:032x}", 0xabcdu128);
        let r = parse_request(&format!(r#"{{"op":"fetch","hash":"{hash}"}}"#)).unwrap();
        assert_eq!(r.body, RequestBody::Fetch { hash: 0xabcd });
        assert!(parse_request(r#"{"op":"fetch","hash":"zz"}"#).is_err());
        assert!(parse_request(r#"{"op":"fetch"}"#).is_err());
        let r = parse_request(r#"{"op":"replicate","entry":"{}"}"#).unwrap();
        assert_eq!(
            r.body,
            RequestBody::Replicate {
                entry: "{}".to_string()
            }
        );
        assert!(parse_request(r#"{"op":"replicate"}"#).is_err());
    }

    #[test]
    fn backpressure_replies_carry_the_retry_hint() {
        let r = Response::backpressure(3, 7);
        assert_eq!(r.code, Some(CODE_BACKPRESSURE));
        assert_eq!(r.retry_after_ms, Some(80));
        let line = r.encode();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back.retry_after_ms, Some(80));
        // The hint grows with depth and saturates at a second.
        assert_eq!(retry_after_for_depth(0), 10);
        assert!(retry_after_for_depth(50) > retry_after_for_depth(5));
        assert_eq!(retry_after_for_depth(1_000_000), 1_000);
    }

    #[test]
    fn cluster_replies_round_trip() {
        let line = Response::root(1, 0xdeadbeef, 4).encode();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(
            back.merkle_root.as_deref(),
            Some(&format!("{:032x}", 0xdeadbeefu128)[..])
        );
        assert_eq!(back.entry_count, Some(4));

        let pairs = vec![(1u128, 2u128), (3, 4)];
        let line = Response::entries(2, &pairs).encode();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back.decode_entries(), pairs);

        let line = Response::fetch(3, Some("{\"x\":1}".to_string())).encode();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert!(back.ok);
        assert_eq!(back.entry.as_deref(), Some("{\"x\":1}"));
        assert!(!Response::fetch(3, None).ok);

        let report = ScrubReport {
            checked: 5,
            corrupt: 1,
            repaired: 1,
            quarantined: 0,
            refreshed: 0,
        };
        let line = Response::scrub(4, report.clone(), 7).encode();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back.scrub, Some(report));

        let line = Response::sync(5, 2, 7).encode();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back.pulled, Some(2));
    }

    #[test]
    fn proof_fields_round_trip_and_verify() {
        use crate::merkle::MerkleIndex;
        let mut idx = MerkleIndex::new();
        for i in 0..5u64 {
            idx.insert(
                crate::content_hash128(format!("e{i}").as_bytes()),
                crate::content_hash128(format!("f{i}").as_bytes()),
            );
        }
        let entry = idx.entries()[2].0;
        let proof = idx.proof(entry).unwrap();
        let line = Response::solve(1, "solvable", 1, 0, "store", true)
            .with_proof(&proof)
            .encode();
        let back: Response = serde_json::from_str(&line).unwrap();
        let verified = back.verified_proof().expect("proof survives the wire");
        assert_eq!(verified, proof);
        // A tampered wire proof is indistinguishable from no proof.
        let mut tampered = back.clone();
        tampered.proof_file = Some(format!("{:032x}", proof.file_hash ^ 1));
        assert!(tampered.verified_proof().is_none());
        assert!(Response::solve(1, "solvable", 1, 0, "store", true)
            .verified_proof()
            .is_none());
    }

    #[test]
    fn fpc_requests_parse_and_replies_round_trip() {
        let r = parse_request(r#"{"op":"fpc","id":4,"spec":"fpc:32:8:berserk"}"#).unwrap();
        match r.body {
            RequestBody::Fpc { spec, runs, seed } => {
                assert_eq!(spec.canonical_string(), "fpc:32:8:berserk:10:500");
                assert_eq!(runs, FPC_DEFAULT_RUNS);
                assert_eq!(seed, FPC_DEFAULT_SEED);
            }
            other => panic!("expected fpc, got {other:?}"),
        }
        let r =
            parse_request(r#"{"op":"fpc","spec":"fpc:16:4:cautious:5:700","runs":500,"seed":9}"#)
                .unwrap();
        assert!(matches!(
            r.body,
            RequestBody::Fpc {
                runs: 500,
                seed: 9,
                ..
            }
        ));
        // Malformed specs and out-of-range batches are usage errors.
        assert!(parse_request(r#"{"op":"fpc","spec":"fpc:1:0:cautious"}"#).is_err());
        assert!(parse_request(r#"{"op":"fpc","spec":"t-res:3:1"}"#).is_err());
        assert!(parse_request(r#"{"op":"fpc"}"#).is_err());
        assert!(parse_request(r#"{"op":"fpc","spec":"fpc:8:0:cautious","runs":0}"#).is_err());

        let stats = act_fpc::run_stats(&FpcSpec::parse("fpc:8:2:berserk:3:500").unwrap(), 10, 3);
        let line = Response::fpc(4, stats.clone(), "engine").encode();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back.fpc, Some(stats));
        assert_eq!(back.source.as_deref(), Some("engine"));
        assert!(back.ok);
    }

    #[test]
    fn stats_and_shutdown_parse() {
        assert_eq!(
            parse_request(r#"{"op":"stats","id":2}"#).unwrap().body,
            RequestBody::Stats
        );
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap().body,
            RequestBody::Shutdown
        );
    }

    #[test]
    fn responses_encode_and_reparse() {
        let line = Response::solve(4, "solvable", 1, 30, "store", true).encode();
        let v: Value = serde_json::from_str(&line).unwrap();
        assert!(matches!(v.field("verdict"), Ok(Value::Str(s)) if s == "solvable"));
        assert!(matches!(v.field("ok"), Ok(Value::Bool(true))));
        assert!(matches!(v.field("authoritative"), Ok(Value::Bool(true))));
        assert!(matches!(v.field("error"), Ok(Value::Null)));

        let line = Response::error(0, CODE_USAGE, "bad spec").encode();
        let v: Value = serde_json::from_str(&line).unwrap();
        assert!(matches!(v.field("code"), Ok(Value::UInt(2))));

        let round: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(round.code, Some(CODE_USAGE));
        assert!(!round.ok);

        let line = Response::stats(1, StatsBody::default()).encode();
        let v: Value = serde_json::from_str(&line).unwrap();
        assert!(v.field("stats").unwrap().field("hits").is_ok());
    }
}
