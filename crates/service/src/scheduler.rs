//! The batching, single-flight scheduler.
//!
//! Queries flow through three gates:
//!
//! 1. **Store check** — an authoritative verdict already in the
//!    [`VerdictStore`] is returned immediately ([`Submitted::Ready`],
//!    counted by [`SERVE_HIT`](crate::SERVE_HIT)).
//! 2. **Single-flight coalescing** — a query identical (by
//!    [`StoreKey`]) to one already queued or running does not enqueue a
//!    second job; the caller is attached as a waiter on the in-flight
//!    computation and all waiters receive the one result
//!    ([`SERVE_COALESCED`](crate::SERVE_COALESCED)).
//! 3. **Bounded admission** — a full queue rejects with
//!    [`Submitted::Busy`] instead of buffering without limit
//!    ([`SERVE_REJECTED`](crate::SERVE_REJECTED)).
//!
//! Admitted jobs are served by a worker pool. Workers are **cache-aware**:
//! each prefers the queued job whose `(model, task)` matches the tower it
//! just warmed, so a mixed workload naturally batches by model and the
//! shared [`DomainCache`] towers (plus the memoized `R_A` itself) are
//! extended, not rebuilt. Towers live in a small LRU so a long-running
//! server's memory stays bounded.
//!
//! Every engine run goes through the deadline / degraded-engine
//! machinery ([`SearchConfig`]); a `timed-out` or `exhausted` outcome is
//! reported to the requesters as [`Served::Unreliable`] and **never
//! persisted** — only authoritative verdicts reach the store.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use act_affine::{fair_affine_task, AffineTask};
use act_tasks::{SearchConfig, SetConsensus};
use act_topology::ColorSet;
use fact::{DomainCache, ModelSpec, TaskSpec};

use crate::protocol::{StatsBody, CODE_RUNTIME};
use crate::store::{StoreKey, StoredVerdict, VerdictStore};
use crate::{
    deepening_verdict, SERVE_COALESCED, SERVE_ENGINE_RUNS, SERVE_HIT, SERVE_MISS,
    SERVE_QUEUE_DEPTH, SERVE_REJECTED,
};

/// Tuning knobs for a [`Scheduler`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads serving the queue (minimum 1).
    pub workers: usize,
    /// Bound on the number of queued (not yet running) jobs; beyond it
    /// submissions are rejected with [`Submitted::Busy`].
    pub queue_capacity: usize,
    /// Default per-job wall-clock budget, used when a query carries no
    /// deadline of its own.
    pub deadline_ms: Option<u64>,
    /// Map-search node budget per engine run.
    pub max_nodes: usize,
    /// Engine threads per run (`None` = the environment's
    /// `mapsearch_threads()` default).
    pub threads: Option<usize>,
    /// How many warmed `(model, task)` towers to keep resident.
    pub tower_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            deadline_ms: None,
            max_nodes: 5_000_000,
            threads: None,
            tower_capacity: 8,
        }
    }
}

/// One solvability query, already validated by the spec parsers.
#[derive(Clone, Debug, PartialEq)]
pub struct SolveQuery {
    /// The model.
    pub model: ModelSpec,
    /// The task (its `k` validated against the model's process count).
    pub task: TaskSpec,
    /// Deepening bound `ℓ`.
    pub iters: usize,
    /// Per-request wall-clock budget, overriding the config default.
    pub deadline_ms: Option<u64>,
}

impl SolveQuery {
    /// The query's store identity.
    pub fn key(&self) -> StoreKey {
        StoreKey::new(&self.model, &self.task, self.iters)
    }

    /// The identity of the warmed state this query can reuse: jobs with
    /// equal tower keys share one `R_A` and one `DomainCache`, whatever
    /// their `ℓ`.
    pub fn tower_key(&self) -> String {
        format!(
            "{}|{}",
            self.model.canonical_string(),
            self.task.canonical_string()
        )
    }
}

/// The outcome of one served query.
#[derive(Clone, Debug, PartialEq)]
pub enum Served {
    /// An authoritative verdict (`solvable` / `no-map`), from `source`:
    /// `"store"`, `"engine"`, or `"coalesced"`.
    Authoritative {
        /// The verdict (and witness, when solvable).
        verdict: StoredVerdict,
        /// Where this requester's answer came from.
        source: &'static str,
    },
    /// A resource outcome (`exhausted` / `timed-out`): reported, never
    /// persisted.
    Unreliable {
        /// The verdict name.
        verdict: String,
        /// The iteration count the search gave up at.
        iterations: u64,
    },
    /// The query could not be answered at all.
    Failed {
        /// What went wrong.
        error: String,
        /// Protocol error code (see [`crate::protocol`]).
        code: u64,
    },
}

/// What [`Scheduler::submit`] did with a query.
#[derive(Debug)]
pub enum Submitted {
    /// Answered synchronously from the store.
    Ready(Served),
    /// Admitted (or coalesced); the result arrives on the receiver.
    Pending(Receiver<Served>),
    /// Rejected: the bounded queue is full (backpressure).
    Busy {
        /// The queue depth observed at rejection.
        depth: u64,
    },
    /// Rejected: the scheduler is draining for shutdown.
    Draining,
}

/// A queued job: the canonical key plus the query it answers.
struct Job {
    key: StoreKey,
    query: SolveQuery,
}

/// Mutable scheduler state behind one lock.
struct SchedState {
    queue: VecDeque<Job>,
    /// Waiters per in-flight key; index 0 is the submitter that caused
    /// the enqueue (its answer is sourced `"engine"`, later joiners get
    /// `"coalesced"`).
    inflight: HashMap<StoreKey, Vec<Sender<Served>>>,
    running: usize,
    draining: bool,
}

/// A warmed per-`(model, task)` tower: the affine task `R_A` and the
/// incremental `R_A^ℓ` domain cache, plus an LRU stamp.
struct TowerSlot {
    affine: AffineTask,
    cache: DomainCache,
}

struct TowerMap {
    slots: HashMap<String, (Arc<Mutex<TowerSlot>>, u64)>,
    clock: u64,
}

/// The write-through replication hook: called with the content hash of
/// every freshly persisted authoritative verdict.
pub type Replicator = Arc<dyn Fn(u128) + Send + Sync>;

/// The batching, single-flight scheduler over a shared [`VerdictStore`].
pub struct Scheduler {
    store: Arc<VerdictStore>,
    /// Persistent `R_A^ℓ` towers, opened under the verdict store's disk
    /// directory (`<store>/towers`). `None` for memory-only stores: no
    /// disk, nothing to warm-restart from.
    tower_store: Option<Arc<crate::TowerStore>>,
    config: ServeConfig,
    state: Mutex<SchedState>,
    job_ready: Condvar,
    towers: Mutex<TowerMap>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Write-through replication hook: the cluster layer ships the
    /// committed bytes to the other owners.
    replicator: Mutex<Option<Replicator>>,
}

impl Scheduler {
    /// A scheduler over `store`. Workers are **not** started — call
    /// [`Scheduler::start_workers`]; the split lets tests submit a batch
    /// of identical queries first and assert that exactly one engine run
    /// serves them all.
    pub fn new(store: Arc<VerdictStore>, config: ServeConfig) -> Arc<Scheduler> {
        let tower_store = store
            .disk_dir()
            .and_then(|dir| crate::TowerStore::open(dir).ok())
            .map(Arc::new);
        Arc::new(Scheduler {
            store,
            tower_store,
            config,
            state: Mutex::new(SchedState {
                queue: VecDeque::new(),
                inflight: HashMap::new(),
                running: 0,
                draining: false,
            }),
            job_ready: Condvar::new(),
            towers: Mutex::new(TowerMap {
                slots: HashMap::new(),
                clock: 0,
            }),
            workers: Mutex::new(Vec::new()),
            replicator: Mutex::new(None),
        })
    }

    /// Installs the write-through replication hook (see the `replicator`
    /// field). The server wires the cluster layer in through this seam,
    /// keeping the scheduler free of any peer knowledge.
    pub fn set_replicator(&self, hook: Replicator) {
        *self.replicator.lock().unwrap_or_else(|e| e.into_inner()) = Some(hook);
    }

    /// The store this scheduler answers from and writes to.
    pub fn store(&self) -> &VerdictStore {
        &self.store
    }

    /// Spawns the worker pool (idempotent).
    pub fn start_workers(self: &Arc<Scheduler>) {
        let mut workers = self.lock_workers();
        if !workers.is_empty() {
            return;
        }
        for i in 0..self.config.workers.max(1) {
            let me = Arc::clone(self);
            let handle = std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || me.worker_loop())
                .expect("spawn scheduler worker");
            workers.push(handle);
        }
    }

    /// Submits a query through the store-check / coalesce / admit gates.
    pub fn submit(&self, query: SolveQuery) -> Submitted {
        let key = query.key();
        if let Some(verdict) = self.store.get(&key) {
            SERVE_HIT.add(1);
            return Submitted::Ready(Served::Authoritative {
                verdict,
                source: "store",
            });
        }
        let mut state = self.lock_state();
        if state.draining {
            return Submitted::Draining;
        }
        if let Some(waiters) = state.inflight.get_mut(&key) {
            SERVE_COALESCED.add(1);
            let (tx, rx) = channel();
            waiters.push(tx);
            return Submitted::Pending(rx);
        }
        if state.queue.len() >= self.config.queue_capacity {
            SERVE_REJECTED.add(1);
            return Submitted::Busy {
                depth: state.queue.len() as u64,
            };
        }
        SERVE_MISS.add(1);
        let (tx, rx) = channel();
        state.inflight.insert(key.clone(), vec![tx]);
        state.queue.push_back(Job { key, query });
        SERVE_QUEUE_DEPTH.set(state.queue.len() as u64);
        drop(state);
        self.job_ready.notify_one();
        Submitted::Pending(rx)
    }

    /// A point-in-time snapshot of the serving counters. The counters
    /// are process-global, so in-process tests diff them rather than
    /// assert absolutes.
    pub fn stats_snapshot(&self) -> StatsBody {
        let state = self.lock_state();
        StatsBody {
            hits: SERVE_HIT.get(),
            misses: SERVE_MISS.get(),
            coalesced: SERVE_COALESCED.get(),
            engine_runs: SERVE_ENGINE_RUNS.get(),
            store_corrupt: crate::SERVE_STORE_CORRUPT.get(),
            tower_hits: crate::SERVE_TOWER_HIT.get(),
            tower_misses: crate::SERVE_TOWER_MISS.get(),
            tower_corrupt: crate::SERVE_TOWER_CORRUPT.get(),
            rejected: SERVE_REJECTED.get(),
            queue_depth: state.queue.len() as u64,
            inflight: (state.queue.len() + state.running) as u64,
            workers: self.lock_workers().len() as u64,
            merkle_root: format!("{:032x}", self.store.merkle_root()),
            merkle_entries: self.store.merkle_len() as u64,
            scrub_runs: crate::SERVE_SCRUB_RUNS.get(),
            scrub_corrupt: crate::SERVE_SCRUB_CORRUPT.get(),
            scrub_repaired: crate::SERVE_SCRUB_REPAIRED.get(),
            scrub_quarantined: crate::SERVE_SCRUB_QUARANTINED.get(),
            peer_forwards: crate::SERVE_PEER_FORWARDS.get(),
            failovers: crate::SERVE_PEER_FAILOVERS.get(),
            peer_replications: crate::SERVE_PEER_REPLICATIONS.get(),
            peer_sync_pulls: crate::SERVE_PEER_SYNC_PULLS.get(),
            fpc_hits: crate::SERVE_FPC_HITS.get(),
            fpc_misses: crate::SERVE_FPC_MISSES.get(),
            fpc_corrupt: crate::SERVE_FPC_CORRUPT.get(),
        }
    }

    /// Graceful drain: stop admitting, finish every queued and running
    /// job (their waiters still get answers), then join the workers.
    pub fn drain(&self) {
        {
            let mut state = self.lock_state();
            state.draining = true;
        }
        self.job_ready.notify_all();
        let handles = std::mem::take(&mut *self.lock_workers());
        for handle in handles {
            let _ = handle.join();
        }
    }

    fn lock_state(&self) -> MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_workers(&self) -> MutexGuard<'_, Vec<std::thread::JoinHandle<()>>> {
        self.workers.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn worker_loop(self: Arc<Scheduler>) {
        let mut last_tower: Option<String> = None;
        while let Some(job) = self.next_job(last_tower.as_deref()) {
            last_tower = Some(job.query.tower_key());
            let result = self.compute(&job.query);
            self.finish(&job.key, result);
        }
    }

    /// Blocks for the next job. Cache-aware: prefers a queued job whose
    /// tower key matches the one this worker just warmed, falling back
    /// to FIFO. Returns `None` when draining and the queue is empty.
    fn next_job(&self, last_tower: Option<&str>) -> Option<Job> {
        let mut state = self.lock_state();
        loop {
            if !state.queue.is_empty() {
                let pos = last_tower
                    .and_then(|t| state.queue.iter().position(|j| j.query.tower_key() == t))
                    .unwrap_or(0);
                let job = state.queue.remove(pos).expect("non-empty queue");
                state.running += 1;
                SERVE_QUEUE_DEPTH.set(state.queue.len() as u64);
                return Some(job);
            }
            if state.draining {
                return None;
            }
            state = self
                .job_ready
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// The warmed tower for a query, building (and LRU-evicting) as
    /// needed. Building fails when the model admits no runs.
    fn tower_slot(&self, query: &SolveQuery) -> Result<Arc<Mutex<TowerSlot>>, String> {
        let tower_key = query.tower_key();
        let mut towers = self.towers.lock().unwrap_or_else(|e| e.into_inner());
        towers.clock += 1;
        let clock = towers.clock;
        if let Some((slot, stamp)) = towers.slots.get_mut(&tower_key) {
            *stamp = clock;
            return Ok(Arc::clone(slot));
        }
        let alpha = query.model.agreement_function();
        if alpha.alpha(ColorSet::full(query.model.num_processes())) == 0 {
            return Err("the model admits no runs".into());
        }
        let mut cache = DomainCache::new();
        if let Some(ts) = &self.tower_store {
            // Store-backed towers: a fresh slot (cold process, or one
            // rebuilt after an eviction or panic) reloads its levels from
            // disk instead of resubdividing.
            cache.set_persistence(Arc::clone(ts) as Arc<dyn fact::TowerPersistence>);
        }
        let slot = Arc::new(Mutex::new(TowerSlot {
            affine: fair_affine_task(&alpha),
            cache,
        }));
        towers.slots.insert(tower_key, (Arc::clone(&slot), clock));
        while towers.slots.len() > self.config.tower_capacity.max(1) {
            let Some(oldest) = towers
                .slots
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            towers.slots.remove(&oldest);
        }
        Ok(slot)
    }

    /// Runs the engine for one job: warmed tower, shared deepening loop,
    /// panic containment, store write for authoritative verdicts only.
    fn compute(&self, query: &SolveQuery) -> Served {
        let slot = match self.tower_slot(query) {
            Ok(slot) => slot,
            Err(error) => {
                return Served::Failed {
                    error,
                    code: CODE_RUNTIME,
                }
            }
        };
        let task: SetConsensus = query.task.task();
        let mut config = SearchConfig::new(self.config.max_nodes);
        if let Some(threads) = self.config.threads {
            config = config.with_threads(threads);
        }
        if let Some(ms) = query.deadline_ms.or(self.config.deadline_ms) {
            config = config.with_deadline(Duration::from_millis(ms));
        }
        let mut tower = slot.lock().unwrap_or_else(|e| e.into_inner());
        let TowerSlot { affine, cache } = &mut *tower;
        SERVE_ENGINE_RUNS.add(1);
        let span = act_obs::span("serve.engine");
        let verdict = catch_unwind(AssertUnwindSafe(|| {
            deepening_verdict(cache, &task, affine, query.iters, &config)
        }));
        span.finish()
            .str("model", &query.model.canonical_string())
            .bool("panicked", verdict.is_err())
            .emit();
        let verdict = match verdict {
            Ok(v) => v,
            Err(_) => {
                // A panicked engine may have left the tower half-built:
                // drop the slot so the next job rebuilds it cleanly.
                drop(tower);
                self.towers
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .slots
                    .remove(&query.tower_key());
                return Served::Failed {
                    error: "engine panicked".into(),
                    code: CODE_RUNTIME,
                };
            }
        };
        match StoredVerdict::from_solvability(&verdict) {
            Some(stored) => {
                let key = query.key();
                self.store.put(&key, &stored);
                let hook = self
                    .replicator
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .clone();
                if let Some(hook) = hook {
                    hook(key.content_hash());
                }
                Served::Authoritative {
                    verdict: stored,
                    source: "engine",
                }
            }
            None => {
                let iterations = match &verdict {
                    fact::Solvability::Exhausted { iterations }
                    | fact::Solvability::TimedOut { iterations } => *iterations as u64,
                    _ => 0,
                };
                Served::Unreliable {
                    verdict: verdict.verdict_name().to_string(),
                    iterations,
                }
            }
        }
    }

    /// Delivers one result to every waiter on `key`. The submitter
    /// (index 0) keeps the computed source; coalesced joiners see
    /// `"coalesced"`.
    fn finish(&self, key: &StoreKey, result: Served) {
        let waiters = {
            let mut state = self.lock_state();
            state.running -= 1;
            state.inflight.remove(key).unwrap_or_default()
        };
        for (i, tx) in waiters.into_iter().enumerate() {
            let msg = match (&result, i) {
                (Served::Authoritative { verdict, source }, 0) => Served::Authoritative {
                    verdict: verdict.clone(),
                    source,
                },
                (Served::Authoritative { verdict, .. }, _) => Served::Authoritative {
                    verdict: verdict.clone(),
                    source: "coalesced",
                },
                _ => result.clone(),
            };
            let _ = tx.send(msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query(iters: usize) -> SolveQuery {
        SolveQuery {
            model: ModelSpec::parse("t-res:3:1", false).unwrap(),
            task: TaskSpec::set_consensus(3, 1).unwrap(),
            iters,
            deadline_ms: None,
        }
    }

    #[test]
    fn identical_queries_coalesce_before_workers_start() {
        let _serial = crate::test_serial_guard();
        let sched = Scheduler::new(Arc::new(VerdictStore::in_memory()), ServeConfig::default());
        let runs_before = SERVE_ENGINE_RUNS.get();
        let coalesced_before = SERVE_COALESCED.get();
        let mut waiting = Vec::new();
        for _ in 0..4 {
            match sched.submit(query(1)) {
                Submitted::Pending(rx) => waiting.push(rx),
                other => panic!("expected Pending, got {}", kind(&other)),
            }
        }
        assert_eq!(SERVE_COALESCED.get() - coalesced_before, 3);
        assert_eq!(sched.stats_snapshot().queue_depth, 1);
        sched.start_workers();
        let mut sources = Vec::new();
        for rx in waiting {
            match rx.recv().expect("worker answers every waiter") {
                Served::Authoritative { verdict, source } => {
                    // With the CLI value convention (k + 1 values),
                    // t-res:3:1 solves consensus at ℓ = 1.
                    assert_eq!(verdict.verdict, "solvable");
                    assert!(!verdict.witness.is_empty());
                    sources.push(source);
                }
                other => panic!("expected authoritative, got {other:?}"),
            }
        }
        // One engine run served all four; the batch's submitter is the
        // engine answer, the rest are coalesced.
        assert_eq!(SERVE_ENGINE_RUNS.get() - runs_before, 1);
        sources.sort();
        assert_eq!(sources, ["coalesced", "coalesced", "coalesced", "engine"]);
        // And the verdict is now stored: the next submit is a hit.
        match sched.submit(query(1)) {
            Submitted::Ready(Served::Authoritative { source, .. }) => {
                assert_eq!(source, "store")
            }
            other => panic!("expected Ready, got {}", kind(&other)),
        }
        sched.drain();
    }

    #[test]
    fn full_queue_rejects_with_backpressure() {
        let config = ServeConfig {
            queue_capacity: 1,
            ..ServeConfig::default()
        };
        let _serial = crate::test_serial_guard();
        let sched = Scheduler::new(Arc::new(VerdictStore::in_memory()), config);
        let rejected_before = SERVE_REJECTED.get();
        assert!(matches!(sched.submit(query(1)), Submitted::Pending(_)));
        // A *different* query can't coalesce and the queue is full.
        match sched.submit(query(2)) {
            Submitted::Busy { depth } => assert_eq!(depth, 1),
            other => panic!("expected Busy, got {}", kind(&other)),
        }
        assert_eq!(SERVE_REJECTED.get() - rejected_before, 1);
        // Drain without workers: queued waiters see a closed channel,
        // not a hang.
        sched.drain();
        assert!(matches!(sched.submit(query(3)), Submitted::Draining));
    }

    fn kind(s: &Submitted) -> &'static str {
        match s {
            Submitted::Ready(_) => "Ready",
            Submitted::Pending(_) => "Pending",
            Submitted::Busy { .. } => "Busy",
            Submitted::Draining => "Draining",
        }
    }
}
