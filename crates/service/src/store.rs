//! The content-addressed verdict store.
//!
//! Verdicts (and their witnessing maps) are keyed by a canonical hash of
//! `(model spec, task spec, level, engine schema version)` — all taken
//! from the canonical spellings of [`fact::ModelSpec`] /
//! [`fact::TaskSpec`], so two spellings of the same query share one
//! entry. The store is two-tier:
//!
//! * an **in-memory LRU** over decoded entries (bounded; hit promotion);
//! * an **on-disk tier**: one JSON file per entry, named by the content
//!   hash, written atomically (temp file + rename) so concurrent readers
//!   never observe a partial write, and carrying a format version and an
//!   FNV-1a checksum of the payload.
//!
//! Loading is corruption-tolerant by construction: an unreadable,
//! truncated, unparsable, or checksum-mismatched file is a **miss**
//! (counted by [`SERVE_STORE_CORRUPT`](crate::SERVE_STORE_CORRUPT)),
//! never a panic and never a wrong verdict; a format- or schema-version
//! bump is a *clean* miss (old entries are simply invisible under the
//! new key). Only authoritative verdicts — `solvable` with its witness,
//! or `no-map` — are ever persisted: `exhausted` and `timed-out` are
//! resource outcomes, not facts about the model, and
//! [`StoredVerdict::from_solvability`] refuses them.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use act_tasks::ENGINE_SCHEMA_VERSION;
use act_topology::{Complex, VertexId, VertexMap};
use fact::{ModelSpec, Solvability, TaskSpec};
use serde::{Deserialize, Serialize};

use crate::merkle::{parse_hash_hex, InclusionProof, MerkleIndex, ScrubReport};
use crate::{
    SERVE_SCRUB_CORRUPT, SERVE_SCRUB_QUARANTINED, SERVE_SCRUB_REPAIRED, SERVE_SCRUB_RUNS,
    SERVE_STORE_CORRUPT,
};

/// Sub-directory of the store root where scrub moves corrupt entries it
/// cannot repair. Quarantined files keep their name plus a `.corrupt`
/// suffix, so the root's `*.json` census (and the content-address space)
/// never sees them again.
const QUARANTINE_SUBDIR: &str = "quarantine";

/// Version of the on-disk entry format. Bumping it makes every existing
/// entry a clean miss (the envelope check rejects old files without
/// counting them as corrupt).
pub const STORE_FORMAT_VERSION: u32 = 1;

/// The canonical identity of one solvability query.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct StoreKey {
    /// Canonical model spelling ([`ModelSpec::canonical_string`]).
    pub model: String,
    /// Canonical task spelling ([`TaskSpec::canonical_string`]).
    pub task: String,
    /// The deepening bound `ℓ` the query ran with.
    pub level: u32,
    /// [`ENGINE_SCHEMA_VERSION`] at write time: a bump invalidates every
    /// stored verdict by changing the content address.
    pub engine_schema: u32,
}

impl StoreKey {
    /// The key of a `solve` query at the current engine schema.
    pub fn new(model: &ModelSpec, task: &TaskSpec, level: usize) -> StoreKey {
        StoreKey {
            model: model.canonical_string(),
            task: task.canonical_string(),
            level: level as u32,
            engine_schema: ENGINE_SCHEMA_VERSION,
        }
    }

    /// The canonical text the content address is derived from.
    fn canonical_text(&self) -> String {
        format!(
            "fact-serve|{}|{}|{}|{}",
            self.model, self.task, self.level, self.engine_schema
        )
    }

    /// The 128-bit content address (two independently seeded FNV-1a
    /// hashes of the canonical text).
    pub fn content_hash(&self) -> u128 {
        content_hash128(self.canonical_text().as_bytes())
    }
}

/// The store's canonical 128-bit content address: two independently
/// seeded FNV-1a hashes over the same bytes. Shared with the campaign
/// layer, which signs normalized failure traces with the same machinery
/// so artifact names and store keys hash identically.
pub use act_obs::{content_hash128, fnv1a64};

/// An authoritative stored verdict: `solvable` (with the witnessing
/// vertex map) or `no-map`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoredVerdict {
    /// `"solvable"` or `"no-map"` ([`Solvability::verdict_name`]).
    pub verdict: String,
    /// The iteration count of the verdict (`Solvable::iterations` or
    /// `NoMapUpTo::max_iterations`).
    pub iterations: u64,
    /// The witnessing map as canonical sorted `(vertex, image)` index
    /// pairs; empty for `no-map`.
    pub witness: Vec<(u64, u64)>,
}

impl StoredVerdict {
    /// Encodes an authoritative verdict, or `None` for `exhausted` /
    /// `timed-out` — those must never be persisted as facts.
    pub fn from_solvability(v: &Solvability) -> Option<StoredVerdict> {
        match v {
            Solvability::Solvable { iterations, map } => Some(StoredVerdict {
                verdict: v.verdict_name().to_string(),
                iterations: *iterations as u64,
                witness: map
                    .entries()
                    .into_iter()
                    .map(|(a, b)| (a.index() as u64, b.index() as u64))
                    .collect(),
            }),
            Solvability::NoMapUpTo { max_iterations } => Some(StoredVerdict {
                verdict: v.verdict_name().to_string(),
                iterations: *max_iterations as u64,
                witness: Vec::new(),
            }),
            Solvability::Exhausted { .. } | Solvability::TimedOut { .. } => None,
        }
    }

    /// Decodes back into the solver's verdict type.
    pub fn to_solvability(&self) -> Option<Solvability> {
        match self.verdict.as_str() {
            "solvable" => Some(Solvability::Solvable {
                iterations: self.iterations as usize,
                map: VertexMap::from_entries(self.witness.iter().map(|&(a, b)| {
                    (
                        VertexId::from_index(a as usize),
                        VertexId::from_index(b as usize),
                    )
                })),
            }),
            "no-map" => Some(Solvability::NoMapUpTo {
                max_iterations: self.iterations as usize,
            }),
            _ => None,
        }
    }
}

/// On-disk envelope of one entry. Flat named fields only (the vendored
/// serde derive's supported shape); the witness rides as two parallel
/// index columns.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct DiskEntry {
    format: u32,
    model: String,
    task: String,
    level: u32,
    engine_schema: u32,
    verdict: String,
    iterations: u64,
    witness_from: Vec<u64>,
    witness_to: Vec<u64>,
    checksum: u64,
}

impl DiskEntry {
    fn new(key: &StoreKey, v: &StoredVerdict) -> DiskEntry {
        let mut e = DiskEntry {
            format: STORE_FORMAT_VERSION,
            model: key.model.clone(),
            task: key.task.clone(),
            level: key.level,
            engine_schema: key.engine_schema,
            verdict: v.verdict.clone(),
            iterations: v.iterations,
            witness_from: v.witness.iter().map(|&(a, _)| a).collect(),
            witness_to: v.witness.iter().map(|&(_, b)| b).collect(),
            checksum: 0,
        };
        e.checksum = e.payload_checksum();
        e
    }

    /// FNV-1a over every field except `checksum`, in a fixed order.
    fn payload_checksum(&self) -> u64 {
        let mut text = format!(
            "{}|{}|{}|{}|{}|{}|{}",
            self.format,
            self.model,
            self.task,
            self.level,
            self.engine_schema,
            self.verdict,
            self.iterations
        );
        for (a, b) in self.witness_from.iter().zip(&self.witness_to) {
            text.push_str(&format!("|{a}:{b}"));
        }
        fnv1a64(0xcbf29ce484222325, text.as_bytes())
    }

    fn into_verdict(self) -> StoredVerdict {
        StoredVerdict {
            verdict: self.verdict,
            iterations: self.iterations,
            witness: self.witness_from.into_iter().zip(self.witness_to).collect(),
        }
    }
}

/// Parses serialized entry bytes without validating them.
fn parse_entry_text(text: &str) -> Option<DiskEntry> {
    serde_json::from_str(text).ok()
}

/// Full validation of serialized entry bytes against the content
/// address they claim: parse, format version, payload checksum, witness
/// shape, authoritative verdict string, and the self-consistency of the
/// key fields with `hash`. The error is the failure kind (`"format"`
/// is the *clean-miss* kind — an old format version, not corruption).
fn validate_entry_text(hash: u128, text: &str) -> Result<DiskEntry, &'static str> {
    let Some(entry) = parse_entry_text(text) else {
        return Err("parse");
    };
    if entry.format != STORE_FORMAT_VERSION {
        return Err("format");
    }
    if entry.checksum != entry.payload_checksum() {
        return Err("checksum");
    }
    if entry.witness_from.len() != entry.witness_to.len() {
        return Err("witness-shape");
    }
    if entry.verdict != "solvable" && entry.verdict != "no-map" {
        return Err("verdict");
    }
    let key = StoreKey {
        model: entry.model.clone(),
        task: entry.task.clone(),
        level: entry.level,
        engine_schema: entry.engine_schema,
    };
    if key.content_hash() != hash {
        return Err("key-mismatch");
    }
    Ok(entry)
}

/// The two-tier verdict store. All methods are `&self` and thread-safe;
/// multiple processes may share one directory (writes are atomic
/// renames, so readers never see partial entries).
pub struct VerdictStore {
    dir: Option<PathBuf>,
    memory: Mutex<MemoryTier>,
    merkle: Mutex<MerkleIndex>,
    tmp_seq: AtomicU64,
}

struct MemoryTier {
    map: HashMap<u128, (StoreKey, StoredVerdict, u64)>,
    clock: u64,
    capacity: usize,
}

impl MemoryTier {
    fn get(&mut self, hash: u128) -> Option<StoredVerdict> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(&hash).map(|(_, v, stamp)| {
            *stamp = clock;
            v.clone()
        })
    }

    /// The full `(key, verdict)` pair, *without* LRU promotion — the
    /// scrub pass peeks at residency, it is not an access.
    fn peek_entry(&self, hash: u128) -> Option<(StoreKey, StoredVerdict)> {
        self.map.get(&hash).map(|(k, v, _)| (k.clone(), v.clone()))
    }

    fn put(&mut self, hash: u128, key: StoreKey, v: StoredVerdict) {
        self.clock += 1;
        let clock = self.clock;
        self.map.insert(hash, (key, v, clock));
        while self.map.len() > self.capacity {
            // Evict the least-recently-used entry; the map is bounded
            // (default 1024), so the linear scan is cheap next to one
            // engine run.
            let Some((&oldest, _)) = self.map.iter().min_by_key(|(_, (_, _, stamp))| *stamp) else {
                break;
            };
            self.map.remove(&oldest);
        }
    }
}

/// Default in-memory tier capacity (entries).
const DEFAULT_MEMORY_CAPACITY: usize = 1024;

impl VerdictStore {
    /// A store with no disk tier (tests, ephemeral servers).
    pub fn in_memory() -> VerdictStore {
        VerdictStore {
            dir: None,
            memory: Mutex::new(MemoryTier {
                map: HashMap::new(),
                clock: 0,
                capacity: DEFAULT_MEMORY_CAPACITY,
            }),
            merkle: Mutex::new(MerkleIndex::new()),
            tmp_seq: AtomicU64::new(0),
        }
    }

    /// Opens (creating if needed) the on-disk tier at `dir` and builds
    /// the Merkle index from the entries already present (invalid files
    /// are left unindexed for the scrub pass to repair or quarantine).
    pub fn open(dir: &Path) -> std::io::Result<VerdictStore> {
        std::fs::create_dir_all(dir)?;
        let mut store = VerdictStore::in_memory();
        store.dir = Some(dir.to_path_buf());
        store.rebuild_index();
        Ok(store)
    }

    /// Rescans the disk tier and rebuilds the Merkle index from every
    /// *valid* entry file. Only called while `&mut` (open): running
    /// servers converge through [`Self::scrub`] instead.
    fn rebuild_index(&mut self) {
        let mut index = MerkleIndex::new();
        for (hash, text) in self.disk_entries() {
            if validate_entry_text(hash, &text).is_ok() {
                index.insert(hash, content_hash128(text.as_bytes()));
            }
        }
        *self.merkle.lock().unwrap_or_else(|e| e.into_inner()) = index;
    }

    /// Every `(content hash, file text)` pair at the store root whose
    /// file name is a well-formed content address.
    fn disk_entries(&self) -> Vec<(u128, String)> {
        let Some(dir) = self.dir.as_ref() else {
            return Vec::new();
        };
        let Ok(read) = std::fs::read_dir(dir) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for entry in read.flatten() {
            let name = entry.file_name();
            let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(".json")) else {
                continue;
            };
            let Some(hash) = parse_hash_hex(stem) else {
                continue;
            };
            if let Ok(text) = std::fs::read_to_string(entry.path()) {
                out.push((hash, text));
            }
        }
        out.sort_by_key(|&(h, _)| h);
        out
    }

    /// Overrides the in-memory tier's capacity (entries; minimum 1).
    pub fn with_memory_capacity(self, capacity: usize) -> VerdictStore {
        self.memory
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .capacity = capacity.max(1);
        self
    }

    /// The on-disk path of `key`'s entry, when a disk tier is configured.
    pub fn entry_path(&self, key: &StoreKey) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{:032x}.json", key.content_hash())))
    }

    /// Looks `key` up: memory tier first, then disk (promoting a disk
    /// hit into memory). Any malformed disk entry degrades to `None`.
    pub fn get(&self, key: &StoreKey) -> Option<StoredVerdict> {
        let hash = key.content_hash();
        if let Some(v) = self
            .memory
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(hash)
        {
            return Some(v);
        }
        let v = self.load_from_disk(key)?;
        self.memory
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .put(hash, key.clone(), v.clone());
        Some(v)
    }

    /// Persists an authoritative verdict under `key` (memory + disk) and
    /// records its leaf in the Merkle index. Returns `false` — and
    /// stores nothing — for a non-authoritative verdict string (anything
    /// but `solvable` / `no-map`).
    ///
    /// The index records the hash of the *intended* serialized bytes
    /// even when the disk write fails or is torn by an installed
    /// [`crate::chaos::ServeFaultPlan`]: the index is the store's
    /// commitment, and the scrub pass repairs the disk back to it.
    pub fn put(&self, key: &StoreKey, v: &StoredVerdict) -> bool {
        if v.verdict != "solvable" && v.verdict != "no-map" {
            return false;
        }
        let hash = key.content_hash();
        self.memory
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .put(hash, key.clone(), v.clone());
        let entry = DiskEntry::new(key, v);
        let Ok(json) = serde_json::to_string_pretty(&entry) else {
            return true;
        };
        self.merkle
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(hash, content_hash128(json.as_bytes()));
        if let Some(path) = self.entry_path(key) {
            if let Err(e) = self.write_atomically(&path, &json) {
                // A failed persist is a warm-cache loss, not a failure
                // of the query itself.
                if act_obs::enabled() {
                    act_obs::event("serve.store.write_failed")
                        .str("error", &e.to_string())
                        .emit();
                }
            }
        }
        true
    }

    /// The disk-tier directory, when one is configured. The tower store
    /// ([`TowerStore`]) nests under it so verdict entries and tower
    /// entries share one `--store` root without mixing files.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Number of entries currently resident in the memory tier.
    pub fn memory_len(&self) -> usize {
        self.memory
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .len()
    }

    /// The current Merkle root over every committed entry
    /// ([`crate::merkle::EMPTY_ROOT`] when the store is empty).
    pub fn merkle_root(&self) -> u128 {
        self.merkle.lock().unwrap_or_else(|e| e.into_inner()).root()
    }

    /// Number of entries in the Merkle index.
    pub fn merkle_len(&self) -> usize {
        self.merkle.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Every indexed `(entry hash, file hash)` pair in canonical order —
    /// the anti-entropy exchange unit.
    pub fn entry_list(&self) -> Vec<(u128, u128)> {
        self.merkle
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entries()
    }

    /// The inclusion proof of `key`'s entry under the current root, or
    /// `None` when the entry is not committed.
    pub fn inclusion_proof(&self, key: &StoreKey) -> Option<InclusionProof> {
        self.merkle
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .proof(key.content_hash())
    }

    /// The canonical serialized bytes of the entry addressed by `hash` —
    /// what replication and anti-entropy fetch ship between peers. Disk
    /// tier first (the committed bytes), falling back to re-encoding the
    /// memory tier's copy; `None` when the entry is unknown or its disk
    /// copy no longer validates.
    pub fn raw_entry(&self, hash: u128) -> Option<String> {
        if let Some(dir) = self.dir.as_ref() {
            let path = dir.join(format!("{hash:032x}.json"));
            if let Ok(text) = std::fs::read_to_string(&path) {
                if validate_entry_text(hash, &text).is_ok() {
                    return Some(text);
                }
            }
        }
        let (key, v) = self
            .memory
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .peek_entry(hash)?;
        serde_json::to_string_pretty(&DiskEntry::new(&key, &v)).ok()
    }

    /// Accepts a replicated entry in its serialized form (a peer's
    /// [`Self::raw_entry`]). The bytes are fully validated — parse,
    /// format, checksum, witness shape, and self-consistent content
    /// address — before being committed verbatim, so a corrupt or
    /// tampered replica can never poison this store. Returns `false`
    /// (and stores nothing) for invalid bytes.
    pub fn put_raw_entry(&self, json: &str) -> bool {
        let Some(entry) = parse_entry_text(json) else {
            return false;
        };
        let key = StoreKey {
            model: entry.model.clone(),
            task: entry.task.clone(),
            level: entry.level,
            engine_schema: entry.engine_schema,
        };
        let hash = key.content_hash();
        if validate_entry_text(hash, json).is_err() {
            return false;
        }
        self.memory.lock().unwrap_or_else(|e| e.into_inner()).put(
            hash,
            key.clone(),
            entry.clone().into_verdict(),
        );
        self.merkle
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(hash, content_hash128(json.as_bytes()));
        if let Some(path) = self.entry_path(&key) {
            let _ = self.write_atomically(&path, json);
        }
        true
    }

    /// One scrub pass: re-reads and re-validates every entry file at the
    /// store root, repairs corrupt ones from the memory tier or — via
    /// the optional `fetch` callback (a peer lookup by content hash) —
    /// from a replica, and quarantines what nothing can restore (moved
    /// to `quarantine/`, dropped from the index, so the entry becomes a
    /// clean recomputable miss). Valid entries unknown to the index
    /// (written by another process sharing the directory) are adopted.
    ///
    /// Counted by the `serve.scrub.*` counters; returns this pass's
    /// [`ScrubReport`]. A store without a disk tier only reconciles the
    /// index against the memory tier (nothing to corrupt).
    pub fn scrub(&self, fetch: Option<&dyn Fn(u128) -> Option<String>>) -> ScrubReport {
        let span = act_obs::span("serve.store.scrub");
        let mut report = ScrubReport::default();
        let disk = self.disk_entries();
        let mut seen: Vec<u128> = Vec::with_capacity(disk.len());
        for (hash, text) in disk {
            report.checked += 1;
            seen.push(hash);
            match validate_entry_text(hash, &text) {
                Ok(_) => {
                    let file_hash = content_hash128(text.as_bytes());
                    let mut index = self.merkle.lock().unwrap_or_else(|e| e.into_inner());
                    if index.file_hash(hash) != Some(file_hash) {
                        index.insert(hash, file_hash);
                        report.refreshed += 1;
                    }
                }
                Err("format") => {
                    // A format-version bump is a clean miss everywhere:
                    // the scrub neither repairs nor quarantines it.
                }
                Err(kind) => {
                    report.corrupt += 1;
                    SERVE_SCRUB_CORRUPT.add(1);
                    self.emit_corrupt_kind("serve.scrub.corrupt", hash, kind);
                    if self.repair_entry(hash, fetch) {
                        report.repaired += 1;
                        SERVE_SCRUB_REPAIRED.add(1);
                    } else {
                        self.quarantine(hash);
                        report.quarantined += 1;
                        SERVE_SCRUB_QUARANTINED.add(1);
                    }
                }
            }
        }
        if self.dir.is_some() {
            // Entries the index still carries but whose file vanished
            // (external deletion): treat like corruption — restore or
            // forget.
            seen.sort_unstable();
            let indexed = self.entry_list();
            for (hash, _) in indexed {
                if seen.binary_search(&hash).is_ok() {
                    continue;
                }
                report.checked += 1;
                report.corrupt += 1;
                SERVE_SCRUB_CORRUPT.add(1);
                self.emit_corrupt_kind("serve.scrub.corrupt", hash, "missing");
                if self.repair_entry(hash, fetch) {
                    report.repaired += 1;
                    SERVE_SCRUB_REPAIRED.add(1);
                } else {
                    self.merkle
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .remove(hash);
                    report.quarantined += 1;
                    SERVE_SCRUB_QUARANTINED.add(1);
                }
            }
        } else {
            report.checked = self.merkle_len() as u64;
        }
        SERVE_SCRUB_RUNS.add(1);
        if act_obs::enabled() {
            span.finish()
                .u64("checked", report.checked)
                .u64("corrupt", report.corrupt)
                .u64("repaired", report.repaired)
                .u64("quarantined", report.quarantined)
                .emit();
        }
        report
    }

    /// Restores `hash`'s entry file from the best available good copy:
    /// the memory tier (re-encoded canonically), else a `fetch`ed peer
    /// copy (validated before commit). `true` on success.
    fn repair_entry(&self, hash: u128, fetch: Option<&dyn Fn(u128) -> Option<String>>) -> bool {
        let resident = self
            .memory
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .peek_entry(hash);
        if let Some((key, v)) = resident {
            if let Ok(json) = serde_json::to_string_pretty(&DiskEntry::new(&key, &v)) {
                if let Some(path) = self.entry_path(&key) {
                    if self.write_atomically(&path, &json).is_ok() {
                        self.merkle
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .insert(hash, content_hash128(json.as_bytes()));
                        return true;
                    }
                }
            }
        }
        if let Some(fetch) = fetch {
            if let Some(json) = fetch(hash) {
                if validate_entry_text(hash, &json).is_ok() {
                    return self.put_raw_entry(&json);
                }
            }
        }
        false
    }

    /// Moves `hash`'s entry file into `quarantine/` (dropping it from
    /// the index), preserving the corrupt bytes for post-mortems while
    /// turning the entry into a clean miss. Deletion is the fallback if
    /// the move itself fails.
    fn quarantine(&self, hash: u128) {
        self.merkle
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(hash);
        let Some(dir) = self.dir.as_ref() else {
            return;
        };
        let src = dir.join(format!("{hash:032x}.json"));
        let qdir = dir.join(QUARANTINE_SUBDIR);
        let moved = std::fs::create_dir_all(&qdir)
            .and_then(|_| std::fs::rename(&src, qdir.join(format!("{hash:032x}.json.corrupt"))));
        if moved.is_err() {
            let _ = std::fs::remove_file(&src);
        }
    }

    fn emit_corrupt_kind(&self, event: &str, hash: u128, kind: &str) {
        if act_obs::enabled() {
            act_obs::event(event)
                .str("entry", &format!("{hash:032x}"))
                .str("kind", kind)
                .emit();
        }
    }

    fn write_atomically(&self, path: &Path, json: &str) -> std::io::Result<()> {
        if let Some(keep) = crate::chaos::torn_write(json.len()) {
            // An injected torn write: commit a truncated prefix directly
            // to the final path, deliberately bypassing the atomic
            // rename — this is the crash-mid-write the rename discipline
            // normally makes unobservable.
            return std::fs::write(path, &json.as_bytes()[..keep]);
        }
        let tmp = path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, json)?;
        // The rename is the commit point: concurrent readers see either
        // the old complete entry or the new complete entry, never bytes
        // in between.
        std::fs::rename(&tmp, path)
    }

    fn load_from_disk(&self, key: &StoreKey) -> Option<StoredVerdict> {
        let path = self.entry_path(key)?;
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            Err(_) => {
                SERVE_STORE_CORRUPT.add(1);
                return None;
            }
        };
        let entry: DiskEntry = match serde_json::from_str(&text) {
            Ok(e) => e,
            Err(_) => {
                SERVE_STORE_CORRUPT.add(1);
                self.emit_corrupt(&path, "parse");
                return None;
            }
        };
        if entry.format != STORE_FORMAT_VERSION {
            // An older/newer format is a clean miss, not corruption.
            return None;
        }
        if entry.checksum != entry.payload_checksum() {
            SERVE_STORE_CORRUPT.add(1);
            self.emit_corrupt(&path, "checksum");
            return None;
        }
        if entry.model != key.model
            || entry.task != key.task
            || entry.level != key.level
            || entry.engine_schema != key.engine_schema
        {
            // A content-hash collision (or a hand-edited file): the
            // payload is not an answer to this query.
            SERVE_STORE_CORRUPT.add(1);
            self.emit_corrupt(&path, "key-mismatch");
            return None;
        }
        if entry.witness_from.len() != entry.witness_to.len() {
            SERVE_STORE_CORRUPT.add(1);
            self.emit_corrupt(&path, "witness-shape");
            return None;
        }
        Some(entry.into_verdict())
    }

    fn emit_corrupt(&self, path: &Path, kind: &str) {
        if act_obs::enabled() {
            act_obs::event("serve.store.corrupt")
                .str("path", &path.display().to_string())
                .str("kind", kind)
                .emit();
        }
    }
}

/// Version of the on-disk tower entry format. Bumping it makes every
/// existing tower entry a clean miss.
pub const TOWER_FORMAT_VERSION: u32 = 1;

/// Sub-directory of the verdict store root that holds tower entries —
/// kept apart so tooling that enumerates `*.json` verdict entries at the
/// root is unaffected by tower persistence.
const TOWER_SUBDIR: &str = "towers";

/// The canonical identity of one persisted domain-tower level
/// `R_A^ℓ(I)`: the content hashes of the affine task's complex and the
/// input complex (see [`act_topology::Complex::content_hash`]) plus the
/// 1-based level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TowerKey {
    /// Content hash of `affine.complex()`.
    pub affine_hash: u128,
    /// Content hash of the input complex the tower is built over.
    pub inputs_hash: u128,
    /// The 1-based tower level.
    pub level: u32,
}

impl TowerKey {
    /// The canonical text the content address is derived from. Includes
    /// both the entry format and the portable-complex layout version, so
    /// bumping either makes old entries invisible (a clean miss) instead
    /// of counted corruption.
    fn canonical_text(&self) -> String {
        format!(
            "fact-tower|{:032x}|{:032x}|{}|{}|{}",
            self.affine_hash,
            self.inputs_hash,
            self.level,
            TOWER_FORMAT_VERSION,
            act_topology::PORTABLE_FORMAT_VERSION,
        )
    }

    /// The 128-bit content address of this tower level.
    pub fn content_hash(&self) -> u128 {
        content_hash128(self.canonical_text().as_bytes())
    }
}

/// On-disk envelope of one tower level. Flat named fields only; the
/// complex rides as the hex encoding of its portable byte form
/// ([`act_topology::Complex::encode_portable`]).
#[derive(Clone, Debug, Serialize, Deserialize)]
struct TowerDiskEntry {
    format: u32,
    affine_hash: String,
    inputs_hash: String,
    level: u32,
    portable_format: u32,
    complex_hex: String,
    checksum: u64,
}

impl TowerDiskEntry {
    fn new(key: &TowerKey, domain: &act_topology::Complex) -> TowerDiskEntry {
        let mut e = TowerDiskEntry {
            format: TOWER_FORMAT_VERSION,
            affine_hash: format!("{:032x}", key.affine_hash),
            inputs_hash: format!("{:032x}", key.inputs_hash),
            level: key.level,
            portable_format: act_topology::PORTABLE_FORMAT_VERSION,
            complex_hex: hex_encode(&domain.encode_portable()),
            checksum: 0,
        };
        e.checksum = e.payload_checksum();
        e
    }

    /// FNV-1a over every field except `checksum`, in a fixed order.
    fn payload_checksum(&self) -> u64 {
        let text = format!(
            "{}|{}|{}|{}|{}|{}",
            self.format,
            self.affine_hash,
            self.inputs_hash,
            self.level,
            self.portable_format,
            self.complex_hex,
        );
        fnv1a64(0xcbf29ce484222325, text.as_bytes())
    }
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn hex_decode(text: &str) -> Option<Vec<u8>> {
    if !text.len().is_multiple_of(2) {
        return None;
    }
    let bytes = text.as_bytes();
    let nibble = |c: u8| -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            b'A'..=b'F' => Some(c - b'A' + 10),
            _ => None,
        }
    };
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        out.push(nibble(pair[0])? << 4 | nibble(pair[1])?);
    }
    Some(out)
}

/// The content-addressed store of domain towers `R_A^ℓ(I)`: one
/// checksummed JSON file per tower level, under the `towers/`
/// sub-directory of a verdict-store root.
///
/// The store implements [`fact::TowerPersistence`], so any
/// [`fact::DomainCache`] can be backed by it: on a warm restart the
/// cache loads each missing level from here (zero subdivision rounds)
/// instead of rebuilding the tower. Writes are atomic renames; loading
/// follows the verdict store's corruption discipline — a truncated,
/// unparsable, checksum-mismatched, or undecodable entry is a miss
/// counted by [`SERVE_TOWER_CORRUPT`](crate::SERVE_TOWER_CORRUPT),
/// never a panic, and a format-version bump is a *clean* miss. Hits and
/// clean misses are counted by
/// [`SERVE_TOWER_HIT`](crate::SERVE_TOWER_HIT) /
/// [`SERVE_TOWER_MISS`](crate::SERVE_TOWER_MISS).
pub struct TowerStore {
    dir: PathBuf,
    tmp_seq: AtomicU64,
}

impl TowerStore {
    /// Opens (creating if needed) the tower store under `root/towers`,
    /// where `root` is a verdict-store directory.
    pub fn open(root: &Path) -> std::io::Result<TowerStore> {
        let dir = root.join(TOWER_SUBDIR);
        std::fs::create_dir_all(&dir)?;
        Ok(TowerStore {
            dir,
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// The on-disk path of `key`'s entry.
    pub fn entry_path(&self, key: &TowerKey) -> PathBuf {
        self.dir.join(format!("{:032x}.json", key.content_hash()))
    }

    /// Loads and validates one tower level. Every failure mode degrades
    /// to `None`; corruption (as opposed to absence or a format bump) is
    /// counted and reported via `serve.tower.corrupt` events.
    pub fn load(&self, key: &TowerKey) -> Option<act_topology::Complex> {
        let path = self.entry_path(key);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            Err(_) => {
                crate::SERVE_TOWER_CORRUPT.add(1);
                return None;
            }
        };
        let entry: TowerDiskEntry = match serde_json::from_str(&text) {
            Ok(e) => e,
            Err(_) => {
                crate::SERVE_TOWER_CORRUPT.add(1);
                self.emit_corrupt(&path, "parse");
                return None;
            }
        };
        if entry.format != TOWER_FORMAT_VERSION {
            // An older/newer format is a clean miss, not corruption.
            return None;
        }
        if entry.checksum != entry.payload_checksum() {
            crate::SERVE_TOWER_CORRUPT.add(1);
            self.emit_corrupt(&path, "checksum");
            return None;
        }
        if entry.affine_hash != format!("{:032x}", key.affine_hash)
            || entry.inputs_hash != format!("{:032x}", key.inputs_hash)
            || entry.level != key.level
            || entry.portable_format != act_topology::PORTABLE_FORMAT_VERSION
        {
            // A content-hash collision (or a hand-edited file): the
            // payload is not the tower level this key names.
            crate::SERVE_TOWER_CORRUPT.add(1);
            self.emit_corrupt(&path, "key-mismatch");
            return None;
        }
        let Some(bytes) = hex_decode(&entry.complex_hex) else {
            crate::SERVE_TOWER_CORRUPT.add(1);
            self.emit_corrupt(&path, "payload-hex");
            return None;
        };
        match act_topology::Complex::decode_portable(&bytes) {
            Ok(c) => Some(c),
            Err(_) => {
                crate::SERVE_TOWER_CORRUPT.add(1);
                self.emit_corrupt(&path, "payload-decode");
                None
            }
        }
    }

    /// Persists one tower level under `key` (atomic rename). A failed
    /// write is a warm-cache loss, never an error for the caller.
    pub fn store(&self, key: &TowerKey, domain: &act_topology::Complex) {
        let path = self.entry_path(key);
        let entry = TowerDiskEntry::new(key, domain);
        let json = match serde_json::to_string(&entry) {
            Ok(j) => j,
            Err(_) => return,
        };
        let tmp = path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let write = std::fs::write(&tmp, json).and_then(|_| std::fs::rename(&tmp, &path));
        if let Err(e) = write {
            if act_obs::enabled() {
                act_obs::event("serve.tower.write_failed")
                    .str("error", &e.to_string())
                    .emit();
            }
        }
    }

    fn emit_corrupt(&self, path: &Path, kind: &str) {
        if act_obs::enabled() {
            act_obs::event("serve.tower.corrupt")
                .str("path", &path.display().to_string())
                .str("kind", kind)
                .emit();
        }
    }
}

impl fact::TowerPersistence for TowerStore {
    fn load_level(&self, affine_hash: u128, inputs_hash: u128, level: usize) -> Option<Complex> {
        let key = TowerKey {
            affine_hash,
            inputs_hash,
            level: level as u32,
        };
        match self.load(&key) {
            Some(c) => {
                crate::SERVE_TOWER_HIT.add(1);
                Some(c)
            }
            None => {
                crate::SERVE_TOWER_MISS.add(1);
                None
            }
        }
    }

    fn store_level(&self, affine_hash: u128, inputs_hash: u128, level: usize, domain: &Complex) {
        let key = TowerKey {
            affine_hash,
            inputs_hash,
            level: level as u32,
        };
        self.store(&key, domain);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(level: usize) -> StoreKey {
        StoreKey::new(
            &ModelSpec::parse("t-res:3:1", false).unwrap(),
            &TaskSpec::set_consensus(3, 1).unwrap(),
            level,
        )
    }

    fn verdict() -> StoredVerdict {
        StoredVerdict {
            verdict: "solvable".into(),
            iterations: 2,
            witness: vec![(0, 1), (3, 2)],
        }
    }

    #[test]
    fn content_hashes_are_canonical_and_distinct() {
        assert_eq!(key(2).content_hash(), key(2).content_hash());
        assert_ne!(key(1).content_hash(), key(2).content_hash());
        let mut bumped = key(2);
        bumped.engine_schema += 1;
        assert_ne!(bumped.content_hash(), key(2).content_hash());
    }

    #[test]
    fn memory_tier_round_trips_and_evicts_lru() {
        let store = VerdictStore::in_memory().with_memory_capacity(2);
        let (k1, k2, k3) = (key(1), key(2), key(3));
        assert!(store.put(&k1, &verdict()));
        assert!(store.put(&k2, &verdict()));
        assert_eq!(store.get(&k1), Some(verdict())); // refresh k1
        assert!(store.put(&k3, &verdict())); // evicts k2 (LRU)
        assert_eq!(store.memory_len(), 2);
        assert!(store.get(&k1).is_some());
        assert!(store.get(&k2).is_none());
        assert!(store.get(&k3).is_some());
    }

    #[test]
    fn non_authoritative_verdicts_are_refused() {
        let store = VerdictStore::in_memory();
        let mut v = verdict();
        v.verdict = "timed-out".into();
        assert!(!store.put(&key(1), &v));
        assert!(store.get(&key(1)).is_none());
        v.verdict = "exhausted".into();
        assert!(!store.put(&key(1), &v));
        assert_eq!(store.memory_len(), 0);
    }

    #[test]
    fn solvability_round_trips_only_authoritative_verdicts() {
        let no_map = Solvability::NoMapUpTo { max_iterations: 3 };
        let stored = StoredVerdict::from_solvability(&no_map).unwrap();
        assert_eq!(stored.verdict, "no-map");
        assert!(matches!(
            stored.to_solvability(),
            Some(Solvability::NoMapUpTo { max_iterations: 3 })
        ));
        assert!(
            StoredVerdict::from_solvability(&Solvability::Exhausted { iterations: 1 }).is_none()
        );
        assert!(
            StoredVerdict::from_solvability(&Solvability::TimedOut { iterations: 1 }).is_none()
        );
    }
}
