//! Seeded, replayable fault injection for the serve path — the wire and
//! disk counterpart of the runtime's scheduler-level
//! [`act_runtime::fault::FaultPlan`].
//!
//! A [`ServeFaultPlan`] is a serializable list of [`ServeFaultEvent`]s
//! addressed by *sequence numbers*: the `at_request`-th request a server
//! handles, or the `at_put`-th store write it performs. Both counters
//! are process-global and monotonically increasing, so a plan replays
//! identically for identical workloads — which is what lets
//! `ci/cluster_smoke.py` assert exact scrub and failover counts.
//!
//! Event kinds:
//!
//! * **DropConnection** — answer nothing and close the socket: the
//!   client observes a reset and must retry (exercising backoff);
//! * **DelayReply** — hold the reply for a bounded wall-clock delay:
//!   exercises client deadlines and timeout-triggered failover;
//! * **CloseAfterReply** — reply, then close the connection even if the
//!   client pipelined more requests: exercises reconnect paths;
//! * **TornWrite** — truncate the *next* store write at a byte budget
//!   and commit the truncated bytes directly to the final path,
//!   bypassing the atomic-rename discipline: the store must degrade the
//!   entry to a counted corrupt miss and the scrub pass must repair it;
//! * **KillPeer** — terminate the whole process with exit code
//!   [`KILL_EXIT_CODE`] before answering: the cluster smoke's
//!   replica-kill, exercising failover and post-restart anti-entropy.
//!
//! The plan is installed process-globally ([`install`]) because the
//! store's write path has no connection context; a server installs its
//! plan at startup (`fact-cli serve --fault-plan <file>`), and tests
//! install/uninstall around the section they exercise.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use serde::{Deserialize, Error, Serialize, Value};

use crate::SERVE_CHAOS_INJECTED;

/// Exit code of a [`ServeFaultEvent::KillPeer`] termination — distinct
/// from every CLI exit class so the smoke harness can tell an injected
/// kill from a genuine crash.
pub const KILL_EXIT_CODE: i32 = 42;

/// One injected serve-path fault, addressed by a process-global
/// sequence number (1-based: the first handled request is `1`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeFaultEvent {
    /// Close the connection of the `at_request`-th request without
    /// replying.
    DropConnection {
        /// 1-based global request sequence number the drop fires at.
        at_request: u64,
    },
    /// Delay the reply to the `at_request`-th request by `delay_ms`
    /// milliseconds.
    DelayReply {
        /// 1-based global request sequence number the delay fires at.
        at_request: u64,
        /// Reply delay in milliseconds.
        delay_ms: u64,
    },
    /// Reply to the `at_request`-th request, then close the connection.
    CloseAfterReply {
        /// 1-based global request sequence number the close fires at.
        at_request: u64,
    },
    /// Truncate the `at_put`-th store write to its first `keep_bytes`
    /// bytes and commit them *without* the atomic rename.
    TornWrite {
        /// 1-based global store-write sequence number the tear fires at.
        at_put: u64,
        /// Bytes of the serialized entry that reach the disk.
        keep_bytes: u64,
    },
    /// Exit the process (code [`KILL_EXIT_CODE`]) when the
    /// `at_request`-th request arrives, before answering it.
    KillPeer {
        /// 1-based global request sequence number the kill fires at.
        at_request: u64,
    },
}

// Hand-written (the vendored serde derive supports structs only): the
// enum serializes as an object with a `kind` discriminator, matching
// the runtime fault plan's wire idiom.
impl Serialize for ServeFaultEvent {
    fn to_value(&self) -> Value {
        match self {
            ServeFaultEvent::DropConnection { at_request } => Value::Map(vec![
                ("kind".to_string(), Value::Str("drop".to_string())),
                ("at_request".to_string(), Value::UInt(*at_request)),
            ]),
            ServeFaultEvent::DelayReply {
                at_request,
                delay_ms,
            } => Value::Map(vec![
                ("kind".to_string(), Value::Str("delay".to_string())),
                ("at_request".to_string(), Value::UInt(*at_request)),
                ("delay_ms".to_string(), Value::UInt(*delay_ms)),
            ]),
            ServeFaultEvent::CloseAfterReply { at_request } => Value::Map(vec![
                ("kind".to_string(), Value::Str("close".to_string())),
                ("at_request".to_string(), Value::UInt(*at_request)),
            ]),
            ServeFaultEvent::TornWrite { at_put, keep_bytes } => Value::Map(vec![
                ("kind".to_string(), Value::Str("torn-write".to_string())),
                ("at_put".to_string(), Value::UInt(*at_put)),
                ("keep_bytes".to_string(), Value::UInt(*keep_bytes)),
            ]),
            ServeFaultEvent::KillPeer { at_request } => Value::Map(vec![
                ("kind".to_string(), Value::Str("kill-peer".to_string())),
                ("at_request".to_string(), Value::UInt(*at_request)),
            ]),
        }
    }
}

impl Deserialize for ServeFaultEvent {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let kind = String::from_value(v.field("kind")?)?;
        match kind.as_str() {
            "drop" => Ok(ServeFaultEvent::DropConnection {
                at_request: u64::from_value(v.field("at_request")?)?,
            }),
            "delay" => Ok(ServeFaultEvent::DelayReply {
                at_request: u64::from_value(v.field("at_request")?)?,
                delay_ms: u64::from_value(v.field("delay_ms")?)?,
            }),
            "close" => Ok(ServeFaultEvent::CloseAfterReply {
                at_request: u64::from_value(v.field("at_request")?)?,
            }),
            "torn-write" => Ok(ServeFaultEvent::TornWrite {
                at_put: u64::from_value(v.field("at_put")?)?,
                keep_bytes: u64::from_value(v.field("keep_bytes")?)?,
            }),
            "kill-peer" => Ok(ServeFaultEvent::KillPeer {
                at_request: u64::from_value(v.field("at_request")?)?,
            }),
            other => Err(Error::msg(format!("unknown serve fault kind {other:?}"))),
        }
    }
}

/// A seeded, serializable serve-path fault plan. Identical workloads
/// replay identical injections, so a failing chaos run reproduces from
/// the plan file alone.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeFaultPlan {
    /// The seed the plan was generated from (0 for hand-built plans).
    pub seed: u64,
    /// The injected faults, in no particular order.
    pub events: Vec<ServeFaultEvent>,
}

/// SplitMix64, the same tiny generator the runtime fault plan uses.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ServeFaultPlan {
    /// An empty plan (injects nothing).
    pub fn empty() -> ServeFaultPlan {
        ServeFaultPlan {
            seed: 0,
            events: Vec::new(),
        }
    }

    /// Generates a deterministic plan from a seed: one to four
    /// non-lethal wire/disk events aimed at the first `horizon` requests
    /// (kills are never generated — a seeded sweep should perturb, not
    /// terminate; build kill plans by hand where the harness expects the
    /// exit). The same seed always yields the same plan.
    pub fn seeded(seed: u64, horizon: u64) -> ServeFaultPlan {
        let horizon = horizon.max(1);
        let mut state = seed;
        let count = 1 + (splitmix64(&mut state) % 4) as usize;
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            let event = match splitmix64(&mut state) % 4 {
                0 => ServeFaultEvent::DropConnection {
                    at_request: 1 + splitmix64(&mut state) % horizon,
                },
                1 => ServeFaultEvent::DelayReply {
                    at_request: 1 + splitmix64(&mut state) % horizon,
                    delay_ms: 1 + splitmix64(&mut state) % 50,
                },
                2 => ServeFaultEvent::CloseAfterReply {
                    at_request: 1 + splitmix64(&mut state) % horizon,
                },
                _ => ServeFaultEvent::TornWrite {
                    at_put: 1 + splitmix64(&mut state) % horizon,
                    keep_bytes: splitmix64(&mut state) % 64,
                },
            };
            events.push(event);
        }
        ServeFaultPlan { seed, events }
    }

    /// Parses a plan from its JSON spelling.
    pub fn from_json(text: &str) -> Result<ServeFaultPlan, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }

    /// The plan's JSON spelling.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }
}

/// What the connection loop should do about the request it just read —
/// the wire-side verdict of [`on_request`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireAction {
    /// Handle the request normally.
    None,
    /// Close the connection without replying.
    Drop,
    /// Sleep this many milliseconds, then reply normally.
    DelayMs(u64),
    /// Reply normally, then close the connection.
    CloseAfterReply,
    /// Exit the process with [`KILL_EXIT_CODE`] before replying.
    Kill,
}

struct PlanState {
    plan: ServeFaultPlan,
    request_seq: AtomicU64,
    put_seq: AtomicU64,
}

fn slot() -> &'static Mutex<Option<Arc<PlanState>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<PlanState>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

fn current() -> Option<Arc<PlanState>> {
    slot().lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Installs `plan` process-globally, resetting both sequence counters.
/// Replaces any previously installed plan.
pub fn install(plan: ServeFaultPlan) {
    *slot().lock().unwrap_or_else(|e| e.into_inner()) = Some(Arc::new(PlanState {
        plan,
        request_seq: AtomicU64::new(0),
        put_seq: AtomicU64::new(0),
    }));
}

/// Removes any installed plan (tests; graceful server shutdown).
pub fn uninstall() {
    *slot().lock().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Whether a plan is currently installed.
pub fn active() -> bool {
    current().is_some()
}

fn emit(kind: &str, seq: u64, detail: u64) {
    SERVE_CHAOS_INJECTED.add(1);
    if act_obs::enabled() {
        act_obs::event("serve.chaos.injected")
            .str("kind", kind)
            .u64("seq", seq)
            .u64("detail", detail)
            .emit();
    }
}

/// Advances the request counter and returns what the connection loop
/// must do with this request. Forwarded/internal requests count too —
/// the sequence numbers a plan addresses are *handled requests*, not
/// client-originated ones. [`WireAction::None`] when no plan is
/// installed.
pub fn on_request() -> WireAction {
    let Some(state) = current() else {
        return WireAction::None;
    };
    let seq = state.request_seq.fetch_add(1, Ordering::Relaxed) + 1;
    for event in &state.plan.events {
        match *event {
            ServeFaultEvent::KillPeer { at_request } if at_request == seq => {
                emit("kill-peer", seq, 0);
                return WireAction::Kill;
            }
            ServeFaultEvent::DropConnection { at_request } if at_request == seq => {
                emit("drop", seq, 0);
                return WireAction::Drop;
            }
            ServeFaultEvent::DelayReply {
                at_request,
                delay_ms,
            } if at_request == seq => {
                emit("delay", seq, delay_ms);
                return WireAction::DelayMs(delay_ms);
            }
            ServeFaultEvent::CloseAfterReply { at_request } if at_request == seq => {
                emit("close", seq, 0);
                return WireAction::CloseAfterReply;
            }
            _ => {}
        }
    }
    WireAction::None
}

/// Advances the store-write counter and, when a torn write is due,
/// returns how many bytes of the `len`-byte serialized entry should
/// reach the disk (committed *without* the atomic rename). `None` means
/// write normally.
pub fn torn_write(len: usize) -> Option<usize> {
    let state = current()?;
    let seq = state.put_seq.fetch_add(1, Ordering::Relaxed) + 1;
    for event in &state.plan.events {
        if let ServeFaultEvent::TornWrite { at_put, keep_bytes } = *event {
            if at_put == seq {
                let keep = (keep_bytes as usize).min(len);
                emit("torn-write", seq, keep as u64);
                return Some(keep);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_round_trip_through_json() {
        let plan = ServeFaultPlan {
            seed: 0,
            events: vec![
                ServeFaultEvent::DropConnection { at_request: 3 },
                ServeFaultEvent::DelayReply {
                    at_request: 5,
                    delay_ms: 20,
                },
                ServeFaultEvent::CloseAfterReply { at_request: 7 },
                ServeFaultEvent::TornWrite {
                    at_put: 2,
                    keep_bytes: 17,
                },
                ServeFaultEvent::KillPeer { at_request: 11 },
            ],
        };
        let back = ServeFaultPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(back, plan);
        assert!(plan.to_json().contains("\"kind\""));
    }

    #[test]
    fn seeded_plans_are_deterministic_and_never_lethal() {
        for seed in 0..64u64 {
            let a = ServeFaultPlan::seeded(seed, 100);
            assert_eq!(a, ServeFaultPlan::seeded(seed, 100));
            assert!(!a.events.is_empty() && a.events.len() <= 4);
            assert!(!a
                .events
                .iter()
                .any(|e| matches!(e, ServeFaultEvent::KillPeer { .. })));
        }
        assert_ne!(
            ServeFaultPlan::seeded(1, 100),
            ServeFaultPlan::seeded(2, 100)
        );
    }

    #[test]
    fn sequence_counters_address_events_exactly() {
        let _guard = crate::test_serial_guard();
        install(ServeFaultPlan {
            seed: 0,
            events: vec![
                ServeFaultEvent::DropConnection { at_request: 2 },
                ServeFaultEvent::TornWrite {
                    at_put: 2,
                    keep_bytes: 5,
                },
            ],
        });
        assert_eq!(on_request(), WireAction::None); // request 1
        assert_eq!(on_request(), WireAction::Drop); // request 2
        assert_eq!(on_request(), WireAction::None); // request 3
        assert_eq!(torn_write(100), None); // put 1
        assert_eq!(torn_write(100), Some(5)); // put 2
        assert_eq!(torn_write(3), None); // put 3
        uninstall();
        assert_eq!(on_request(), WireAction::None);
        assert_eq!(torn_write(100), None);
        assert!(!active());
    }

    #[test]
    fn torn_write_budget_is_clamped_to_the_entry_length() {
        let _guard = crate::test_serial_guard();
        install(ServeFaultPlan {
            seed: 0,
            events: vec![ServeFaultEvent::TornWrite {
                at_put: 1,
                keep_bytes: 1_000,
            }],
        });
        assert_eq!(torn_write(8), Some(8));
        uninstall();
    }
}
