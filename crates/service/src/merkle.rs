//! Merkle tree over the content-addressed verdict entries.
//!
//! The verdict store's entries are immutable facts keyed by a 128-bit
//! content address. This module maintains a binary Merkle tree over
//! those entries so that:
//!
//! * one **root hash** summarizes the whole store — two replicas with
//!   the same root provably hold the same entry set, so anti-entropy
//!   sync ([`crate::cluster`]) can skip converged peers with one
//!   round-trip;
//! * a query reply can carry an **inclusion proof** — a logarithmic
//!   sibling path from the entry's leaf to the root — so a client can
//!   check that the verdict it received is the one the store committed
//!   to, without re-running the engine or trusting the transport;
//! * the background **scrub** pass ([`crate::store::VerdictStore::scrub`])
//!   can re-checksum every entry file against the leaf the index
//!   recorded at write time and repair (or quarantine) silent disk
//!   corruption.
//!
//! The hash is the store's FNV-128 ([`content_hash128`]) — not
//! cryptographic, but collision-stable for the fault model this layer
//! defends against (bit rot, torn writes, truncation, version skew),
//! and dependency-free. Leaves are ordered by entry content hash, so
//! the root is a pure function of the entry *set*: insertion order,
//! process restarts, and replication direction cannot change it.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

pub use act_obs::content_hash128;

/// Root of the empty tree (no entries). Zero is unreachable as a real
/// node hash output domain value in practice and reads clearly in logs.
pub const EMPTY_ROOT: u128 = 0;

/// The leaf hash of one entry: binds the entry's content address (its
/// query identity) to the hash of its on-disk bytes, under a domain tag
/// so leaves can never collide with interior nodes.
pub fn leaf_hash(entry_hash: u128, file_hash: u128) -> u128 {
    content_hash128(format!("fact-merkle-leaf|{entry_hash:032x}|{file_hash:032x}").as_bytes())
}

/// An interior node: hash of the concatenated child hashes, domain-tagged.
fn node_hash(left: u128, right: u128) -> u128 {
    content_hash128(format!("fact-merkle-node|{left:032x}|{right:032x}").as_bytes())
}

/// One step of an inclusion proof: the sibling hash and whether that
/// sibling sits to the *left* of the path node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProofStep {
    /// The sibling's hash at this level.
    pub sibling: u128,
    /// `true` when the sibling is the left child (the path node is the
    /// right child).
    pub sibling_is_left: bool,
}

/// An inclusion proof for one entry: recomputing the leaf from
/// `(entry_hash, file_hash)` and folding the sibling path must
/// reproduce `root`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InclusionProof {
    /// The entry's content address (the store key hash).
    pub entry_hash: u128,
    /// Hash of the entry's serialized bytes at commit time.
    pub file_hash: u128,
    /// Sibling path, leaf level first. Levels where the path node is an
    /// odd last node (promoted unchanged) contribute no step.
    pub path: Vec<ProofStep>,
    /// The root the proof commits to.
    pub root: u128,
}

impl InclusionProof {
    /// Recomputes the root from the leaf and the sibling path. `true`
    /// iff it matches the committed root: any tampering with the entry
    /// identity, the byte hash, a sibling, or the root itself fails.
    pub fn verify(&self) -> bool {
        let mut h = leaf_hash(self.entry_hash, self.file_hash);
        for step in &self.path {
            h = if step.sibling_is_left {
                node_hash(step.sibling, h)
            } else {
                node_hash(h, step.sibling)
            };
        }
        h == self.root
    }

    /// Verifies the proof *and* that `bytes` are the exact entry bytes
    /// it commits to — a single flipped byte in the entry fails.
    pub fn verify_entry_bytes(&self, bytes: &[u8]) -> bool {
        content_hash128(bytes) == self.file_hash && self.verify()
    }

    /// The sibling path in wire form: `"l:<hex>"` when the sibling is
    /// the left child, `"r:<hex>"` otherwise.
    pub fn encode_path(&self) -> Vec<String> {
        self.path
            .iter()
            .map(|s| {
                format!(
                    "{}:{:032x}",
                    if s.sibling_is_left { 'l' } else { 'r' },
                    s.sibling
                )
            })
            .collect()
    }

    /// Rebuilds a proof from its wire fields ([`Self::encode_path`] plus
    /// the three hex hashes). Any malformed field is `None` — a client
    /// treats that exactly like a failed verification.
    pub fn decode(
        entry_hash: &str,
        file_hash: &str,
        path: &[String],
        root: &str,
    ) -> Option<InclusionProof> {
        let mut steps = Vec::with_capacity(path.len());
        for item in path {
            let (side, hex) = item.split_once(':')?;
            let sibling_is_left = match side {
                "l" => true,
                "r" => false,
                _ => return None,
            };
            steps.push(ProofStep {
                sibling: parse_hash_hex(hex)?,
                sibling_is_left,
            });
        }
        Some(InclusionProof {
            entry_hash: parse_hash_hex(entry_hash)?,
            file_hash: parse_hash_hex(file_hash)?,
            path: steps,
            root: parse_hash_hex(root)?,
        })
    }
}

/// Parses a 32-digit lowercase hex hash (the store's on-the-wire and
/// file-name spelling).
pub fn parse_hash_hex(text: &str) -> Option<u128> {
    if text.len() != 32 || !text.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u128::from_str_radix(text, 16).ok()
}

/// The store-side index: every entry's `(content hash → byte hash)`
/// pair, kept sorted so the tree shape is canonical.
#[derive(Clone, Debug, Default)]
pub struct MerkleIndex {
    leaves: BTreeMap<u128, u128>,
}

impl MerkleIndex {
    /// An empty index (root [`EMPTY_ROOT`]).
    pub fn new() -> MerkleIndex {
        MerkleIndex::default()
    }

    /// Records (or refreshes) one entry's byte hash.
    pub fn insert(&mut self, entry_hash: u128, file_hash: u128) {
        self.leaves.insert(entry_hash, file_hash);
    }

    /// Forgets one entry (quarantine, external deletion).
    pub fn remove(&mut self, entry_hash: u128) {
        self.leaves.remove(&entry_hash);
    }

    /// The recorded byte hash of one entry, if indexed.
    pub fn file_hash(&self, entry_hash: u128) -> Option<u128> {
        self.leaves.get(&entry_hash).copied()
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Every `(entry hash, byte hash)` pair in canonical (sorted) order
    /// — the anti-entropy exchange unit.
    pub fn entries(&self) -> Vec<(u128, u128)> {
        self.leaves.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// The current root hash ([`EMPTY_ROOT`] when empty).
    pub fn root(&self) -> u128 {
        let mut level: Vec<u128> = self.leaves.iter().map(|(&e, &f)| leaf_hash(e, f)).collect();
        if level.is_empty() {
            return EMPTY_ROOT;
        }
        while level.len() > 1 {
            level = fold_level(&level);
        }
        level[0]
    }

    /// The inclusion proof for one entry under the current root, or
    /// `None` when the entry is not indexed.
    pub fn proof(&self, entry_hash: u128) -> Option<InclusionProof> {
        let file_hash = self.file_hash(entry_hash)?;
        let mut level: Vec<u128> = self.leaves.iter().map(|(&e, &f)| leaf_hash(e, f)).collect();
        let mut pos = self.leaves.range(..entry_hash).count();
        let mut path = Vec::new();
        while level.len() > 1 {
            let sibling = pos ^ 1;
            if sibling < level.len() {
                path.push(ProofStep {
                    sibling: level[sibling],
                    sibling_is_left: sibling < pos,
                });
            }
            // An odd last node is promoted unchanged: no step recorded.
            level = fold_level(&level);
            pos /= 2;
        }
        Some(InclusionProof {
            entry_hash,
            file_hash,
            path,
            root: level[0],
        })
    }
}

/// One tree level up: pair left-to-right; an odd last node is promoted
/// unchanged (so singleton subtrees never re-hash).
fn fold_level(level: &[u128]) -> Vec<u128> {
    let mut next = Vec::with_capacity(level.len().div_ceil(2));
    for pair in level.chunks(2) {
        next.push(match pair {
            [l, r] => node_hash(*l, *r),
            [one] => *one,
            _ => unreachable!("chunks(2) yields 1- or 2-element slices"),
        });
    }
    next
}

/// The root in its canonical wire spelling (32 hex digits).
pub fn root_hex(root: u128) -> String {
    format!("{root:032x}")
}

/// Serializable scrub outcome, carried by `scrub` wire replies and
/// returned by [`crate::store::VerdictStore::scrub`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScrubReport {
    /// Entry files examined.
    pub checked: u64,
    /// Entries whose bytes no longer validated (checksum, parse, leaf
    /// mismatch, key mismatch).
    pub corrupt: u64,
    /// Corrupt entries rewritten from a good copy (memory tier or peer).
    pub repaired: u64,
    /// Corrupt entries with no good copy: moved aside for recompute.
    pub quarantined: u64,
    /// Index refreshes for entries written by other processes (or
    /// removed externally) since the last pass.
    pub refreshed: u64,
}

impl ScrubReport {
    /// Folds another pass's counts into this one.
    pub fn absorb(&mut self, other: &ScrubReport) {
        self.checked += other.checked;
        self.corrupt += other.corrupt;
        self.repaired += other.repaired;
        self.quarantined += other.quarantined;
        self.refreshed += other.refreshed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index(n: u64) -> MerkleIndex {
        let mut idx = MerkleIndex::new();
        for i in 0..n {
            idx.insert(
                content_hash128(format!("entry-{i}").as_bytes()),
                content_hash128(format!("bytes-{i}").as_bytes()),
            );
        }
        idx
    }

    #[test]
    fn root_is_order_independent_and_content_sensitive() {
        let mut a = MerkleIndex::new();
        let mut b = MerkleIndex::new();
        for i in 0..7u64 {
            a.insert(
                content_hash128(format!("e{i}").as_bytes()),
                content_hash128(format!("f{i}").as_bytes()),
            );
        }
        for i in (0..7u64).rev() {
            b.insert(
                content_hash128(format!("e{i}").as_bytes()),
                content_hash128(format!("f{i}").as_bytes()),
            );
        }
        assert_eq!(a.root(), b.root());
        assert_ne!(a.root(), EMPTY_ROOT);
        b.insert(content_hash128(b"e0"), content_hash128(b"different"));
        assert_ne!(a.root(), b.root());
        assert_eq!(MerkleIndex::new().root(), EMPTY_ROOT);
    }

    #[test]
    fn proofs_verify_for_every_entry_at_every_size() {
        for n in 1..=17u64 {
            let idx = index(n);
            let root = idx.root();
            for (entry, file) in idx.entries() {
                let proof = idx.proof(entry).expect("indexed entry has a proof");
                assert_eq!(proof.root, root, "n={n}");
                assert_eq!(proof.file_hash, file);
                assert!(proof.verify(), "n={n} entry={entry:032x}");
            }
        }
    }

    #[test]
    fn tampered_proofs_fail() {
        let idx = index(9);
        let entry = idx.entries()[4].0;
        let good = idx.proof(entry).unwrap();
        assert!(good.verify());

        let mut bad = good.clone();
        bad.file_hash ^= 1;
        assert!(!bad.verify());

        let mut bad = good.clone();
        bad.entry_hash ^= 1 << 77;
        assert!(!bad.verify());

        let mut bad = good.clone();
        bad.root ^= 1;
        assert!(!bad.verify());

        if !good.path.is_empty() {
            let mut bad = good.clone();
            bad.path[0].sibling ^= 1;
            assert!(!bad.verify());
            let mut bad = good.clone();
            bad.path[0].sibling_is_left = !bad.path[0].sibling_is_left;
            assert!(!bad.verify());
        }
    }

    #[test]
    fn wire_encoding_round_trips() {
        let idx = index(6);
        let entry = idx.entries()[3].0;
        let proof = idx.proof(entry).unwrap();
        let decoded = InclusionProof::decode(
            &format!("{:032x}", proof.entry_hash),
            &format!("{:032x}", proof.file_hash),
            &proof.encode_path(),
            &root_hex(proof.root),
        )
        .expect("wire fields decode");
        assert_eq!(decoded, proof);
        assert!(decoded.verify());

        assert!(InclusionProof::decode("xyz", "00", &[], "00").is_none());
        assert!(InclusionProof::decode(
            &format!("{:032x}", proof.entry_hash),
            &format!("{:032x}", proof.file_hash),
            &["m:0123".into()],
            &root_hex(proof.root),
        )
        .is_none());
    }

    #[test]
    fn entry_bytes_binding_detects_any_flip() {
        let mut idx = MerkleIndex::new();
        let bytes = b"the entry payload".to_vec();
        let entry = content_hash128(b"the-key");
        idx.insert(entry, content_hash128(&bytes));
        let proof = idx.proof(entry).unwrap();
        assert!(proof.verify_entry_bytes(&bytes));
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x20;
            assert!(!proof.verify_entry_bytes(&flipped), "flip at {i}");
        }
    }
}
