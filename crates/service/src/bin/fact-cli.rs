//! `fact-cli` — command-line front end for the FACT reproduction.
//!
//! ```console
//! $ fact-cli analyze t-res:3:1
//! $ fact-cli analyze 'custom:3:{p2};{p1,p3}' --closure
//! $ fact-cli solve k-of:3:2 2
//! $ fact-cli solve t-res:3:1 1 --store target/verdicts
//! $ fact-cli serve --addr 127.0.0.1:7878 --store target/verdicts
//! $ fact-cli simulate fig5b 200
//! $ fact-cli campaign t-res:3:1 --samples 1000000 --workers 8 --checkpoint c.jsonl
//! $ fact-cli census
//! $ fact-cli solve t-res:3:1 2 --report report.json
//! $ fact-cli validate-report report.json
//! $ fact-cli replay target/act-artifacts/liveness-1234-0.json t-res:3:1
//! ```
//!
//! Models are specified as `wait-free:N`, `t-res:N:T`, `k-of:N:K`,
//! `fig5b`, or `custom:N:{p1,p2};{p3};…` (live sets by process name;
//! add `--closure` to close under supersets).
//!
//! `solve --store <dir>` and `serve --store <dir>` share one persistent
//! content-addressed verdict store: a one-shot CLI run warms the server
//! and vice versa.
//!
//! Telemetry: set `ACT_OBS_OUT=stderr` (or a file path) to stream
//! JSON-lines events, or pass `--report <path>` to capture the run's
//! events into a validated [`RunReport`] JSON file.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

use act_service::{
    deepening_verdict, ClusterClient, ClusterConfig, FpcCache, ServeConfig, ServeFaultPlan,
    ServeOptions, StoreKey, StoredVerdict, VerdictStore, FPC_DEFAULT_RUNS, FPC_DEFAULT_SEED,
    FPC_MAX_RUNS,
};
use fact::adversary::{zoo, Adversary, AgreementFunction};
use fact::affine::fair_affine_task;
use fact::runtime::{run_adversarial, Trace, TraceArtifact};
use fact::tasks::SearchConfig;
use fact::topology::{betti_numbers, connected_components, is_link_connected, ColorSet, ProcessId};
use fact::{
    execute_affine_iterations, executed_set_consensus, outputs_to_simplex, validate_report_json,
    AlgorithmOneSystem, DomainCache, FactError, ModelSpec, RunReport, Solvability, TaskSpec,
};
use rand::SeedableRng;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let report_path = match extract_report_flag(&mut args) {
        Ok(p) => p,
        Err(msg) => return fail(FactError::Usage(msg)),
    };
    match extract_threads_flag(&mut args) {
        // Both the subdivision engine and the map-search engine read
        // RAYON_NUM_THREADS; setting it before any work starts makes the
        // flag govern every parallel fan-out of the run.
        Ok(Some(n)) => std::env::set_var("RAYON_NUM_THREADS", n.to_string()),
        Ok(None) => {}
        Err(msg) => return fail(FactError::Usage(msg)),
    }
    let deadline_ms = match extract_deadline_flag(&mut args) {
        Ok(d) => d,
        Err(msg) => return fail(FactError::Usage(msg)),
    };
    // With --report, the run's telemetry is captured in memory and lands
    // in the report; otherwise ACT_OBS_OUT (if set) picks the stream.
    let sink = if report_path.is_some() {
        let s = act_obs::MemorySink::shared();
        act_obs::install(s.clone());
        Some(s)
    } else {
        act_obs::init_from_env();
        None
    };
    let degraded_before = fact::tasks::ENGINE_DEGRADED.get();
    let mut result = run(&args, deadline_ms);
    // A run that completed but lost a search branch to a caught panic is
    // reported as degraded (exit code 3): its non-Found verdicts are not
    // exhaustive, and CI must not treat them as clean.
    let degraded_runs = fact::tasks::ENGINE_DEGRADED.get() - degraded_before;
    if result.is_ok() && degraded_runs > 0 {
        result = Err(FactError::Degraded(format!(
            "{degraded_runs} map search(es) caught a worker panic; \
             non-Found verdicts are not exhaustive"
        )));
    }
    if let (Some(path), Some(sink)) = (&report_path, &sink) {
        let lines = sink.drain();
        let command = args.first().cloned().unwrap_or_default();
        let model = match command.as_str() {
            "analyze" | "solve" | "simulate" => args.get(1).cloned().unwrap_or_default(),
            "replay" => args.get(2).cloned().unwrap_or_default(),
            _ => String::new(),
        };
        let verdict = result.as_ref().ok().cloned().flatten();
        let report = RunReport::from_events(&command, &model, result.is_ok(), verdict, &lines);
        let json = match serde_json::to_string_pretty(&report) {
            Ok(j) => j,
            Err(e) => return fail(FactError::Runtime(format!("serialize report: {e}"))),
        };
        if let Err(e) = std::fs::write(path, json) {
            return fail(FactError::Runtime(format!("write report {path:?}: {e}")));
        }
        eprintln!("report written to {path}");
    }
    match result {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => fail(e),
    }
}

/// Prints the error (plus usage when the invocation was malformed) and
/// maps it to its exit code: 1 runtime, 2 usage, 3 degraded, 4 timed out.
fn fail(e: FactError) -> ExitCode {
    eprintln!("error: {e}");
    if e.is_usage() {
        eprintln!();
        eprintln!("{USAGE}");
    }
    ExitCode::from(e.exit_code())
}

/// Removes `--report <path>` from the argument list, returning the path.
fn extract_report_flag(args: &mut Vec<String>) -> Result<Option<String>, String> {
    extract_value_flag(args, "--report")
}

/// Removes `<flag> <value>` from the argument list, returning the value.
fn extract_value_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => {
            if i + 1 >= args.len() {
                return Err(format!("{flag} needs a value"));
            }
            let value = args.remove(i + 1);
            args.remove(i);
            Ok(Some(value))
        }
    }
}

/// Removes `<flag> <n>` (a count, at least 1) from the argument list.
fn extract_count_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<usize>, String> {
    match extract_value_flag(args, flag)? {
        None => Ok(None),
        Some(raw) => {
            let n: usize = raw
                .parse()
                .map_err(|_| format!("bad {flag} value {raw:?}"))?;
            if n == 0 {
                return Err(format!("{flag} must be at least 1"));
            }
            Ok(Some(n))
        }
    }
}

/// Removes a bare boolean `<flag>` from the argument list, returning
/// whether it was present.
fn extract_bool_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        None => false,
        Some(i) => {
            args.remove(i);
            true
        }
    }
}

/// Removes `--threads <n>` from the argument list, returning the count.
fn extract_threads_flag(args: &mut Vec<String>) -> Result<Option<usize>, String> {
    match args.iter().position(|a| a == "--threads") {
        None => Ok(None),
        Some(i) => {
            if i + 1 >= args.len() {
                return Err("--threads needs a worker count".into());
            }
            let raw = args.remove(i + 1);
            args.remove(i);
            let n: usize = raw
                .parse()
                .map_err(|_| format!("bad --threads value {raw:?}"))?;
            if n == 0 {
                return Err("--threads must be at least 1".into());
            }
            Ok(Some(n))
        }
    }
}

/// Removes `--deadline-ms <n>` from the argument list, returning the
/// wall-clock budget for map searches in milliseconds.
fn extract_deadline_flag(args: &mut Vec<String>) -> Result<Option<u64>, String> {
    match args.iter().position(|a| a == "--deadline-ms") {
        None => Ok(None),
        Some(i) => {
            if i + 1 >= args.len() {
                return Err("--deadline-ms needs a millisecond count".into());
            }
            let raw = args.remove(i + 1);
            args.remove(i);
            let n: u64 = raw
                .parse()
                .map_err(|_| format!("bad --deadline-ms value {raw:?}"))?;
            Ok(Some(n))
        }
    }
}

const USAGE: &str = "\
usage:
  fact-cli analyze <model> [--closure]   adversary/agreement/affine-task report
  fact-cli solve <model> <k> [iters]     decide k-set consensus via the FACT,
                                         deepening R_A^ℓ up to ℓ = iters (default 1)
            [--store <dir>]              answer from / persist into a verdict store
  fact-cli serve [--stdio] [--addr H:P]  run the solvability query service
            [--store <dir>] [--workers <n>] [--queue <n>]
            [--peers H:P,H:P,...]        full cluster membership (incl. self)
            [--self-index <i>]           which --peers entry this server is
            [--replication-factor <r>]   distinct owners per entry (default 2)
            [--ring-weights w1,w2,...]   per-peer ring weights (default all 1)
            [--scrub-interval-ms <ms>]   background Merkle scrub period
            [--sync-interval-ms <ms>]    background anti-entropy period
            [--fault-plan <path>]        install a chaos plan (JSON; testing)
  fact-cli query <model> <k> [iters]     resilient client: solve via a cluster
            --peers H:P,H:P,...          with retry/backoff/replica failover
            [--proof]                    demand + verify a Merkle proof
            [--seed <n>]                 jitter seed (replayable retries)
  fact-cli cluster-stats --peers H:P,... per-peer counters + root convergence
  fact-cli simulate <model> <runs>       run Algorithm 1 under adversarial schedules
  fact-cli campaign <model>              large randomized run campaign with invariant
                                         mining, failure dedup, and auto-shrinking
            [--scope sampled|exhaustive] population tier (default sampled)
            [--samples <n>]              sampled-tier run count (default 100000)
            [--depth <d>]                exhaustive-tier schedule depth (default 6)
            [--workers <n>] [--batch <n>] [--seed <n>] [--max-steps <n>]
            [--fault-rate <pct>]         share of runs driven under a fault plan
            [--checkpoint <path>]        JSON-lines checkpoint file [--resume]
            [--artifacts <dir>]          where shrunk violation traces land
            [--inject-liveness <i,j,..>] force synthetic violations at run indices
            [--no-solver-check]          skip the solver verdict-agreement oracle
            [--quotient-oracle]          cross-check the solver verdict under both
                                         direct and symmetry-quotiented towers
            [--invariants <a,b,..>]      judge only the named invariants
            [--list-invariants]          print the invariant registry and exit
  fact-cli fpc <workload>                seeded FPC finalization statistics
            [--runs <n>] [--seed <n>]    batch size and base seed
            [--store <dir>]              cache summaries under <dir>/fpc
  fact-cli census                        survey all 3-process adversaries
  fact-cli validate-report <path>        check a --report JSON file
  fact-cli replay <path> <model>         replay a captured trace artifact

options:
  --report <path>   capture the run's telemetry into a RunReport JSON file
  --threads <n>     worker threads for subdivision and map search
                    (sets RAYON_NUM_THREADS; 1 forces the serial engines)
  --deadline-ms <n> wall-clock budget for each map search; expiry yields
                    a timed-out verdict (exit code 4), not a hang
                    (under serve: the default per-request budget)

exit codes: 0 success | 1 runtime failure | 2 usage error
            3 degraded run (a search branch was lost to a caught panic)
            4 search deadline expired
            42 chaos plan killed the server (kill-peer event; testing only)

models: wait-free:N | t-res:N:T | k-of:N:K | fig5b | custom:N:{p1,p2};{p3};...
        alpha:N:<table> | alpha-kconc:N:K   agreement-function (α) model families
        fpc:N:M:STRATEGY[:Q[:O]]            FPC workloads (fpc subcommand + serve)

serving: `serve` speaks newline-delimited JSON (see README \"Serving\");
shutdown is the wire request {\"op\":\"shutdown\"} — it drains the queue,
answers every admitted job, and only then acknowledges and exits.

telemetry: ACT_OBS_OUT=stderr|<file> streams JSON-lines events;
ACT_OBS_ARTIFACTS=<dir> captures liveness-failing runs as replayable traces.";

/// Dispatches a command, returning its one-line verdict (when it has
/// one) for the `--report` summary.
fn run(args: &[String], deadline_ms: Option<u64>) -> Result<Option<String>, FactError> {
    match args.first().map(String::as_str) {
        Some("analyze") => analyze(&args[1..]),
        Some("solve") => solve(&args[1..], deadline_ms),
        Some("serve") => serve(&args[1..], deadline_ms),
        Some("query") => query(&args[1..], deadline_ms),
        Some("cluster-stats") => cluster_stats(&args[1..]),
        Some("simulate") => simulate(&args[1..]),
        Some("campaign") => campaign(&args[1..]),
        Some("fpc") => fpc(&args[1..]),
        Some("census") => census(),
        Some("validate-report") => validate_report(&args[1..]),
        Some("replay") => replay(&args[1..]),
        Some(other) => Err(FactError::Usage(format!("unknown command {other:?}"))),
        None => Err(FactError::Usage("missing command".into())),
    }
}

/// Parses a model spec into an adversary (through the canonical
/// [`ModelSpec`] parser shared with the serving layer). Rejects
/// `alpha:` specs, which name no unique adversary.
fn parse_model(spec: &str, closure: bool) -> Result<Adversary, String> {
    ModelSpec::parse(spec, closure)?.adversary()
}

fn analyze(args: &[String]) -> Result<Option<String>, FactError> {
    let spec = args
        .first()
        .ok_or_else(|| "analyze needs a model spec".to_string())?;
    let closure = args.iter().any(|a| a == "--closure");
    let model = ModelSpec::parse(spec, closure)?;
    let n = model.num_processes();
    let alpha = model.agreement_function();
    let verdict;
    match model.adversary() {
        Ok(a) => {
            verdict = Some(format!(
                "setcon={} fair={}",
                a.setcon(),
                a.fairness_witness().is_none()
            ));
            println!("adversary        : {a}");
            println!("live sets        : {}", a.len());
            println!("superset-closed  : {}", a.is_superset_closed());
            println!("symmetric        : {}", a.is_symmetric());
            match a.fairness_witness() {
                None => println!("fair             : yes"),
                Some(w) => println!(
                    "fair             : NO (setcon(A|{},{}) = {} ≠ min(|Q|, setcon(A|P)) = {})",
                    w.p, w.q, w.restricted_power, w.expected_power
                ),
            }
            println!("setcon           : {}", a.setcon());
            if a.is_superset_closed() {
                println!("csize            : {}", a.csize());
            }
        }
        Err(_) => {
            // An α-model: no adversary to report on, but the agreement
            // function (validated at parse time) and its affine task
            // carry the whole analysis.
            let power = alpha.alpha(ColorSet::full(n));
            verdict = Some(format!("setcon={power} alpha-model=true"));
            println!("model            : α-model {}", model.canonical_string());
            println!("setcon (α(Π))    : {power}");
            println!(
                "bounded decrease : {}",
                if alpha.has_bounded_decrease() {
                    "yes"
                } else {
                    "NO"
                }
            );
        }
    }
    println!("agreement function:");
    for p in ColorSet::full(n).non_empty_subsets() {
        println!("  alpha({p}) = {}", alpha.alpha(p));
    }
    if alpha.alpha(ColorSet::full(n)) == 0 {
        println!("the model admits no runs; no affine task");
        return Ok(verdict);
    }
    if n > 4 {
        println!("(R_A construction skipped for n = {n}: Chr² too large)");
        return Ok(verdict);
    }
    let r = fair_affine_task(&alpha);
    let c = r.complex();
    println!(
        "affine task R_A  : {} facets (of {} in Chr² s)",
        c.facet_count(),
        {
            let full = fact::topology::Complex::standard(n).iterated_subdivision(2);
            full.facet_count()
        }
    );
    println!("components       : {}", connected_components(c));
    println!("link-connected   : {}", is_link_connected(c));
    println!("betti (GF(2))    : {:?}", betti_numbers(c));
    Ok(verdict)
}

fn solve(args: &[String], deadline_ms: Option<u64>) -> Result<Option<String>, FactError> {
    let mut args: Vec<String> = args.to_vec();
    let store_dir = extract_value_flag(&mut args, "--store")?;
    let spec = args
        .first()
        .ok_or_else(|| "solve needs a model spec".to_string())?;
    let k: usize = args
        .get(1)
        .ok_or_else(|| "solve needs k".to_string())?
        .parse()
        .map_err(|_| "bad k".to_string())?;
    let max_iters: usize = match args.get(2) {
        None => 1,
        Some(raw) => {
            let n: usize = raw.parse().map_err(|_| format!("bad iters {raw:?}"))?;
            if n == 0 {
                return Err(FactError::Usage("iters must be at least 1".into()));
            }
            n
        }
    };
    let model = ModelSpec::parse(spec, false)?;
    let task = TaskSpec::set_consensus(model.num_processes(), k)?;
    // The whole solve path is a function of the model's agreement
    // function — `R_A` is built from α alone — so α-models and
    // adversary models share every line below, store keys included.
    let alpha = model.agreement_function();
    let store = match &store_dir {
        None => None,
        Some(dir) => Some(
            VerdictStore::open(std::path::Path::new(dir))
                .map_err(|e| FactError::Runtime(format!("open store {dir:?}: {e}")))?,
        ),
    };
    let n = model.num_processes();
    println!(
        "model setcon = {}; deciding {k}-set consensus…",
        alpha.alpha(ColorSet::full(n))
    );
    let key = StoreKey::new(&model, &task, max_iters);
    if let Some(store) = &store {
        if let Some(stored) = store.get(&key) {
            act_service::SERVE_HIT.add(1);
            act_service::SERVE_HIT.emit();
            let verdict = stored.to_solvability().ok_or_else(|| {
                FactError::Runtime("stored verdict did not decode (corrupt store?)".into())
            })?;
            println!("(served from store)");
            return report_verdict(&verdict);
        }
    }
    if alpha.alpha(ColorSet::full(n)) == 0 {
        return Err(FactError::Runtime("the model admits no runs".into()));
    }
    let r_a = fair_affine_task(&alpha);
    let t = task.task();
    let mut config = SearchConfig::new(5_000_000);
    if let Some(ms) = deadline_ms {
        config = config.with_deadline(std::time::Duration::from_millis(ms));
    }
    // One DomainCache across the deepening loop: each new ℓ extends the
    // R_A^ℓ tower by a single subdivision round instead of rebuilding.
    // The loop itself is `deepening_verdict`, shared with the server so
    // both front ends return byte-identical verdicts. With `--store`, the
    // cache is backed by the tower store under `<store>/towers`, so a
    // cold process reloads persisted R_A^ℓ levels instead of
    // resubdividing them.
    let mut cache = DomainCache::new();
    if let Some(store) = &store {
        if let Some(dir) = store.disk_dir() {
            if let Ok(towers) = act_service::TowerStore::open(dir) {
                cache.set_persistence(std::sync::Arc::new(towers));
            }
        }
    }
    let verdict = deepening_verdict(&mut cache, &t, &r_a, max_iters, &config);
    if let Some(store) = &store {
        // Only authoritative verdicts persist; a timed-out or exhausted
        // outcome is a fact about this run's budget, not the model.
        if let Some(stored) = StoredVerdict::from_solvability(&verdict) {
            store.put(&key, &stored);
        }
    }
    report_verdict(&verdict)
}

/// Prints a verdict the way `solve` always has, mapping `timed-out` to
/// its exit code. Shared by the engine and store paths, so a warm run's
/// output differs from a cold one only by the `(served from store)`
/// marker line.
fn report_verdict(verdict: &Solvability) -> Result<Option<String>, FactError> {
    match verdict {
        Solvability::Solvable { iterations, .. } => {
            println!(
                "SOLVABLE with {iterations} iteration(s) of R_A (map verified by construction)"
            )
        }
        Solvability::NoMapUpTo { max_iterations } => {
            println!("NO MAP up to {max_iterations} iteration(s) — unsolvable at that depth")
        }
        Solvability::Exhausted { iterations } => {
            println!("search budget exhausted at {iterations} iteration(s) — verdict unknown")
        }
        Solvability::TimedOut { iterations } => {
            println!("search deadline expired at {iterations} iteration(s) — verdict unknown");
            return Err(FactError::TimedOut {
                iterations: *iterations,
            });
        }
    }
    Ok(Some(verdict.verdict_name().to_string()))
}

fn serve(args: &[String], deadline_ms: Option<u64>) -> Result<Option<String>, FactError> {
    let options = parse_serve_options(args, deadline_ms)?;
    act_service::serve(options).map_err(|e| FactError::Runtime(format!("serve: {e}")))?;
    Ok(Some("drained".into()))
}

/// Parses the `serve` flags into [`ServeOptions`].
fn parse_serve_options(
    args: &[String],
    deadline_ms: Option<u64>,
) -> Result<ServeOptions, FactError> {
    let mut args: Vec<String> = args.to_vec();
    let store_dir = extract_value_flag(&mut args, "--store")?;
    let addr = extract_value_flag(&mut args, "--addr")?;
    let workers = extract_count_flag(&mut args, "--workers")?;
    let queue = extract_count_flag(&mut args, "--queue")?;
    let peers = extract_value_flag(&mut args, "--peers")?;
    let self_index = extract_value_flag(&mut args, "--self-index")?
        .map(|raw| {
            raw.parse::<usize>()
                .map_err(|_| format!("bad --self-index value {raw:?}"))
        })
        .transpose()?;
    let replication = extract_count_flag(&mut args, "--replication-factor")?;
    let ring_weights = extract_value_flag(&mut args, "--ring-weights")?
        .map(|raw| {
            raw.split(',')
                .map(|s| {
                    s.trim()
                        .parse::<usize>()
                        .map_err(|_| format!("bad --ring-weights entry {s:?}"))
                })
                .collect::<Result<Vec<usize>, String>>()
        })
        .transpose()?;
    let fault_plan_path = extract_value_flag(&mut args, "--fault-plan")?;
    let scrub_interval_ms = extract_millis_flag(&mut args, "--scrub-interval-ms")?;
    let sync_interval_ms = extract_millis_flag(&mut args, "--sync-interval-ms")?;
    let stdio = match args.iter().position(|a| a == "--stdio") {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    };
    if let Some(stray) = args.first() {
        return Err(FactError::Usage(format!(
            "serve does not take positional argument {stray:?}"
        )));
    }
    let placement_flags = replication.is_some() || ring_weights.is_some();
    let cluster = match (peers, self_index) {
        (None, None) => None,
        (Some(_), None) => {
            return Err(FactError::Usage(
                "--peers needs --self-index (which peer this server is)".into(),
            ))
        }
        (None, Some(_)) => return Err(FactError::Usage("--self-index needs --peers".into())),
        (Some(list), Some(self_index)) => {
            let peers = parse_peer_list(&list)?;
            if self_index >= peers.len() {
                return Err(FactError::Usage(format!(
                    "--self-index {self_index} out of range for {} peer(s)",
                    peers.len()
                )));
            }
            let mut cluster = ClusterConfig::new(peers, self_index);
            if let Some(rf) = replication {
                if rf > cluster.peers.len() {
                    return Err(FactError::Usage(format!(
                        "--replication-factor {rf} exceeds the {} peer(s)",
                        cluster.peers.len()
                    )));
                }
                cluster.replication = rf;
            }
            if let Some(weights) = ring_weights {
                if weights.len() != cluster.peers.len() {
                    return Err(FactError::Usage(format!(
                        "--ring-weights has {} entries for {} peer(s)",
                        weights.len(),
                        cluster.peers.len()
                    )));
                }
                if weights.iter().all(|&w| w == 0) {
                    return Err(FactError::Usage(
                        "--ring-weights needs at least one non-zero entry".into(),
                    ));
                }
                cluster.weights = weights;
            }
            Some(cluster)
        }
    };
    if cluster.is_none() && placement_flags {
        return Err(FactError::Usage(
            "--replication-factor/--ring-weights need --peers".into(),
        ));
    }
    let fault_plan = match fault_plan_path {
        None => None,
        Some(path) => {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| FactError::Runtime(format!("read fault plan {path:?}: {e}")))?;
            Some(ServeFaultPlan::from_json(&text).map_err(FactError::Usage)?)
        }
    };
    let mut config = ServeConfig::default();
    if let Some(w) = workers {
        config.workers = w;
    }
    if let Some(q) = queue {
        config.queue_capacity = q;
    }
    config.deadline_ms = deadline_ms;
    Ok(ServeOptions {
        addr,
        stdio,
        store_dir: store_dir.map(PathBuf::from),
        config,
        cluster,
        fault_plan,
        scrub_interval_ms,
        sync_interval_ms,
    })
}

/// Removes `<flag> <ms>` (a millisecond count, 0 allowed) from the
/// argument list.
fn extract_millis_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<u64>, String> {
    match extract_value_flag(args, flag)? {
        None => Ok(None),
        Some(raw) => raw
            .parse::<u64>()
            .map(Some)
            .map_err(|_| format!("bad {flag} value {raw:?}")),
    }
}

/// Splits a `--peers` list (`host:port,host:port,…`) into addresses.
fn parse_peer_list(list: &str) -> Result<Vec<String>, FactError> {
    let peers: Vec<String> = list
        .split(',')
        .map(|p| p.trim().to_string())
        .filter(|p| !p.is_empty())
        .collect();
    if peers.is_empty() {
        return Err(FactError::Usage("--peers list is empty".into()));
    }
    for p in &peers {
        if !p.contains(':') {
            return Err(FactError::Usage(format!(
                "bad peer address {p:?} (want host:port)"
            )));
        }
    }
    Ok(peers)
}

/// `fact-cli query <model> <k> [iters] --peers a,b,…` — the resilient
/// client path: retries with jittered backoff, honors `retry_after_ms`
/// hints, rotates to replicas on failure, and propagates the remaining
/// `--deadline-ms` budget to the server on every attempt.
fn query(args: &[String], deadline_ms: Option<u64>) -> Result<Option<String>, FactError> {
    let mut args: Vec<String> = args.to_vec();
    let peers = extract_value_flag(&mut args, "--peers")?
        .ok_or_else(|| "query needs --peers host:port[,host:port…]".to_string())?;
    let peers = parse_peer_list(&peers)?;
    let seed = extract_value_flag(&mut args, "--seed")?
        .map(|raw| {
            raw.parse::<u64>()
                .map_err(|_| format!("bad --seed value {raw:?}"))
        })
        .transpose()?
        .unwrap_or(0);
    let proof = extract_bool_flag(&mut args, "--proof");
    let spec = args
        .first()
        .ok_or_else(|| "query needs a model spec".to_string())?;
    let k: usize = args
        .get(1)
        .ok_or_else(|| "query needs k".to_string())?
        .parse()
        .map_err(|_| "bad k".to_string())?;
    let iters: usize = match args.get(2) {
        None => 1,
        Some(raw) => {
            let n: usize = raw.parse().map_err(|_| format!("bad iters {raw:?}"))?;
            if n == 0 {
                return Err(FactError::Usage("iters must be at least 1".into()));
            }
            n
        }
    };
    // Validate the spec locally so a typo is a usage error here, not a
    // round-trip to the cluster.
    ModelSpec::parse(spec, false)?;
    let client = ClusterClient::new(peers, seed);
    let response = client
        .solve(spec, k, iters, proof, deadline_ms)
        .map_err(|e| FactError::Runtime(format!("query: {e}")))?;
    if !response.ok {
        return Err(FactError::Runtime(format!(
            "server error: {} (code {})",
            response.error.as_deref().unwrap_or("unknown"),
            response.code.unwrap_or(0)
        )));
    }
    let verdict = response.verdict.clone().unwrap_or_default();
    println!(
        "verdict       : {verdict} ({}, source {})",
        if response.authoritative == Some(true) {
            "authoritative"
        } else {
            "unreliable"
        },
        response.source.as_deref().unwrap_or("?")
    );
    if proof {
        match response.verified_proof() {
            Some(p) => println!(
                "merkle proof  : VERIFIED against root {:032x} ({} step(s))",
                p.root,
                p.path.len()
            ),
            None if response.proof_entry.is_some() => {
                return Err(FactError::Runtime(
                    "merkle proof FAILED verification — store integrity suspect".into(),
                ))
            }
            None => println!("merkle proof  : none (verdict was not store-committed)"),
        }
    }
    Ok(Some(verdict))
}

/// `fact-cli cluster-stats --peers a,b,…` — per-peer serving counters,
/// Merkle roots, and scrub/replication health, one row per reachable
/// peer. Exits nonzero when live peers disagree on the Merkle root.
fn cluster_stats(args: &[String]) -> Result<Option<String>, FactError> {
    let mut args: Vec<String> = args.to_vec();
    let peers = extract_value_flag(&mut args, "--peers")?
        .ok_or_else(|| "cluster-stats needs --peers host:port[,host:port…]".to_string())?;
    let peers = parse_peer_list(&peers)?;
    if let Some(stray) = args.first() {
        return Err(FactError::Usage(format!("unexpected argument {stray:?}")));
    }
    let mut roots = std::collections::BTreeSet::new();
    let mut reachable = 0usize;
    for (i, peer) in peers.iter().enumerate() {
        let client = ClusterClient::new(vec![peer.clone()], i as u64);
        match client.stats() {
            Err(e) => println!("peer {i} {peer}: UNREACHABLE ({e})"),
            Ok(resp) => {
                let Some(stats) = resp.stats else {
                    println!("peer {i} {peer}: malformed stats reply");
                    continue;
                };
                reachable += 1;
                roots.insert(stats.merkle_root.clone());
                println!(
                    "peer {i} {peer}: entries={} root={} hits={} engine_runs={} \
                     scrub(runs={} corrupt={} repaired={} quarantined={}) \
                     peer(forwards={} failovers={} replications={} sync_pulls={})",
                    stats.merkle_entries,
                    &stats.merkle_root[..12.min(stats.merkle_root.len())],
                    stats.hits,
                    stats.engine_runs,
                    stats.scrub_runs,
                    stats.scrub_corrupt,
                    stats.scrub_repaired,
                    stats.scrub_quarantined,
                    stats.peer_forwards,
                    stats.failovers,
                    stats.peer_replications,
                    stats.peer_sync_pulls,
                );
            }
        }
    }
    if reachable == 0 {
        return Err(FactError::Runtime("no peer was reachable".into()));
    }
    if roots.len() > 1 {
        return Err(FactError::Runtime(format!(
            "live peers disagree on the Merkle root ({} distinct roots) — \
             run {{\"op\":\"sync\"}} or wait for anti-entropy",
            roots.len()
        )));
    }
    let summary = format!(
        "{reachable}/{} peer(s) reachable, roots converged",
        peers.len()
    );
    println!("{summary}");
    Ok(Some(summary))
}

fn simulate(args: &[String]) -> Result<Option<String>, FactError> {
    let spec = args
        .first()
        .ok_or_else(|| "simulate needs a model spec".to_string())?;
    let runs: usize = args
        .get(1)
        .map(|s| s.parse().map_err(|_| "bad run count".to_string()))
        .transpose()?
        .unwrap_or(100);
    let a = parse_model(spec, false)?;
    let n = a.num_processes();
    let alpha = AgreementFunction::of_adversary(&a);
    let full = ColorSet::full(n);
    if alpha.alpha(full) == 0 {
        return Err(FactError::Runtime("the model admits no runs".into()));
    }
    let r_a = fair_affine_task(&alpha);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xC11);
    let mut steps = 0usize;
    let mut distinct = std::collections::BTreeSet::new();
    for _ in 0..runs {
        let mut sys = AlgorithmOneSystem::new(&alpha, full);
        let outcome = run_adversarial(&mut sys, full, full, &mut rng, |_| 0, 500_000);
        if !outcome.all_correct_terminated {
            return Err(FactError::Runtime(
                "liveness violation — this would be a bug".into(),
            ));
        }
        steps += outcome.steps;
        let sx = outputs_to_simplex(r_a.complex(), &sys.outputs())
            .ok_or_else(|| FactError::Runtime("outputs did not resolve".into()))?;
        if !r_a.complex().contains_simplex(&sx) {
            return Err(FactError::Runtime(
                "SAFETY violation — this would be a bug".into(),
            ));
        }
        distinct.insert(sx);
    }
    println!("Algorithm 1: {runs} runs, all live and safe");
    println!("average steps per run : {}", steps / runs.max(1));
    println!(
        "distinct output facets: {} / {}",
        distinct.len(),
        r_a.complex().facet_count()
    );

    // One executed iteration + µ_Q consensus for flavour.
    let its = execute_affine_iterations(&r_a, &alpha, full, 1, &mut rng);
    let proposals: HashMap<ProcessId, u64> =
        full.iter().map(|p| (p, 100 + p.index() as u64)).collect();
    let decisions = executed_set_consensus(&r_a, &alpha, &its[0], full, &proposals);
    println!("µ_Q consensus on one executed run: {decisions:?}");
    Ok(Some(format!("{runs} runs live and safe")))
}

fn campaign(args: &[String]) -> Result<Option<String>, FactError> {
    let mut args = args.to_vec();
    if extract_bool_flag(&mut args, "--list-invariants") {
        println!("{:<28} {:<12} description", "invariant", "run family");
        for info in act_campaign::invariant_registry() {
            println!("{:<28} {:<12} {}", info.name, info.family, info.description);
        }
        return Ok(Some("listed the invariant registry".into()));
    }
    let scope_kind = extract_value_flag(&mut args, "--scope")?;
    let samples = extract_count_flag(&mut args, "--samples")?;
    let depth = extract_count_flag(&mut args, "--depth")?;
    let workers = extract_count_flag(&mut args, "--workers")?;
    let batch = extract_count_flag(&mut args, "--batch")?;
    let max_steps = extract_count_flag(&mut args, "--max-steps")?;
    let seed = extract_value_flag(&mut args, "--seed")?
        .map(|raw| {
            raw.parse::<u64>()
                .map_err(|_| format!("bad --seed value {raw:?}"))
        })
        .transpose()?;
    let fault_rate = extract_value_flag(&mut args, "--fault-rate")?
        .map(|raw| {
            raw.parse::<u8>()
                .ok()
                .filter(|p| *p <= 100)
                .ok_or_else(|| format!("bad --fault-rate value {raw:?} (want 0..=100)"))
        })
        .transpose()?;
    let checkpoint = extract_value_flag(&mut args, "--checkpoint")?;
    let artifacts = extract_value_flag(&mut args, "--artifacts")?;
    let inject = extract_value_flag(&mut args, "--inject-liveness")?
        .map(|raw| {
            raw.split(',')
                .map(|s| {
                    s.trim()
                        .parse::<u64>()
                        .map_err(|_| format!("bad --inject-liveness index {s:?}"))
                })
                .collect::<Result<Vec<u64>, String>>()
        })
        .transpose()?;
    let invariants = extract_value_flag(&mut args, "--invariants")?.map(|raw| {
        raw.split(',')
            .map(|s| s.trim().to_string())
            .collect::<Vec<_>>()
    });
    let resume = extract_bool_flag(&mut args, "--resume");
    let no_solver_check = extract_bool_flag(&mut args, "--no-solver-check");
    let quotient_oracle = extract_bool_flag(&mut args, "--quotient-oracle");
    let spec = args
        .first()
        .ok_or_else(|| "campaign needs a model spec".to_string())?;
    if let Some(stray) = args.get(1) {
        return Err(FactError::Usage(format!("unexpected argument {stray:?}")));
    }
    // Validate an invariant selection up front so an unknown name is a
    // usage error (exit 2), not a runtime failure mid-campaign.
    if let Some(selection) = &invariants {
        let family = if spec.starts_with("fpc:") {
            act_campaign::FAMILY_FPC
        } else {
            act_campaign::FAMILY_ADVERSARIAL
        };
        act_campaign::resolve_invariant_names(Some(selection), family).map_err(FactError::Usage)?;
    }

    let mut config = act_campaign::CampaignConfig::new(spec);
    config.scope = match scope_kind.as_deref() {
        None | Some("sampled") => act_campaign::Scope::Sampled {
            samples: samples.unwrap_or(100_000) as u64,
        },
        Some("exhaustive") => {
            if samples.is_some() {
                return Err(FactError::Usage(
                    "--samples applies to the sampled scope only".into(),
                ));
            }
            act_campaign::Scope::Exhaustive {
                max_depth: depth.unwrap_or(6),
            }
        }
        Some(other) => {
            return Err(FactError::Usage(format!(
                "bad --scope {other:?} (want sampled or exhaustive)"
            )))
        }
    };
    if let Some(seed) = seed {
        config.seed = seed;
    }
    if let Some(workers) = workers {
        config.workers = workers;
    }
    if let Some(batch) = batch {
        config.batch = batch as u64;
    }
    if let Some(max_steps) = max_steps {
        config.max_steps = max_steps;
    }
    if let Some(fault_rate) = fault_rate {
        config.fault_rate_percent = fault_rate;
    }
    config.checkpoint = checkpoint.map(PathBuf::from);
    config.artifacts = artifacts.map(PathBuf::from);
    config.resume = resume;
    config.inject_liveness = inject.unwrap_or_default();
    config.invariants = invariants;
    config.solver_check = !no_solver_check;
    config.quotient_oracle = quotient_oracle;
    if quotient_oracle && no_solver_check {
        return Err(FactError::Usage(
            "--quotient-oracle needs the solver check (drop --no-solver-check)".into(),
        ));
    }

    let report = act_campaign::run_campaign(&config).map_err(FactError::Runtime)?;
    let coverage = &report.coverage;
    println!(
        "campaign              : {} runs ({} resumed + {} executed), {:.0} runs/sec",
        report.cursor,
        report.resumed_from,
        report.cursor - report.resumed_from,
        report.runs_per_sec()
    );
    println!(
        "liveness              : {} live runs, {} scheduler steps",
        coverage.live, coverage.steps
    );
    println!(
        "fault injection       : {} faulted runs, {} fault events applied",
        coverage.faulted_runs, coverage.faults_applied
    );
    if config.is_fpc() {
        println!("distinct trajectories : {}", coverage.facets.len());
    } else {
        println!("distinct output facets: {}", coverage.facets.len());
    }
    println!(
        "violations            : {} total ({} injected, {} deduplicated)",
        coverage.violations, coverage.injected_violations, coverage.deduped
    );
    for (invariant, count) in &coverage.invariant_violations {
        println!("  {invariant:<24} ×{count}");
    }
    for path in &report.new_artifacts {
        println!("artifact              : {}", path.display());
    }
    let uninjected = coverage.violations - coverage.injected_violations;
    if uninjected > 0 {
        return Err(FactError::Runtime(format!(
            "campaign mined {uninjected} uninjected invariant violation(s); \
             shrunk artifacts: {:?}",
            report.artifact_sigs
        )));
    }
    Ok(Some(format!(
        "{} runs, {} violations ({} injected), {} artifact(s)",
        report.cursor,
        coverage.violations,
        coverage.injected_violations,
        report.artifact_sigs.len()
    )))
}

fn fpc(args: &[String]) -> Result<Option<String>, FactError> {
    let mut args = args.to_vec();
    let runs = extract_count_flag(&mut args, "--runs")?
        .map(|n| n as u64)
        .unwrap_or(FPC_DEFAULT_RUNS);
    let seed = extract_value_flag(&mut args, "--seed")?
        .map(|raw| {
            raw.parse::<u64>()
                .map_err(|_| format!("bad --seed value {raw:?}"))
        })
        .transpose()?
        .unwrap_or(FPC_DEFAULT_SEED);
    let store = extract_value_flag(&mut args, "--store")?;
    let spec_text = args
        .first()
        .ok_or_else(|| "fpc needs a workload spec (fpc:N:M:STRATEGY[:Q[:O]])".to_string())?;
    if let Some(stray) = args.get(1) {
        return Err(FactError::Usage(format!("unexpected argument {stray:?}")));
    }
    let spec = act_fpc::FpcSpec::parse(spec_text).map_err(FactError::Usage)?;
    if !(1..=FPC_MAX_RUNS).contains(&runs) {
        return Err(FactError::Usage(format!(
            "--runs must be in 1..={FPC_MAX_RUNS}"
        )));
    }
    let cache = match &store {
        Some(dir) => FpcCache::open(std::path::Path::new(dir))
            .map_err(|e| FactError::Runtime(format!("opening store {dir:?}: {e}")))?,
        None => FpcCache::in_memory(),
    };
    let (stats, source) = cache.summary(&spec, runs, seed);
    println!("workload              : {}", stats.spec);
    println!(
        "batch                 : {} runs, seed {} ({source})",
        stats.runs, stats.seed
    );
    println!(
        "agreement failures    : {} ({} per mille)",
        stats.agreement_failures,
        stats.agreement_failures * 1000 / stats.runs.max(1)
    );
    println!(
        "termination failures  : {} ({} per mille)",
        stats.termination_failures,
        stats.termination_failures * 1000 / stats.runs.max(1)
    );
    println!(
        "rounds to finality    : p50 {}, p99 {}, max {}, mean {}.{:03}",
        stats.rounds_p50,
        stats.rounds_p99,
        stats.rounds_max,
        stats.mean_rounds_milli / 1000,
        stats.mean_rounds_milli % 1000
    );
    println!("batch fingerprint     : {}", stats.fingerprint);
    Ok(Some(format!(
        "{} over {} runs: {} agree-fail, {} term-fail, p50 {} rounds ({source})",
        stats.spec,
        stats.runs,
        stats.agreement_failures,
        stats.termination_failures,
        stats.rounds_p50
    )))
}

fn census() -> Result<Option<String>, FactError> {
    let all = zoo::all_adversaries(3);
    let fair = all.iter().filter(|a| a.is_fair()).count();
    let sym = all.iter().filter(|a| a.is_symmetric()).count();
    let ssc = all.iter().filter(|a| a.is_superset_closed()).count();
    println!("adversaries over 3 processes : {}", all.len());
    println!("fair                         : {fair}");
    println!("symmetric                    : {sym}");
    println!("superset-closed              : {ssc}");
    // Distinct agreement functions among the fair ones with runs.
    let mut alphas = std::collections::BTreeSet::new();
    let mut tasks: HashMap<Vec<u8>, usize> = HashMap::new();
    for a in all.iter().filter(|a| a.is_fair() && a.setcon() >= 1) {
        let alpha = AgreementFunction::of_adversary(a);
        let table: Vec<u8> = ColorSet::full(3)
            .subsets()
            .map(|p| alpha.alpha(p) as u8)
            .collect();
        alphas.insert(table.clone());
        *tasks.entry(table).or_insert(0) += 1;
    }
    println!(
        "distinct agreement functions among fair models with runs: {}",
        alphas.len()
    );
    println!("(fair adversaries with the same α share the same R_A and the same tasks)");
    Ok(None)
}

fn validate_report(args: &[String]) -> Result<Option<String>, FactError> {
    let path = args
        .first()
        .ok_or_else(|| "validate-report needs a file path".to_string())?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| FactError::Runtime(format!("read {path:?}: {e}")))?;
    let report = validate_report_json(&text).map_err(FactError::Runtime)?;
    println!(
        "valid run report: command={:?} model={:?} ok={} events={}",
        report.command,
        report.model,
        report.ok,
        report.events.len()
    );
    for (name, count) in &report.counters {
        let us = report.timings_us.get(name).copied();
        match us {
            Some(us) => println!("  {name:<24} ×{count:<6} {us} µs"),
            None => println!("  {name:<24} ×{count}"),
        }
    }
    Ok(Some("valid".into()))
}

fn replay(args: &[String]) -> Result<Option<String>, FactError> {
    let path = args
        .first()
        .ok_or_else(|| "replay needs an artifact path".to_string())?;
    let spec = args
        .get(1)
        .ok_or_else(|| "replay needs a model spec".to_string())?;
    let a = parse_model(spec, false)?;
    let alpha = AgreementFunction::of_adversary(&a);
    let text = std::fs::read_to_string(path)
        .map_err(|e| FactError::Runtime(format!("read {path:?}: {e}")))?;
    // Accept full artifacts and bare (possibly pre-context) traces.
    let (trace, reason) = match serde_json::from_str::<TraceArtifact>(&text) {
        Ok(artifact) => (artifact.trace, artifact.reason),
        Err(_) => (
            serde_json::from_str::<Trace>(&text).map_err(|e| {
                FactError::Runtime(format!("parse {path:?}: neither artifact nor trace: {e}"))
            })?,
            "bare-trace".to_string(),
        ),
    };
    println!(
        "replaying {reason} trace: {} steps, participants {}",
        trace.len(),
        trace.participants
    );
    if let Some(plan) = &trace.fault_plan {
        // The recorded schedule already reflects every injected fault, so
        // the replay never re-injects; the plan is provenance only.
        println!(
            "fault plan            : seed {:#x}, {} event(s) (recorded, not re-injected)",
            plan.seed,
            plan.events.len()
        );
    }
    let mut sys = AlgorithmOneSystem::new(&alpha, trace.participants);
    let terminated = trace.replay(&mut sys)?;
    println!("terminated            : {terminated}");
    let verdict = match trace.correct_terminated(terminated) {
        Some(true) => "correct set terminated — the recorded failure did NOT reproduce",
        Some(false) => "liveness failure reproduced (correct set did not terminate)",
        None => {
            if trace.participants.is_subset_of(terminated) {
                "all participants terminated"
            } else {
                "some participants still running (trace has no recorded correct set)"
            }
        }
    };
    println!("verdict               : {verdict}");
    Ok(Some(verdict.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_specs_parse() {
        assert_eq!(parse_model("wait-free:3", false).unwrap().len(), 7);
        assert_eq!(parse_model("t-res:3:1", false).unwrap().setcon(), 2);
        assert_eq!(parse_model("k-of:4:2", false).unwrap().setcon(), 2);
        assert!(parse_model("fig5b", false).unwrap().is_superset_closed());
        let custom = parse_model("custom:3:{p2};{p1,p3}", true).unwrap();
        assert_eq!(custom, zoo::figure_5b_adversary());
        let raw = parse_model("custom:3:{p2};{p1,p3}", false).unwrap();
        assert_eq!(raw.len(), 2);
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(parse_model("nope:3", false).is_err());
        assert!(parse_model("t-res:3:3", false).is_err());
        assert!(parse_model("k-of:3:0", false).is_err());
        assert!(parse_model("wait-free:9", false).is_err());
        assert!(parse_model("custom:3:{p9}", false).is_err());
        assert!(parse_model("custom:3:{}", false).is_err());
    }

    #[test]
    fn commands_dispatch() {
        assert!(run(&[], None).is_err());
        assert!(run(&["frobnicate".into()], None).is_err());
        assert!(run(&["census".into()], None).is_ok());
        assert!(run(&["analyze".into(), "k-of:3:1".into()], None).is_ok());
        assert!(run(&["solve".into(), "k-of:3:1".into(), "1".into()], None).is_ok());
        assert!(run(&["validate-report".into()], None).is_err());
        assert!(run(
            &["replay".into(), "/no/such/file".into(), "t-res:3:1".into()],
            None
        )
        .is_err());
    }

    #[test]
    fn errors_carry_their_exit_codes() {
        // Malformed invocations are usage errors (exit 2)…
        let e = run(&["frobnicate".into()], None).unwrap_err();
        assert_eq!(e.exit_code(), 2);
        assert!(e.is_usage());
        // …and so are malformed specs, everywhere they can appear.
        let e = run(&["solve".into(), "nope:3".into(), "1".into()], None).unwrap_err();
        assert_eq!(e.exit_code(), 2);
        assert!(e.is_usage());
        // …while failures on well-formed invocations are runtime (exit 1).
        let e = run(
            &["replay".into(), "/no/such/file".into(), "t-res:3:1".into()],
            None,
        )
        .unwrap_err();
        assert_eq!(e.exit_code(), 1);
        assert!(!e.is_usage());
    }

    #[test]
    fn zero_deadline_times_out_the_solve() {
        // A deadline that has already expired must surface as TimedOut
        // (exit 4), never as Exhausted or a hang.
        let e = run(&["solve".into(), "k-of:3:1".into(), "1".into()], Some(0)).unwrap_err();
        assert!(matches!(e, FactError::TimedOut { .. }), "got {e:?}");
        assert_eq!(e.exit_code(), 4);
    }

    #[test]
    fn threads_flag_is_extracted() {
        let mut args: Vec<String> = ["solve", "--threads", "4", "t-res:3:1", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let n = extract_threads_flag(&mut args).unwrap();
        assert_eq!(n, Some(4));
        assert_eq!(args, ["solve", "t-res:3:1", "2"]);

        let mut none: Vec<String> = vec!["census".into()];
        assert_eq!(extract_threads_flag(&mut none).unwrap(), None);

        let mut missing: Vec<String> = vec!["census".into(), "--threads".into()];
        assert!(extract_threads_flag(&mut missing).is_err());

        let mut zero: Vec<String> = vec!["--threads".into(), "0".into()];
        assert!(extract_threads_flag(&mut zero).is_err());

        let mut junk: Vec<String> = vec!["--threads".into(), "lots".into()];
        assert!(extract_threads_flag(&mut junk).is_err());
    }

    #[test]
    fn solve_accepts_an_iteration_bound() {
        let solve = |iters: &str| {
            run(
                &["solve".into(), "k-of:3:1".into(), "1".into(), iters.into()],
                None,
            )
        };
        assert!(solve("2").is_ok());
        assert!(solve("0").is_err());
        assert!(solve("x").is_err());
    }

    #[test]
    fn deadline_flag_is_extracted() {
        let mut args: Vec<String> = ["solve", "--deadline-ms", "250", "t-res:3:1", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(extract_deadline_flag(&mut args).unwrap(), Some(250));
        assert_eq!(args, ["solve", "t-res:3:1", "2"]);

        let mut none: Vec<String> = vec!["census".into()];
        assert_eq!(extract_deadline_flag(&mut none).unwrap(), None);

        let mut missing: Vec<String> = vec!["census".into(), "--deadline-ms".into()];
        assert!(extract_deadline_flag(&mut missing).is_err());

        let mut junk: Vec<String> = vec!["--deadline-ms".into(), "soon".into()];
        assert!(extract_deadline_flag(&mut junk).is_err());
    }

    #[test]
    fn report_flag_is_extracted() {
        let mut args: Vec<String> = ["solve", "--report", "out.json", "t-res:3:1", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let path = extract_report_flag(&mut args).unwrap();
        assert_eq!(path.as_deref(), Some("out.json"));
        assert_eq!(args, ["solve", "t-res:3:1", "2"]);

        let mut none: Vec<String> = vec!["census".into()];
        assert_eq!(extract_report_flag(&mut none).unwrap(), None);

        let mut bad: Vec<String> = vec!["census".into(), "--report".into()];
        assert!(extract_report_flag(&mut bad).is_err());
    }

    #[test]
    fn serve_options_parse() {
        let args: Vec<String> = [
            "--stdio",
            "--store",
            "/tmp/s",
            "--workers",
            "3",
            "--queue",
            "16",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let opts = parse_serve_options(&args, Some(250)).unwrap();
        assert!(opts.stdio);
        assert_eq!(
            opts.store_dir.as_deref(),
            Some(std::path::Path::new("/tmp/s"))
        );
        assert_eq!(opts.config.workers, 3);
        assert_eq!(opts.config.queue_capacity, 16);
        assert_eq!(opts.config.deadline_ms, Some(250));

        let defaults = parse_serve_options(&[], None).unwrap();
        assert!(!defaults.stdio);
        assert_eq!(defaults.addr, None);
        assert_eq!(defaults.config.workers, ServeConfig::default().workers);
        assert!(defaults.cluster.is_none());
        assert!(defaults.fault_plan.is_none());
        assert_eq!(defaults.scrub_interval_ms, None);
        assert_eq!(defaults.sync_interval_ms, None);

        let bad: Vec<String> = vec!["--workers".into(), "0".into()];
        assert!(parse_serve_options(&bad, None).is_err());
        let stray: Vec<String> = vec!["t-res:3:1".into()];
        assert!(parse_serve_options(&stray, None).is_err());
    }

    #[test]
    fn cluster_serve_flags_parse() {
        let args: Vec<String> = [
            "--peers",
            "127.0.0.1:7001,127.0.0.1:7002",
            "--self-index",
            "1",
            "--scrub-interval-ms",
            "500",
            "--sync-interval-ms",
            "250",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let opts = parse_serve_options(&args, None).unwrap();
        let cluster = opts.cluster.expect("cluster config");
        assert_eq!(cluster.peers.len(), 2);
        assert_eq!(cluster.self_index, 1);
        assert_eq!(opts.scrub_interval_ms, Some(500));
        assert_eq!(opts.sync_interval_ms, Some(250));

        // --peers without --self-index (and vice versa) is a usage error…
        let half: Vec<String> = vec!["--peers".into(), "a:1,b:2".into()];
        assert!(parse_serve_options(&half, None).is_err());
        let other: Vec<String> = vec!["--self-index".into(), "0".into()];
        assert!(parse_serve_options(&other, None).is_err());
        // …as are an out-of-range index and a portless peer.
        let oob: Vec<String> = vec![
            "--peers".into(),
            "a:1,b:2".into(),
            "--self-index".into(),
            "2".into(),
        ];
        assert!(parse_serve_options(&oob, None).is_err());
        assert!(parse_peer_list("localhost").is_err());
        assert!(parse_peer_list("").is_err());
        assert_eq!(parse_peer_list("a:1, b:2,").unwrap(), vec!["a:1", "b:2"]);
    }

    #[test]
    fn query_and_cluster_stats_validate_their_arguments() {
        // Missing --peers is a usage error for both commands.
        let e = run(&["query".into(), "t-res:3:1".into(), "2".into()], None).unwrap_err();
        assert!(e.is_usage());
        let e = run(&["cluster-stats".into()], None).unwrap_err();
        assert!(e.is_usage());
        // A bad model spec fails locally, before any network attempt.
        let e = run(
            &[
                "query".into(),
                "nope:3".into(),
                "1".into(),
                "--peers".into(),
                "127.0.0.1:1".into(),
            ],
            None,
        )
        .unwrap_err();
        assert!(e.is_usage());
        // A well-formed query against a dead peer is a runtime failure.
        let e = run(
            &[
                "query".into(),
                "t-res:3:1".into(),
                "2".into(),
                "--peers".into(),
                "127.0.0.1:1".into(),
            ],
            None,
        )
        .unwrap_err();
        assert_eq!(e.exit_code(), 1);
    }

    #[test]
    fn solve_warms_and_reads_the_store() {
        let dir = std::env::temp_dir().join(format!("fact-cli-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_arg = dir.display().to_string();
        let solve = |args: &[&str]| {
            let mut full: Vec<String> = vec!["solve".into(), "t-res:3:1".into(), "2".into()];
            full.extend(args.iter().map(|s| s.to_string()));
            run(&full, None)
        };
        let hits_before = act_service::SERVE_HIT.get();
        // Cold: runs the engine and persists the verdict…
        assert_eq!(
            solve(&["--store", &dir_arg]).unwrap(),
            Some("solvable".into())
        );
        assert_eq!(act_service::SERVE_HIT.get(), hits_before);
        // …warm: identical verdict, answered from the store.
        assert_eq!(
            solve(&["--store", &dir_arg]).unwrap(),
            Some("solvable".into())
        );
        assert_eq!(act_service::SERVE_HIT.get(), hits_before + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
