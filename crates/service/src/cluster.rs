//! The peer layer: consistent-hash ownership, write-through
//! replication, forwarding/failover, and Merkle-root-diff anti-entropy.
//!
//! A cluster is N `fact-serve` processes started with the *same*
//! ordered peer list (`--peers a:1,b:2,c:3 --self-index i`). Identity
//! is positional: ring points are hashed from the peer *index*, so the
//! ring is identical on every peer by construction and needs no
//! membership protocol — the fleet is static, which is the right size
//! of solution for a reproduction's serving tier.
//!
//! **Ownership.** Each peer projects [`VNODES`] points onto the
//! 128-bit hash circle; an entry's owners are the first
//! [`ClusterConfig::replication`] *distinct* peers clockwise from the
//! entry's content address. With replication 2 (the default), every
//! verdict lives on two peers, so any single failure leaves a serving
//! copy.
//!
//! **Query path.** A `solve` landing on a non-owner is forwarded to an
//! owner (counted by `serve.peer.forwards`); if the first owner is
//! down, the forward fails over to the next (`serve.peer.failovers`).
//! A forwarded line carries `"fwd":true`, and a forwarded request is
//! always answered locally — forwarding is depth-one, so a stale or
//! disagreeing ring cannot loop. If every remote owner is down, the
//! receiving peer answers locally itself (the store is content-addressed,
//! so a non-owner computing an answer is merely unplaced, never wrong).
//!
//! **Write path.** A fresh authoritative verdict is write-through
//! replicated to the other owners (`serve.peer.replications`), each of
//! which validates the bytes before committing them.
//!
//! **Anti-entropy.** A background round ([`Cluster::sync`]) compares
//! Merkle roots with each peer (one RPC); on divergence it pulls the
//! peer's entry list, fetches entries this store lacks (or holds with
//! different bytes), validates, and commits them. Convergence is
//! therefore O(diff), and two idle peers provably agree when their
//! roots match.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::protocol::Response;
use crate::store::VerdictStore;
use crate::{
    SERVE_MERKLE_MISMATCH, SERVE_PEER_FAILOVERS, SERVE_PEER_FORWARDS, SERVE_PEER_REPLICATIONS,
    SERVE_PEER_SYNC_PULLS, SERVE_PEER_UNREACHABLE,
};

/// Default replication factor: every entry on two peers.
pub const REPLICATION_FACTOR: usize = 2;

/// Virtual nodes per unit of peer weight on the hash circle — enough
/// to spread ownership evenly across a handful of peers without making
/// the ring scan noticeable. A peer of weight `w` projects
/// `w * VNODES` points.
const VNODES: usize = 16;

/// Cap on a single peer's ring weight: beyond this the point count
/// stops buying placement smoothness and only slows the ring scan.
pub const MAX_RING_WEIGHT: usize = 64;

/// Static cluster topology, identical on every peer.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Peer addresses (`host:port`) in ring order. Every peer must be
    /// started with the same list in the same order.
    pub peers: Vec<String>,
    /// This process's position in `peers`.
    pub self_index: usize,
    /// Number of distinct owners per entry (clamped to the peer count).
    pub replication: usize,
    /// Per-peer ring weights (parallel to `peers`; empty means every
    /// peer weighs 1). Must be identical on every peer, like `peers`.
    pub weights: Vec<usize>,
    /// Peer connect timeout.
    pub connect_timeout_ms: u64,
    /// Peer read/write timeout.
    pub io_timeout_ms: u64,
}

impl ClusterConfig {
    /// A cluster of `peers` with this process at `self_index`, using
    /// the default replication factor, uniform weights, and timeouts.
    pub fn new(peers: Vec<String>, self_index: usize) -> ClusterConfig {
        ClusterConfig {
            peers,
            self_index,
            replication: REPLICATION_FACTOR,
            weights: Vec::new(),
            connect_timeout_ms: 250,
            io_timeout_ms: 5_000,
        }
    }

    /// The effective per-peer weights: `weights` when set, else 1 for
    /// every peer.
    pub fn effective_weights(&self) -> Vec<usize> {
        if self.weights.is_empty() {
            vec![1; self.peers.len()]
        } else {
            self.weights.clone()
        }
    }

    /// Whether this "cluster" is a single process (no peer traffic).
    pub fn is_single(&self) -> bool {
        self.peers.len() <= 1
    }
}

/// The consistent-hash ring: every peer's virtual points, sorted around
/// the 128-bit circle. Built from peer *indices*, so identical peer
/// lists build identical rings.
#[derive(Clone, Debug)]
pub struct PeerRing {
    points: Vec<(u128, usize)>,
    num_peers: usize,
}

/// Finalizing avalanche over both halves of a hash. FNV-1a's high bits
/// correlate across short, similar inputs (ring labels, store keys),
/// which skews arc lengths badly; scrambling every value placed on or
/// looked up against the ring restores uniform placement while staying
/// a pure function of the input — every peer still computes the same
/// ring.
fn scramble(h: u128) -> u128 {
    let lo = splitmix64(h as u64);
    let hi = splitmix64((h >> 64) as u64 ^ 0x9e37_79b9_7f4a_7c15);
    ((hi as u128) << 64) | lo as u128
}

/// The splitmix64 finalizer (same constants as the runtime fault
/// plans').
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl PeerRing {
    /// The uniform ring over `num_peers` peers (every peer weighs 1).
    pub fn new(num_peers: usize) -> PeerRing {
        PeerRing::new_weighted(&vec![1; num_peers])
    }

    /// The ring where peer `i` projects `weights[i] * VNODES` points.
    /// A zero weight keeps the peer addressable (it can still forward
    /// and sync) but gives it no ownership arc. Point labels include
    /// the vnode index only — not the weight — so growing a peer's
    /// weight *extends* its point set instead of reshuffling it, and
    /// the ring stays identical on every peer that agrees on the
    /// weight vector.
    pub fn new_weighted(weights: &[usize]) -> PeerRing {
        let num_peers = weights.len();
        let mut points = Vec::new();
        for (peer, &weight) in weights.iter().enumerate() {
            for vnode in 0..weight.min(MAX_RING_WEIGHT) * VNODES {
                let point = scramble(crate::content_hash128(
                    format!("fact-ring|{peer}|{vnode}").as_bytes(),
                ));
                points.push((point, peer));
            }
        }
        points.sort_unstable();
        PeerRing { points, num_peers }
    }

    /// The first `replication` *distinct* peers clockwise from `hash` —
    /// the entry's owners, primary first. Clamped to the peer count.
    pub fn owners(&self, hash: u128, replication: usize) -> Vec<usize> {
        let want = replication.clamp(1, self.num_peers.max(1));
        let mut out = Vec::with_capacity(want);
        if self.points.is_empty() {
            return out;
        }
        let start = self.points.partition_point(|&(p, _)| p < scramble(hash));
        for i in 0..self.points.len() {
            let (_, peer) = self.points[(start + i) % self.points.len()];
            if !out.contains(&peer) {
                out.push(peer);
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }
}

/// The live cluster handle a server threads through its request loop:
/// topology plus the RPC, replication, and sync verbs.
pub struct Cluster {
    config: ClusterConfig,
    ring: PeerRing,
}

impl Cluster {
    /// Builds the handle (and its ring) for `config`.
    pub fn new(config: ClusterConfig) -> Cluster {
        let ring = PeerRing::new_weighted(&config.effective_weights());
        Cluster { config, ring }
    }

    /// The static topology.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The owner peers of `hash`, primary first.
    pub fn owners(&self, hash: u128) -> Vec<usize> {
        self.ring.owners(hash, self.config.replication)
    }

    /// Whether this peer is one of `hash`'s owners.
    pub fn is_owner(&self, hash: u128) -> bool {
        self.owners(hash).contains(&self.config.self_index)
    }

    /// One line-oriented RPC to `peer`: send `line`, read one reply
    /// line. Failures count `serve.peer.unreachable`.
    pub fn rpc(&self, peer: usize, line: &str) -> Result<String, String> {
        let addr = self
            .config
            .peers
            .get(peer)
            .ok_or_else(|| format!("no peer {peer}"))?;
        let attempt = || -> std::io::Result<String> {
            let target = addr.parse::<std::net::SocketAddr>().map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string())
            })?;
            let stream = TcpStream::connect_timeout(
                &target,
                Duration::from_millis(self.config.connect_timeout_ms),
            )?;
            stream.set_read_timeout(Some(Duration::from_millis(self.config.io_timeout_ms)))?;
            stream.set_write_timeout(Some(Duration::from_millis(self.config.io_timeout_ms)))?;
            let mut writer = stream.try_clone()?;
            writer.write_all(line.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
            let mut reply = String::new();
            let n = BufReader::new(stream).read_line(&mut reply)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed before replying",
                ));
            }
            Ok(reply.trim_end().to_string())
        };
        attempt().map_err(|e| {
            SERVE_PEER_UNREACHABLE.add(1);
            if act_obs::enabled() {
                act_obs::event("serve.peer.unreachable")
                    .str("peer", addr)
                    .str("error", &e.to_string())
                    .emit();
            }
            format!("peer {addr}: {e}")
        })
    }

    /// Forwards a raw request line to `hash`'s owners, primary first,
    /// failing over down the owner list. Returns the first reply line,
    /// or `None` when every remote owner is down (the caller then
    /// answers locally). The forwarded line carries `"fwd":true`, so
    /// the receiver answers locally — forwarding is depth-one.
    pub fn forward(&self, hash: u128, line: &str) -> Option<String> {
        let marked = mark_forwarded(line);
        let mut tried_one = false;
        for (rank, peer) in self
            .owners(hash)
            .into_iter()
            .filter(|&p| p != self.config.self_index)
            .enumerate()
        {
            match self.rpc(peer, &marked) {
                Ok(reply) => {
                    SERVE_PEER_FORWARDS.add(1);
                    if rank > 0 {
                        SERVE_PEER_FAILOVERS.add(1);
                    }
                    return Some(reply);
                }
                Err(_) => tried_one = true,
            }
        }
        if tried_one {
            // Every remote owner refused: local answering is itself the
            // last failover rung.
            SERVE_PEER_FAILOVERS.add(1);
        }
        None
    }

    /// Write-through replication: ships `hash`'s committed bytes to
    /// every *other* owner. Failures are left to anti-entropy.
    pub fn replicate(&self, store: &VerdictStore, hash: u128) {
        if self.config.is_single() {
            return;
        }
        let Some(entry) = store.raw_entry(hash) else {
            return;
        };
        let line = Response::encode_replicate_request(&entry);
        for peer in self.owners(hash) {
            if peer == self.config.self_index {
                continue;
            }
            if self.rpc(peer, &line).is_ok() {
                SERVE_PEER_REPLICATIONS.add(1);
            }
        }
    }

    /// Fetches one entry's bytes from any peer that holds it (owners
    /// first) — the scrub pass's remote repair source.
    pub fn fetch_entry(&self, hash: u128) -> Option<String> {
        let line = format!("{{\"op\":\"fetch\",\"fwd\":true,\"hash\":\"{hash:032x}\"}}");
        let mut order = self.owners(hash);
        for p in 0..self.config.peers.len() {
            if !order.contains(&p) {
                order.push(p);
            }
        }
        for peer in order {
            if peer == self.config.self_index {
                continue;
            }
            if let Ok(reply) = self.rpc(peer, &line) {
                if let Ok(r) = serde_json::from_str::<Response>(&reply) {
                    if r.ok {
                        if let Some(entry) = r.entry {
                            SERVE_PEER_SYNC_PULLS.add(1);
                            return Some(entry);
                        }
                    }
                }
            }
        }
        None
    }

    /// One anti-entropy round: for each peer, compare Merkle roots; on
    /// divergence, pull its entry list and fetch every entry this store
    /// lacks (or holds with different bytes). Pulled bytes are fully
    /// validated by [`VerdictStore::put_raw_entry`], so a corrupt peer
    /// cannot poison this store. Returns the number of entries pulled.
    pub fn sync(&self, store: &VerdictStore) -> u64 {
        if self.config.is_single() {
            return 0;
        }
        let mut pulled = 0u64;
        for peer in 0..self.config.peers.len() {
            if peer == self.config.self_index {
                continue;
            }
            let Ok(reply) = self.rpc(peer, "{\"op\":\"root\",\"fwd\":true}") else {
                continue;
            };
            let Ok(root_reply) = serde_json::from_str::<Response>(&reply) else {
                continue;
            };
            let local_root = format!("{:032x}", store.merkle_root());
            if root_reply.merkle_root.as_deref() == Some(local_root.as_str()) {
                continue;
            }
            SERVE_MERKLE_MISMATCH.add(1);
            let Ok(reply) = self.rpc(peer, "{\"op\":\"entries\",\"fwd\":true}") else {
                continue;
            };
            let Ok(entries_reply) = serde_json::from_str::<Response>(&reply) else {
                continue;
            };
            let local: std::collections::HashMap<u128, u128> =
                store.entry_list().into_iter().collect();
            for (entry_hash, file_hash) in entries_reply.decode_entries() {
                if local.get(&entry_hash) == Some(&file_hash) {
                    continue;
                }
                if local.contains_key(&entry_hash) {
                    // Same entry, different bytes: both copies validate
                    // or they wouldn't be indexed, and validated bytes
                    // for one content address decode to one verdict —
                    // so this is re-encoding drift, not disagreement.
                    // Keep the local copy; roots still converge because
                    // the peer pulls nothing for this entry either.
                    continue;
                }
                let line =
                    format!("{{\"op\":\"fetch\",\"fwd\":true,\"hash\":\"{entry_hash:032x}\"}}");
                let Ok(reply) = self.rpc(peer, &line) else {
                    continue;
                };
                let Ok(fetch_reply) = serde_json::from_str::<Response>(&reply) else {
                    continue;
                };
                if let Some(entry) = fetch_reply.entry {
                    if store.put_raw_entry(&entry) {
                        pulled += 1;
                        SERVE_PEER_SYNC_PULLS.add(1);
                    }
                }
            }
        }
        if pulled > 0 && act_obs::enabled() {
            act_obs::event("serve.peer.sync")
                .u64("pulled", pulled)
                .str("root", &format!("{:032x}", store.merkle_root()))
                .emit();
        }
        pulled
    }
}

/// Adds the `"fwd":true` marker to a raw request line (assumes the line
/// is a JSON object, which every parsed request is).
fn mark_forwarded(line: &str) -> String {
    let trimmed = line.trim_end();
    if let Some(stripped) = trimmed.strip_suffix('}') {
        if stripped.trim_end().ends_with('{') {
            return format!("{}\"fwd\":true}}", stripped);
        }
        return format!("{stripped},\"fwd\":true}}");
    }
    trimmed.to_string()
}

impl Response {
    /// The request line that ships one replicated entry to a peer.
    pub fn encode_replicate_request(entry: &str) -> String {
        serde_json::to_string(&serde::Value::Map(vec![
            ("op".to_string(), serde::Value::Str("replicate".to_string())),
            ("fwd".to_string(), serde::Value::Bool(true)),
            ("entry".to_string(), serde::Value::Str(entry.to_string())),
        ]))
        .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rings_are_deterministic_and_balanced() {
        let a = PeerRing::new(4);
        let b = PeerRing::new(4);
        let mut counts = [0usize; 4];
        for i in 0..1_000u64 {
            let hash = crate::content_hash128(format!("key-{i}").as_bytes());
            let oa = a.owners(hash, 2);
            assert_eq!(oa, b.owners(hash, 2), "identical rings, identical owners");
            assert_eq!(oa.len(), 2);
            assert_ne!(oa[0], oa[1], "owners are distinct");
            counts[oa[0]] += 1;
        }
        for (peer, &n) in counts.iter().enumerate() {
            assert!(
                n > 100,
                "peer {peer} owns {n}/1000 primaries — unbalanced ring"
            );
        }
    }

    #[test]
    fn weighted_rings_skew_primary_ownership_toward_heavy_peers() {
        // Peer 0 weighs 3, the rest weigh 1: it should own roughly
        // half the primaries (3 of 6 weight units), and certainly far
        // more than a uniform quarter.
        let ring = PeerRing::new_weighted(&[3, 1, 1, 1]);
        let mut counts = [0usize; 4];
        for i in 0..2_000u64 {
            let hash = crate::content_hash128(format!("wkey-{i}").as_bytes());
            let owners = ring.owners(hash, 2);
            assert_eq!(owners.len(), 2);
            counts[owners[0]] += 1;
        }
        assert!(
            counts[0] > 700,
            "weight-3 peer owns {}/2000 primaries — weights not honored",
            counts[0]
        );
        for (peer, &n) in counts.iter().enumerate().skip(1) {
            assert!(n > 100, "peer {peer} owns {n}/2000 primaries");
        }
    }

    #[test]
    fn growing_a_weight_extends_rather_than_reshuffles_the_point_set() {
        // Every point of the lighter ring appears in the heavier one:
        // raising a peer's weight only *adds* arcs, so most keys keep
        // their owners (bounded data movement, the consistent-hashing
        // point).
        let light = PeerRing::new_weighted(&[1, 1, 1]);
        let heavy = PeerRing::new_weighted(&[1, 2, 1]);
        for p in &light.points {
            assert!(heavy.points.contains(p));
        }
        let mut moved = 0usize;
        for i in 0..1_000u64 {
            let hash = crate::content_hash128(format!("gkey-{i}").as_bytes());
            if light.owners(hash, 1) != heavy.owners(hash, 1) {
                moved += 1;
            }
        }
        assert!(
            moved < 500,
            "{moved}/1000 primaries moved — reshuffled ring"
        );
    }

    #[test]
    fn zero_weight_peers_own_nothing_but_stay_addressable() {
        let ring = PeerRing::new_weighted(&[1, 0, 1]);
        for i in 0..500u64 {
            let hash = crate::content_hash128(format!("zkey-{i}").as_bytes());
            let owners = ring.owners(hash, 3);
            assert!(!owners.contains(&1), "zero-weight peer owns {hash:x}");
        }
        // The config layer still counts it as a peer (it can forward,
        // sync, and serve fetches — it just holds no primary arc).
        let mut config = ClusterConfig::new(vec!["a:1".into(), "b:2".into(), "c:3".into()], 1);
        config.weights = vec![1, 0, 1];
        let cluster = Cluster::new(config);
        assert_eq!(cluster.config().peers.len(), 3);
        assert!(!cluster.is_owner(42));
    }

    #[test]
    fn replication_factor_is_config_driven() {
        let peers = vec!["a:1".into(), "b:2".into(), "c:3".into(), "d:4".into()];
        let mut config = ClusterConfig::new(peers, 0);
        assert_eq!(config.replication, REPLICATION_FACTOR);
        config.replication = 3;
        let cluster = Cluster::new(config);
        for i in 0..100u64 {
            let hash = crate::content_hash128(format!("rkey-{i}").as_bytes());
            let owners = cluster.owners(hash);
            assert_eq!(owners.len(), 3);
            let mut dedup = owners.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "owners must be distinct peers");
        }
    }

    #[test]
    fn replication_is_clamped_to_the_peer_count() {
        let ring = PeerRing::new(2);
        let owners = ring.owners(42, 5);
        assert_eq!(owners.len(), 2);
        let solo = PeerRing::new(1);
        assert_eq!(solo.owners(42, 2), vec![0]);
    }

    #[test]
    fn every_peer_agrees_on_ownership() {
        let configs: Vec<Cluster> = (0..3)
            .map(|i| {
                Cluster::new(ClusterConfig::new(
                    vec!["a:1".into(), "b:2".into(), "c:3".into()],
                    i,
                ))
            })
            .collect();
        for i in 0..200u64 {
            let hash = crate::content_hash128(format!("q{i}").as_bytes());
            let owners = configs[0].owners(hash);
            for c in &configs[1..] {
                assert_eq!(c.owners(hash), owners);
            }
            // Exactly the owner peers say "mine".
            for (idx, c) in configs.iter().enumerate() {
                assert_eq!(c.is_owner(hash), owners.contains(&idx));
            }
        }
    }

    #[test]
    fn forward_marking_is_idempotent_json() {
        let marked = mark_forwarded(r#"{"op":"solve","id":1,"model":"t-res:3:1","k":2}"#);
        let parsed = crate::protocol::parse_request(&marked).unwrap();
        assert!(parsed.forwarded);
        let marked_empty = mark_forwarded("{}");
        assert!(serde_json::from_str::<serde::Value>(&marked_empty).is_ok());
    }

    #[test]
    fn replicate_request_lines_parse() {
        let line = Response::encode_replicate_request("{\"format\":1}");
        let parsed = crate::protocol::parse_request(&line).unwrap();
        assert!(parsed.forwarded);
        assert_eq!(
            parsed.body,
            crate::protocol::RequestBody::Replicate {
                entry: "{\"format\":1}".to_string()
            }
        );
    }
}
