//! The operational front end: newline-delimited JSON over TCP or stdio.
//!
//! * **TCP** — the listener binds (by default `127.0.0.1:0`, letting the
//!   OS pick a free port) and prints `fact-serve listening on ADDR` as
//!   its first stdout line, so harnesses can scrape the assigned port.
//!   Each connection gets a thread; requests on one connection are
//!   answered in order, and clients open several connections for
//!   concurrency.
//! * **stdio** — one request per stdin line, one response per stdout
//!   line; used by tests and pipelines (`fact-cli serve --stdio`). EOF
//!   drains and exits cleanly.
//!
//! There is no signal handling (the crate is std-only): **graceful
//! shutdown is a wire request**. A `{"op":"shutdown"}` stops admission,
//! lets every queued and running job finish and answer its waiters,
//! joins the workers, and only then acknowledges — so a client that has
//! seen the `shutdown` response knows the queue was drained, and the
//! serve loop exits.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::protocol::{
    parse_request, RequestBody, Response, CODE_BACKPRESSURE, CODE_DRAINING, CODE_USAGE,
};
use crate::scheduler::{Scheduler, ServeConfig, Served, SolveQuery, Submitted};
use crate::store::VerdictStore;

/// How the serve loop is wired up.
#[derive(Clone, Debug, Default)]
pub struct ServeOptions {
    /// TCP listen address (`None` = `127.0.0.1:0`, OS-assigned port).
    /// Ignored under `stdio`.
    pub addr: Option<String>,
    /// Serve stdin/stdout instead of TCP.
    pub stdio: bool,
    /// Directory of the persistent verdict store (`None` = memory only).
    pub store_dir: Option<PathBuf>,
    /// Scheduler tuning.
    pub config: ServeConfig,
}

/// Runs the query service until a `shutdown` request (or stdin EOF in
/// stdio mode) completes its drain.
pub fn serve(options: ServeOptions) -> std::io::Result<()> {
    let store = match &options.store_dir {
        Some(dir) => VerdictStore::open(dir)?,
        None => VerdictStore::in_memory(),
    };
    let scheduler = Scheduler::new(Arc::new(store), options.config.clone());
    scheduler.start_workers();
    if options.stdio {
        serve_stdio(&scheduler)
    } else {
        serve_tcp(&scheduler, options.addr.as_deref().unwrap_or("127.0.0.1:0"))
    }
}

fn serve_stdio(scheduler: &Arc<Scheduler>) -> std::io::Result<()> {
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    for line in stdin.lock().lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = handle_line(scheduler, &line);
        writeln!(out, "{}", response.encode())?;
        out.flush()?;
        if shutdown {
            return Ok(());
        }
    }
    scheduler.drain();
    Ok(())
}

fn serve_tcp(scheduler: &Arc<Scheduler>, addr: &str) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    {
        let mut out = std::io::stdout();
        writeln!(out, "fact-serve listening on {}", listener.local_addr()?)?;
        out.flush()?;
    }
    let stop = Arc::new(AtomicBool::new(false));
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                stream.set_nonblocking(false)?;
                let scheduler = Arc::clone(scheduler);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || handle_connection(stream, &scheduler, &stop));
            }
            // Nonblocking accept doubles as the stop-flag poll: sleep a
            // beat and re-check, so a shutdown on any connection ends
            // the loop within ~25ms of the drain completing.
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

fn handle_connection(stream: TcpStream, scheduler: &Arc<Scheduler>, stop: &AtomicBool) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    for line in BufReader::new(read_half).lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = handle_line(scheduler, &line);
        let sent = writeln!(writer, "{}", response.encode()).and_then(|()| writer.flush());
        if sent.is_err() {
            return;
        }
        if shutdown {
            stop.store(true, Ordering::Relaxed);
            return;
        }
    }
}

/// Answers one request line. The boolean is the shutdown signal: when
/// set, the drain has already completed and the loop should exit after
/// writing the response.
fn handle_line(scheduler: &Arc<Scheduler>, line: &str) -> (Response, bool) {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err((id, message)) => return (Response::error(id, CODE_USAGE, &message), false),
    };
    match request.body {
        RequestBody::Solve {
            model,
            task,
            iters,
            deadline_ms,
        } => {
            let span = act_obs::span("serve.request");
            let submitted = scheduler.submit(SolveQuery {
                model,
                task,
                iters,
                deadline_ms,
            });
            let response = match submitted {
                Submitted::Ready(s) => solve_response(request.id, s),
                Submitted::Pending(rx) => {
                    let served = rx.recv().unwrap_or(Served::Failed {
                        error: "scheduler shut down before answering".into(),
                        code: CODE_DRAINING,
                    });
                    solve_response(request.id, served)
                }
                Submitted::Busy { depth } => Response::error(
                    request.id,
                    CODE_BACKPRESSURE,
                    &format!("queue full at depth {depth}; retry later"),
                ),
                Submitted::Draining => {
                    Response::error(request.id, CODE_DRAINING, "server is draining")
                }
            };
            span.finish().bool("ok", response.ok).emit();
            (response, false)
        }
        RequestBody::Stats => (
            Response::stats(request.id, scheduler.stats_snapshot()),
            false,
        ),
        RequestBody::Shutdown => {
            scheduler.drain();
            (Response::shutdown(request.id), true)
        }
    }
}

fn solve_response(id: u64, served: Served) -> Response {
    match served {
        Served::Authoritative { verdict, source } => Response::solve(
            id,
            &verdict.verdict,
            verdict.iterations,
            verdict.witness.len() as u64,
            source,
            true,
        ),
        Served::Unreliable {
            verdict,
            iterations,
        } => Response::solve(id, &verdict, iterations, 0, "engine", false),
        Served::Failed { error, code } => Response::error(id, code, &error),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fact::{ModelSpec, TaskSpec};
    use serde::Value;

    fn scheduler() -> Arc<Scheduler> {
        let sched = Scheduler::new(Arc::new(VerdictStore::in_memory()), ServeConfig::default());
        sched.start_workers();
        sched
    }

    #[test]
    fn solve_stats_and_errors_round_trip_through_handle_line() {
        let _serial = crate::test_serial_guard();
        let sched = scheduler();

        let (resp, shutdown) =
            handle_line(&sched, r#"{"op":"solve","id":1,"model":"t-res:3:1","k":2}"#);
        assert!(!shutdown);
        assert!(resp.ok);
        // setcon(t-res:3:1) = 2, so 2-set consensus solves at ℓ = 1.
        assert_eq!(resp.verdict.as_deref(), Some("solvable"));
        assert_eq!(resp.authoritative, Some(true));
        assert_eq!(resp.source.as_deref(), Some("engine"));

        // Identical query again: served from the store this time.
        let (resp, _) = handle_line(&sched, r#"{"op":"solve","id":2,"model":"t-res:3:1","k":2}"#);
        assert_eq!(resp.source.as_deref(), Some("store"));
        assert_eq!(resp.verdict.as_deref(), Some("solvable"));

        let (resp, _) = handle_line(&sched, r#"{"op":"stats","id":3}"#);
        let stats = resp.stats.expect("stats body");
        assert!(stats.hits >= 1);
        assert!(stats.engine_runs >= 1);
        assert_eq!(stats.workers, 2);

        let (resp, shutdown) =
            handle_line(&sched, r#"{"op":"solve","id":4,"model":"bogus","k":1}"#);
        assert!(!shutdown);
        assert!(!resp.ok);
        assert_eq!(resp.code, Some(CODE_USAGE));

        let (resp, shutdown) = handle_line(&sched, r#"{"op":"shutdown","id":5}"#);
        assert!(shutdown);
        assert!(resp.ok);
        assert_eq!(resp.op, "shutdown");

        // After the drain, new solves are refused as draining.
        let (resp, _) = handle_line(
            &sched,
            r#"{"op":"solve","id":6,"model":"t-res:3:1","k":2,"iters":2}"#,
        );
        assert!(!resp.ok);
        assert_eq!(resp.code, Some(CODE_DRAINING));
    }

    #[test]
    fn timed_out_solves_are_reported_but_never_stored() {
        let _serial = crate::test_serial_guard();
        let sched = scheduler();
        // k-of:3:1 solves 1-set consensus, so the search has real work to
        // do — a zero deadline must expire before it finds the map.
        let line = r#"{"op":"solve","id":1,"model":"k-of:3:1","k":1,"deadline_ms":0}"#;
        let (resp, _) = handle_line(&sched, line);
        assert!(resp.ok, "a timed-out answer is still an answered request");
        assert_eq!(resp.verdict.as_deref(), Some("timed-out"));
        assert_eq!(resp.authoritative, Some(false));
        let key = SolveQuery {
            model: ModelSpec::parse("k-of:3:1", false).unwrap(),
            task: TaskSpec::set_consensus(3, 1).unwrap(),
            iters: 1,
            deadline_ms: None,
        }
        .key();
        assert!(
            sched.store().get(&key).is_none(),
            "resource outcomes must not be persisted"
        );
        sched.drain();
    }

    #[test]
    fn responses_are_single_json_lines() {
        let _serial = crate::test_serial_guard();
        let sched = scheduler();
        let (resp, _) = handle_line(&sched, r#"{"op":"stats"}"#);
        let encoded = resp.encode();
        assert!(!encoded.contains('\n'));
        let v: Value = serde_json::from_str(&encoded).unwrap();
        assert!(matches!(v.field("op"), Ok(Value::Str(s)) if s == "stats"));
        sched.drain();
    }
}
