//! The operational front end: newline-delimited JSON over TCP or stdio.
//!
//! * **TCP** — the listener binds (by default `127.0.0.1:0`, letting the
//!   OS pick a free port) and prints `fact-serve listening on ADDR` as
//!   its first stdout line, so harnesses can scrape the assigned port.
//!   Each connection gets a thread; requests on one connection are
//!   answered in order, and clients open several connections for
//!   concurrency.
//! * **stdio** — one request per stdin line, one response per stdout
//!   line; used by tests and pipelines (`fact-cli serve --stdio`). EOF
//!   drains and exits cleanly.
//!
//! With a [`ClusterConfig`] the server is one peer of a replicated
//! cluster: non-owner solves forward to the key's owners (failing over
//! down the owner list), fresh verdicts write-through replicate, and
//! two background loops keep the store honest — a **scrub** pass
//! re-checksums entries against the Merkle index (repairing from the
//! memory tier or a peer, quarantining what nothing can restore) and an
//! **anti-entropy** round converges diverged peers by Merkle-root diff.
//! An installed [`ServeFaultPlan`] injects wire/disk chaos
//! deterministically (see [`crate::chaos`]).
//!
//! There is no signal handling (the crate is std-only): **graceful
//! shutdown is a wire request**. A `{"op":"shutdown"}` stops admission,
//! lets every queued and running job finish and answer its waiters,
//! joins the workers, and only then acknowledges — so a client that has
//! seen the `shutdown` response knows the queue was drained, and the
//! serve loop exits.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::chaos::{self, ServeFaultPlan, WireAction};
use crate::cluster::{Cluster, ClusterConfig};
use crate::fpccache::FpcCache;
use crate::merkle::ScrubReport;
use crate::protocol::{parse_request, RequestBody, Response, CODE_DRAINING, CODE_USAGE};
use crate::scheduler::{Scheduler, ServeConfig, Served, SolveQuery, Submitted};
use crate::store::{StoreKey, VerdictStore};
use crate::SERVE_MERKLE_PROOFS;

/// How the serve loop is wired up.
#[derive(Clone, Debug, Default)]
pub struct ServeOptions {
    /// TCP listen address (`None` = `127.0.0.1:0`, OS-assigned port).
    /// Ignored under `stdio`.
    pub addr: Option<String>,
    /// Serve stdin/stdout instead of TCP.
    pub stdio: bool,
    /// Directory of the persistent verdict store (`None` = memory only).
    pub store_dir: Option<PathBuf>,
    /// Scheduler tuning.
    pub config: ServeConfig,
    /// Cluster topology (`None` = a single standalone server).
    pub cluster: Option<ClusterConfig>,
    /// Chaos plan to install for this server's lifetime.
    pub fault_plan: Option<ServeFaultPlan>,
    /// Background scrub period (`None` = scrub only on request).
    pub scrub_interval_ms: Option<u64>,
    /// Background anti-entropy period (`None` = sync only at startup
    /// and on request). Ignored without a cluster.
    pub sync_interval_ms: Option<u64>,
}

/// Everything a request handler needs: the scheduler plus the optional
/// peer layer.
struct ServeCtx {
    scheduler: Arc<Scheduler>,
    cluster: Option<Arc<Cluster>>,
    fpc: FpcCache,
}

impl ServeCtx {
    /// One scrub pass, with peers as the remote repair source when
    /// clustered.
    fn scrub(&self) -> ScrubReport {
        let store = self.scheduler.store();
        match &self.cluster {
            Some(c) => {
                let cluster = Arc::clone(c);
                store.scrub(Some(&move |hash| cluster.fetch_entry(hash)))
            }
            None => store.scrub(None),
        }
    }

    /// One anti-entropy round (0 pulls when standalone).
    fn sync(&self) -> u64 {
        match &self.cluster {
            Some(c) => c.sync(self.scheduler.store()),
            None => 0,
        }
    }
}

/// Builds the context `serve`/`spawn_server` share: store, scheduler,
/// workers, cluster, replication hook, and chaos plan.
fn build_ctx(options: &ServeOptions) -> std::io::Result<Arc<ServeCtx>> {
    let store = Arc::new(match &options.store_dir {
        Some(dir) => VerdictStore::open(dir)?,
        None => VerdictStore::in_memory(),
    });
    let scheduler = Scheduler::new(Arc::clone(&store), options.config.clone());
    scheduler.start_workers();
    let cluster = options
        .cluster
        .clone()
        .filter(|c| !c.is_single())
        .map(|c| Arc::new(Cluster::new(c)));
    if let Some(cluster) = &cluster {
        let hook_cluster = Arc::clone(cluster);
        let hook_store = Arc::clone(&store);
        scheduler.set_replicator(Arc::new(move |hash| {
            hook_cluster.replicate(&hook_store, hash);
        }));
    }
    if let Some(plan) = &options.fault_plan {
        chaos::install(plan.clone());
    }
    let fpc = match &options.store_dir {
        Some(dir) => FpcCache::open(dir)?,
        None => FpcCache::in_memory(),
    };
    Ok(Arc::new(ServeCtx {
        scheduler,
        cluster,
        fpc,
    }))
}

/// Spawns the background scrub / anti-entropy loops. Both poll `stop`
/// on a short beat so shutdown is prompt; a clustered server also runs
/// one sync round right away (a restarted peer converges before its
/// first interval).
fn spawn_maintenance(ctx: &Arc<ServeCtx>, stop: &Arc<AtomicBool>, options: &ServeOptions) {
    if ctx.cluster.is_some() {
        let ctx = Arc::clone(ctx);
        let stop = Arc::clone(stop);
        let interval = options.sync_interval_ms;
        std::thread::spawn(move || {
            // Startup convergence; peers that aren't up yet simply
            // contribute nothing to this round.
            ctx.sync();
            let Some(interval) = interval else { return };
            loop {
                if sleep_until(&stop, interval) {
                    return;
                }
                ctx.sync();
            }
        });
    }
    if let Some(interval) = options.scrub_interval_ms {
        let ctx = Arc::clone(ctx);
        let stop = Arc::clone(stop);
        std::thread::spawn(move || loop {
            if sleep_until(&stop, interval) {
                return;
            }
            ctx.scrub();
        });
    }
}

/// Sleeps `ms` in short beats; `true` means `stop` was raised.
fn sleep_until(stop: &AtomicBool, ms: u64) -> bool {
    let mut waited = 0u64;
    while waited < ms {
        if stop.load(Ordering::Relaxed) {
            return true;
        }
        let beat = (ms - waited).min(25);
        std::thread::sleep(Duration::from_millis(beat));
        waited += beat;
    }
    stop.load(Ordering::Relaxed)
}

/// Runs the query service until a `shutdown` request (or stdin EOF in
/// stdio mode) completes its drain.
pub fn serve(options: ServeOptions) -> std::io::Result<()> {
    let ctx = build_ctx(&options)?;
    let stop = Arc::new(AtomicBool::new(false));
    spawn_maintenance(&ctx, &stop, &options);
    let result = if options.stdio {
        serve_stdio(&ctx)
    } else {
        let listener = TcpListener::bind(options.addr.as_deref().unwrap_or("127.0.0.1:0"))?;
        {
            let mut out = std::io::stdout();
            writeln!(out, "fact-serve listening on {}", listener.local_addr()?)?;
            out.flush()?;
        }
        serve_tcp(&ctx, listener, &stop)
    };
    stop.store(true, Ordering::Relaxed);
    result
}

/// A server running on its own thread over a pre-bound listener — the
/// in-process form tests and benches use (bind N listeners on port 0
/// first, collect the addresses, then build every peer's
/// [`ClusterConfig`] from the full list).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
    scheduler: Arc<Scheduler>,
}

impl ServerHandle {
    /// The address the server is accepting on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The scheduler (for store/stat assertions in tests).
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.scheduler
    }

    /// Stops the accept loop, joins it, and drains the scheduler.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
        self.scheduler.drain();
    }
}

/// Starts a server for `options` on `listener` (already bound) and
/// returns without blocking. `options.addr`/`options.stdio` are ignored
/// — the listener *is* the address.
pub fn spawn_server(
    options: &ServeOptions,
    listener: TcpListener,
) -> std::io::Result<ServerHandle> {
    let ctx = build_ctx(options)?;
    let stop = Arc::new(AtomicBool::new(false));
    spawn_maintenance(&ctx, &stop, options);
    let addr = listener.local_addr()?;
    let scheduler = Arc::clone(&ctx.scheduler);
    let loop_stop = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name(format!("fact-serve-{addr}"))
        .spawn(move || {
            let _ = serve_tcp(&ctx, listener, &loop_stop);
        })?;
    Ok(ServerHandle {
        addr,
        stop,
        thread: Some(thread),
        scheduler,
    })
}

fn serve_stdio(ctx: &Arc<ServeCtx>) -> std::io::Result<()> {
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    for line in stdin.lock().lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = handle_line(ctx, &line);
        writeln!(out, "{}", response.encode())?;
        out.flush()?;
        if shutdown {
            return Ok(());
        }
    }
    ctx.scheduler.drain();
    Ok(())
}

fn serve_tcp(
    ctx: &Arc<ServeCtx>,
    listener: TcpListener,
    stop: &Arc<AtomicBool>,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                stream.set_nonblocking(false)?;
                let ctx = Arc::clone(ctx);
                let stop = Arc::clone(stop);
                std::thread::spawn(move || handle_connection(stream, &ctx, &stop));
            }
            // Nonblocking accept doubles as the stop-flag poll. The
            // beat must stay short: every fresh client or forwarded
            // peer connection waits for it, so it is a floor on wire
            // latency, not just shutdown promptness.
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

fn handle_connection(stream: TcpStream, ctx: &Arc<ServeCtx>, stop: &AtomicBool) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    for line in BufReader::new(read_half).lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        // The chaos gate: what the installed plan wants done with this
        // request, before any real handling.
        let action = chaos::on_request();
        match action {
            WireAction::Kill => std::process::exit(chaos::KILL_EXIT_CODE),
            WireAction::Drop => return,
            WireAction::DelayMs(ms) => std::thread::sleep(Duration::from_millis(ms)),
            WireAction::None | WireAction::CloseAfterReply => {}
        }
        let (response, shutdown) = handle_line(ctx, &line);
        let sent = writeln!(writer, "{}", response.encode()).and_then(|()| writer.flush());
        if sent.is_err() {
            return;
        }
        if shutdown {
            stop.store(true, Ordering::Relaxed);
            return;
        }
        if action == WireAction::CloseAfterReply {
            return;
        }
    }
}

/// Answers one request line. The boolean is the shutdown signal: when
/// set, the drain has already completed and the loop should exit after
/// writing the response.
fn handle_line(ctx: &Arc<ServeCtx>, line: &str) -> (Response, bool) {
    let scheduler = &ctx.scheduler;
    let request = match parse_request(line) {
        Ok(r) => r,
        Err((id, message)) => return (Response::error(id, CODE_USAGE, &message), false),
    };
    match request.body {
        RequestBody::Solve {
            model,
            task,
            iters,
            deadline_ms,
            proof,
        } => {
            let span = act_obs::span("serve.request");
            let key = StoreKey::new(&model, &task, iters);
            let hash = key.content_hash();
            // Cluster placement: a non-owner forwards a client's solve
            // to the owners (depth-one — a forwarded line is always
            // answered locally). If every remote owner is down, answer
            // locally anyway: an unplaced answer is still correct.
            if !request.forwarded {
                if let Some(cluster) = ctx.cluster.as_ref().filter(|c| !c.is_owner(hash)) {
                    if let Some(reply) = cluster.forward(hash, line) {
                        if let Ok(response) = serde_json::from_str::<Response>(&reply) {
                            span.finish().bool("ok", response.ok).emit();
                            return (response, false);
                        }
                    }
                }
            }
            let submitted = scheduler.submit(SolveQuery {
                model,
                task,
                iters,
                deadline_ms,
            });
            let mut response = match submitted {
                Submitted::Ready(s) => solve_response(request.id, s),
                Submitted::Pending(rx) => {
                    let served = rx.recv().unwrap_or(Served::Failed {
                        error: "scheduler shut down before answering".into(),
                        code: CODE_DRAINING,
                    });
                    solve_response(request.id, served)
                }
                Submitted::Busy { depth } => Response::backpressure(request.id, depth),
                Submitted::Draining => {
                    Response::error(request.id, CODE_DRAINING, "server is draining")
                }
            };
            if proof && response.authoritative == Some(true) {
                if let Some(p) = scheduler.store().inclusion_proof(&key) {
                    SERVE_MERKLE_PROOFS.add(1);
                    response = response.with_proof(&p);
                }
            }
            span.finish().bool("ok", response.ok).emit();
            (response, false)
        }
        RequestBody::Fpc { spec, runs, seed } => {
            // FPC summaries are answered locally everywhere: the batch
            // is a pure function of the key, so any peer's answer is
            // identical and placement buys nothing.
            let span = act_obs::span("serve.fpc");
            let (stats, source) = ctx.fpc.summary(&spec, runs, seed);
            span.finish().str("source", source).emit();
            (Response::fpc(request.id, stats, source), false)
        }
        RequestBody::Stats => (
            Response::stats(request.id, scheduler.stats_snapshot()),
            false,
        ),
        RequestBody::Shutdown => {
            scheduler.drain();
            chaos::uninstall();
            (Response::shutdown(request.id), true)
        }
        RequestBody::Root => {
            let store = scheduler.store();
            (
                Response::root(request.id, store.merkle_root(), store.merkle_len() as u64),
                false,
            )
        }
        RequestBody::Entries => (
            Response::entries(request.id, &scheduler.store().entry_list()),
            false,
        ),
        RequestBody::Fetch { hash } => (
            Response::fetch(request.id, scheduler.store().raw_entry(hash)),
            false,
        ),
        RequestBody::Replicate { entry } => {
            let accepted = scheduler.store().put_raw_entry(&entry);
            (Response::replicate(request.id, accepted), false)
        }
        RequestBody::Scrub => {
            let report = ctx.scrub();
            (
                Response::scrub(request.id, report, scheduler.store().merkle_root()),
                false,
            )
        }
        RequestBody::SyncNow => {
            let pulled = ctx.sync();
            (
                Response::sync(request.id, pulled, scheduler.store().merkle_root()),
                false,
            )
        }
    }
}

fn solve_response(id: u64, served: Served) -> Response {
    match served {
        Served::Authoritative { verdict, source } => Response::solve(
            id,
            &verdict.verdict,
            verdict.iterations,
            verdict.witness.len() as u64,
            source,
            true,
        ),
        Served::Unreliable {
            verdict,
            iterations,
        } => Response::solve(id, &verdict, iterations, 0, "engine", false),
        Served::Failed { error, code } => Response::error(id, code, &error),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::CODE_BACKPRESSURE;
    use fact::{ModelSpec, TaskSpec};
    use serde::Value;

    fn test_ctx() -> Arc<ServeCtx> {
        let sched = Scheduler::new(Arc::new(VerdictStore::in_memory()), ServeConfig::default());
        sched.start_workers();
        Arc::new(ServeCtx {
            scheduler: sched,
            cluster: None,
            fpc: FpcCache::in_memory(),
        })
    }

    #[test]
    fn solve_stats_and_errors_round_trip_through_handle_line() {
        let _serial = crate::test_serial_guard();
        let ctx = test_ctx();

        let (resp, shutdown) =
            handle_line(&ctx, r#"{"op":"solve","id":1,"model":"t-res:3:1","k":2}"#);
        assert!(!shutdown);
        assert!(resp.ok);
        // setcon(t-res:3:1) = 2, so 2-set consensus solves at ℓ = 1.
        assert_eq!(resp.verdict.as_deref(), Some("solvable"));
        assert_eq!(resp.authoritative, Some(true));
        assert_eq!(resp.source.as_deref(), Some("engine"));

        // Identical query again: served from the store this time.
        let (resp, _) = handle_line(&ctx, r#"{"op":"solve","id":2,"model":"t-res:3:1","k":2}"#);
        assert_eq!(resp.source.as_deref(), Some("store"));
        assert_eq!(resp.verdict.as_deref(), Some("solvable"));

        let (resp, _) = handle_line(&ctx, r#"{"op":"stats","id":3}"#);
        let stats = resp.stats.expect("stats body");
        assert!(stats.hits >= 1);
        assert!(stats.engine_runs >= 1);
        assert_eq!(stats.workers, 2);
        assert_eq!(stats.merkle_entries, 1);
        assert_ne!(stats.merkle_root, format!("{:032x}", 0));

        let (resp, shutdown) = handle_line(&ctx, r#"{"op":"solve","id":4,"model":"bogus","k":1}"#);
        assert!(!shutdown);
        assert!(!resp.ok);
        assert_eq!(resp.code, Some(CODE_USAGE));

        let (resp, shutdown) = handle_line(&ctx, r#"{"op":"shutdown","id":5}"#);
        assert!(shutdown);
        assert!(resp.ok);
        assert_eq!(resp.op, "shutdown");

        // After the drain, new solves are refused as draining.
        let (resp, _) = handle_line(
            &ctx,
            r#"{"op":"solve","id":6,"model":"t-res:3:1","k":2,"iters":2}"#,
        );
        assert!(!resp.ok);
        assert_eq!(resp.code, Some(CODE_DRAINING));
    }

    #[test]
    fn timed_out_solves_are_reported_but_never_stored() {
        let _serial = crate::test_serial_guard();
        let ctx = test_ctx();
        // k-of:3:1 solves 1-set consensus, so the search has real work to
        // do — a zero deadline must expire before it finds the map.
        let line = r#"{"op":"solve","id":1,"model":"k-of:3:1","k":1,"deadline_ms":0}"#;
        let (resp, _) = handle_line(&ctx, line);
        assert!(resp.ok, "a timed-out answer is still an answered request");
        assert_eq!(resp.verdict.as_deref(), Some("timed-out"));
        assert_eq!(resp.authoritative, Some(false));
        let key = SolveQuery {
            model: ModelSpec::parse("k-of:3:1", false).unwrap(),
            task: TaskSpec::set_consensus(3, 1).unwrap(),
            iters: 1,
            deadline_ms: None,
        }
        .key();
        assert!(
            ctx.scheduler.store().get(&key).is_none(),
            "resource outcomes must not be persisted"
        );
        ctx.scheduler.drain();
    }

    #[test]
    fn responses_are_single_json_lines() {
        let _serial = crate::test_serial_guard();
        let ctx = test_ctx();
        let (resp, _) = handle_line(&ctx, r#"{"op":"stats"}"#);
        let encoded = resp.encode();
        assert!(!encoded.contains('\n'));
        let v: Value = serde_json::from_str(&encoded).unwrap();
        assert!(matches!(v.field("op"), Ok(Value::Str(s)) if s == "stats"));
        ctx.scheduler.drain();
    }

    #[test]
    fn proof_requests_carry_verifiable_proofs() {
        let _serial = crate::test_serial_guard();
        let ctx = test_ctx();
        let (resp, _) = handle_line(
            &ctx,
            r#"{"op":"solve","id":1,"model":"t-res:3:1","k":2,"proof":true}"#,
        );
        assert!(resp.ok);
        let proof = resp
            .verified_proof()
            .expect("authoritative solve carries a proof");
        assert_eq!(
            format!("{:032x}", proof.root),
            format!("{:032x}", ctx.scheduler.store().merkle_root())
        );
        // Without the flag, no proof fields ride along.
        let (resp, _) = handle_line(&ctx, r#"{"op":"solve","id":2,"model":"t-res:3:1","k":2}"#);
        assert!(resp.proof_entry.is_none());
        ctx.scheduler.drain();
    }

    #[test]
    fn peer_ops_answer_locally() {
        let _serial = crate::test_serial_guard();
        let ctx = test_ctx();
        let (resp, _) = handle_line(&ctx, r#"{"op":"solve","id":1,"model":"t-res:3:1","k":2}"#);
        assert!(resp.ok);

        let (root_resp, _) = handle_line(&ctx, r#"{"op":"root","id":2}"#);
        assert!(root_resp.ok);
        assert_eq!(root_resp.entry_count, Some(1));
        let root = root_resp.merkle_root.clone().unwrap();

        let (entries_resp, _) = handle_line(&ctx, r#"{"op":"entries","id":3}"#);
        let pairs = entries_resp.decode_entries();
        assert_eq!(pairs.len(), 1);

        let (fetch_resp, _) = handle_line(
            &ctx,
            &format!(r#"{{"op":"fetch","id":4,"hash":"{:032x}"}}"#, pairs[0].0),
        );
        assert!(fetch_resp.ok);
        let entry = fetch_resp.entry.expect("entry bytes");

        // Replicating those bytes into a second server reproduces the
        // root exactly — the anti-entropy convergence argument in
        // miniature.
        let other = test_ctx();
        let line = Response::encode_replicate_request(&entry);
        let (rep_resp, _) = handle_line(&other, &line);
        assert!(rep_resp.ok, "validated bytes are accepted");
        let (other_root, _) = handle_line(&other, r#"{"op":"root","id":5}"#);
        assert_eq!(other_root.merkle_root, Some(root));

        // Tampered bytes are refused.
        let tampered = entry.replace("\"verdict\"", "\"verdicT\"");
        let (rep_resp, _) = handle_line(&other, &Response::encode_replicate_request(&tampered));
        assert!(!rep_resp.ok);

        let (scrub_resp, _) = handle_line(&ctx, r#"{"op":"scrub","id":6}"#);
        let report = scrub_resp.scrub.expect("scrub report");
        assert_eq!(report.corrupt, 0);

        let (sync_resp, _) = handle_line(&ctx, r#"{"op":"sync","id":7}"#);
        assert_eq!(sync_resp.pulled, Some(0), "standalone servers pull nothing");

        ctx.scheduler.drain();
        other.scheduler.drain();
    }

    #[test]
    fn fpc_queries_hit_the_summary_cache_on_the_second_ask() {
        let _serial = crate::test_serial_guard();
        let ctx = test_ctx();
        let hits_before = crate::SERVE_FPC_HITS.get();
        let misses_before = crate::SERVE_FPC_MISSES.get();
        let (first, _) = handle_line(
            &ctx,
            r#"{"op":"fpc","id":1,"spec":"fpc:16:4:berserk","runs":200,"seed":7}"#,
        );
        assert!(first.ok);
        assert_eq!(first.source.as_deref(), Some("engine"));
        let stats = first.fpc.clone().expect("fpc reply carries statistics");
        assert_eq!(stats.runs, 200);
        assert_eq!(stats.spec, "fpc:16:4:berserk:10:500");
        // A different spelling of the same workload shares the content
        // address: the second ask is a store hit with identical stats.
        let (second, _) = handle_line(
            &ctx,
            r#"{"op":"fpc","id":2,"spec":"fpc:16:4:berserk:10:500","runs":200,"seed":7}"#,
        );
        assert_eq!(second.source.as_deref(), Some("store"));
        assert_eq!(second.fpc, Some(stats));
        assert_eq!(crate::SERVE_FPC_MISSES.get() - misses_before, 1);
        assert_eq!(crate::SERVE_FPC_HITS.get() - hits_before, 1);
        // A malformed fpc spec is a code-2 usage error on the wire.
        let (bad, _) = handle_line(&ctx, r#"{"op":"fpc","id":3,"spec":"fpc:1:0:cautious"}"#);
        assert!(!bad.ok);
        assert_eq!(bad.code, Some(CODE_USAGE));
    }

    #[test]
    fn backpressure_replies_carry_retry_hints() {
        let _serial = crate::test_serial_guard();
        let sched = Scheduler::new(
            Arc::new(VerdictStore::in_memory()),
            ServeConfig {
                queue_capacity: 1,
                ..ServeConfig::default()
            },
        );
        // No workers: the queue can only fill.
        let ctx = Arc::new(ServeCtx {
            scheduler: sched,
            cluster: None,
            fpc: FpcCache::in_memory(),
        });
        let (first, _) = handle_line(&ctx, r#"{"op":"stats","id":0}"#);
        assert!(first.ok);
        // Submit one query to fill the queue, then overflow it. The
        // first submit parks a Pending receiver we never read — drop it
        // by handling on a thread would hang, so submit directly.
        let q1 = SolveQuery {
            model: ModelSpec::parse("t-res:3:1", false).unwrap(),
            task: TaskSpec::set_consensus(3, 1).unwrap(),
            iters: 1,
            deadline_ms: None,
        };
        assert!(matches!(ctx.scheduler.submit(q1), Submitted::Pending(_)));
        let (resp, _) = handle_line(
            &ctx,
            r#"{"op":"solve","id":9,"model":"t-res:3:1","k":1,"iters":2}"#,
        );
        assert!(!resp.ok);
        assert_eq!(resp.code, Some(CODE_BACKPRESSURE));
        assert_eq!(resp.retry_after_ms, Some(20), "depth 1 → 20ms hint");
        ctx.scheduler.drain();
    }
}
