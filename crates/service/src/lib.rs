//! `act-service` — the serving layer of the FACT reproduction: a
//! batched, deduplicating solvability query service over a persistent,
//! content-addressed verdict store.
//!
//! The pipeline's decision problems — *"is `k`-set consensus solvable
//! under fair adversary `A` at level `ℓ`?"* (FACT, Theorems 15/16) —
//! are expensive deterministic computations that are perfectly cacheable
//! by content: the verdict is a pure function of
//! `(model, task, level, engine schema version)`. This crate turns that
//! cost structure into a serving stack:
//!
//! * [`store`] — a **content-addressed store**: verdicts and witnesses
//!   keyed by a canonical hash of the query, two-tier (LRU in memory
//!   over atomically-written, checksummed JSON files on disk), with
//!   corruption-tolerant loading — a truncated or bad-checksum entry is
//!   a *miss* counted by [`SERVE_STORE_CORRUPT`], never a panic or a
//!   wrong verdict;
//! * [`scheduler`] — a **batching + single-flight scheduler**: identical
//!   in-flight queries coalesce to one engine run, a worker pool shares
//!   warmed [`DomainCache`](fact::DomainCache) towers (and the affine
//!   task `R_A` itself) per model, and workers pick jobs cache-aware
//!   (same model/task adjacency). Each job runs under the deadline /
//!   degraded-engine machinery, and a `timed-out` / `exhausted` verdict
//!   is reported to the requester but **never persisted** as
//!   authoritative;
//! * [`server`] — the **operational surface**: newline-delimited JSON
//!   over TCP (or stdio for tests and pipelines), `stats` and
//!   `shutdown` request types, bounded queue with explicit backpressure
//!   replies, and graceful drain.
//!
//! The `fact-cli serve` subcommand is the front end; `fact-cli solve
//! --store <dir>` shares the same on-disk store, so one-shot CLI runs
//! and the server warm each other.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod cluster;
pub mod fpccache;
pub mod merkle;
pub mod protocol;
pub mod scheduler;
pub mod server;
pub mod store;

use act_obs::{Counter, Gauge};
use act_tasks::SearchConfig;
use fact::{set_consensus_verdict_with_config, DomainCache, Solvability};

pub use chaos::{ServeFaultEvent, ServeFaultPlan, KILL_EXIT_CODE};
pub use client::{ClientError, ClusterClient, RetryPolicy};
pub use cluster::{ClusterConfig, PeerRing, REPLICATION_FACTOR};
pub use fpccache::{
    summary_key, FpcCache, FPC_DEFAULT_RUNS, FPC_DEFAULT_SEED, FPC_MAX_RUNS, FPC_SUMMARY_SCHEMA,
};
pub use merkle::{InclusionProof, MerkleIndex, ScrubReport};
pub use protocol::{Request, RequestBody, Response, StatsBody, PROTOCOL_VERSION};
pub use scheduler::{Scheduler, ServeConfig, Served, SolveQuery, Submitted};
pub use server::{serve, spawn_server, ServeOptions, ServerHandle};
pub use store::{
    content_hash128, fnv1a64, StoreKey, StoredVerdict, TowerKey, TowerStore, VerdictStore,
    STORE_FORMAT_VERSION, TOWER_FORMAT_VERSION,
};

/// Queries answered from the store (memory or disk tier).
pub static SERVE_HIT: Counter = Counter::new("serve.hit");
/// Queries that had to run the engine (or join an in-flight run).
pub static SERVE_MISS: Counter = Counter::new("serve.miss");
/// Queries coalesced onto an identical in-flight computation.
pub static SERVE_COALESCED: Counter = Counter::new("serve.coalesced");
/// Store entries that failed to load (truncated, bad checksum, bad
/// JSON) and were degraded to misses.
pub static SERVE_STORE_CORRUPT: Counter = Counter::new("serve.store.corrupt");
/// Engine runs actually executed by scheduler workers (the single-flight
/// test asserts this moves by exactly one for N identical queries).
pub static SERVE_ENGINE_RUNS: Counter = Counter::new("serve.engine.runs");
/// Queries rejected with a backpressure reply (bounded queue full).
pub static SERVE_REJECTED: Counter = Counter::new("serve.rejected");
/// Domain-tower levels served from the tower store (each one is a
/// subdivision round — an `apply_to` — the engine did not have to run).
pub static SERVE_TOWER_HIT: Counter = Counter::new("serve.tower.hit");
/// Tower-store lookups that found no entry and fell back to building the
/// level in-process.
pub static SERVE_TOWER_MISS: Counter = Counter::new("serve.tower.miss");
/// Tower-store entries that failed to load (truncated, bad checksum, bad
/// payload) and were degraded to counted misses.
pub static SERVE_TOWER_CORRUPT: Counter = Counter::new("serve.tower.corrupt");
/// Instantaneous scheduler queue depth (jobs admitted, not yet picked
/// up by a worker).
pub static SERVE_QUEUE_DEPTH: Gauge = Gauge::new("serve.queue_depth");
/// Scrub passes completed over the verdict store.
pub static SERVE_SCRUB_RUNS: Counter = Counter::new("serve.scrub.runs");
/// Entries a scrub pass found corrupt (checksum, parse, leaf, or key
/// mismatch against the Merkle index).
pub static SERVE_SCRUB_CORRUPT: Counter = Counter::new("serve.scrub.corrupt");
/// Corrupt entries a scrub pass rewrote from a good copy (memory tier
/// or a replicating peer).
pub static SERVE_SCRUB_REPAIRED: Counter = Counter::new("serve.scrub.repaired");
/// Corrupt entries with no good copy anywhere: moved to `quarantine/`
/// for recompute (the entry becomes a clean miss).
pub static SERVE_SCRUB_QUARANTINED: Counter = Counter::new("serve.scrub.quarantined");
/// Inclusion proofs attached to query replies (`"proof": true` solves).
pub static SERVE_MERKLE_PROOFS: Counter = Counter::new("serve.merkle.proofs");
/// Anti-entropy rounds that found diverged Merkle roots (and therefore
/// exchanged entry lists).
pub static SERVE_MERKLE_MISMATCH: Counter = Counter::new("serve.merkle.mismatch");
/// Requests forwarded to the key's owner peer (this server was not an
/// owner under the consistent-hash ring).
pub static SERVE_PEER_FORWARDS: Counter = Counter::new("serve.peer.forwards");
/// Forwards that failed over to a replica because an owner was down.
pub static SERVE_PEER_FAILOVERS: Counter = Counter::new("serve.peer.failovers");
/// Fresh verdicts write-through-replicated to owner peers.
pub static SERVE_PEER_REPLICATIONS: Counter = Counter::new("serve.peer.replications");
/// Entries pulled from peers by anti-entropy sync (or a scrub repair
/// that fetched its good copy remotely).
pub static SERVE_PEER_SYNC_PULLS: Counter = Counter::new("serve.peer.sync_pulls");
/// Peer RPCs that failed outright (connect, io, or malformed reply).
pub static SERVE_PEER_UNREACHABLE: Counter = Counter::new("serve.peer.unreachable");
/// Client-side retries (connect failures, timeouts, backpressure waits,
/// replica fallbacks) performed by [`ClusterClient`].
pub static SERVE_CLIENT_RETRIES: Counter = Counter::new("serve.client.retries");
/// Serve-path faults actually injected by an installed
/// [`ServeFaultPlan`].
pub static SERVE_CHAOS_INJECTED: Counter = Counter::new("serve.chaos.injected");
/// `fpc:` queries answered from a cached summary.
pub static SERVE_FPC_HITS: Counter = Counter::new("serve.fpc.hits");
/// `fpc:` queries that had to simulate the batch.
pub static SERVE_FPC_MISSES: Counter = Counter::new("serve.fpc.misses");
/// Cached FPC summaries that failed validate-on-read and were degraded
/// to misses.
pub static SERVE_FPC_CORRUPT: Counter = Counter::new("serve.fpc.corrupt");

/// Serializes tests that assert deltas on the process-global serving
/// counters (the test harness runs modules in parallel by default).
#[cfg(test)]
pub(crate) fn test_serial_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The CLI/server deepening loop in one place, so the two front ends
/// produce byte-identical verdicts for the same query: try `ℓ = 1`,
/// deepen while the verdict is a clean `NoMapUpTo`, and stop at the
/// first `Solvable` / `Exhausted` / `TimedOut` (or at `max_iters`).
///
/// The caller owns the [`DomainCache`], so sweeps over `ℓ` (and repeated
/// jobs on the same model) extend the `R_A^ℓ` tower incrementally
/// instead of resubdividing from scratch.
pub fn deepening_verdict(
    cache: &mut DomainCache,
    task: &act_tasks::SetConsensus,
    affine: &act_affine::AffineTask,
    max_iters: usize,
    config: &SearchConfig,
) -> Solvability {
    let mut verdict = set_consensus_verdict_with_config(cache, task, affine, 1, config);
    for iters in 2..=max_iters {
        if !matches!(verdict, Solvability::NoMapUpTo { .. }) {
            break;
        }
        verdict = set_consensus_verdict_with_config(cache, task, affine, iters, config);
    }
    verdict
}
