//! A zoo of named adversaries used throughout the paper's figures and the
//! reproduction's experiments.

use act_topology::ColorSet;

use crate::adversary::Adversary;
use crate::agreement::AgreementFunction;

/// The 3-process adversary of Figures 5b, 6b and 7b: `{p2}`, `{p1, p3}`
/// plus all supersets. Superset-closed (hence fair), not symmetric,
/// agreement power 2.
pub fn figure_5b_adversary() -> Adversary {
    Adversary::superset_closure(
        3,
        [ColorSet::from_indices([1]), ColorSet::from_indices([0, 2])],
    )
}

/// The α-model of Figures 5a, 6a and 7a: `α(P) = min(|P|, 1)`,
/// i.e. 1-obstruction-freedom over 3 processes.
pub fn figure_5a_alpha() -> AgreementFunction {
    AgreementFunction::k_concurrency(3, 1)
}

/// A 3-process adversary that is **not** fair:
/// `{{p1}, {p2}, {p1,p2,p3}}`. Its agreement power is 2 but the coalition
/// `{p1, p3}` can only reach power 1, violating Definition 2.
pub fn unfair_example() -> Adversary {
    Adversary::from_live_sets(
        3,
        [
            ColorSet::from_indices([0]),
            ColorSet::from_indices([1]),
            ColorSet::from_indices([0, 1, 2]),
        ],
    )
}

/// Every adversary over `n` processes, enumerated (there are
/// `2^(2^n - 1)` of them — only call this for `n ≤ 3`).
///
/// # Panics
///
/// Panics if `n > 3`.
pub fn all_adversaries(n: usize) -> Vec<Adversary> {
    assert!(
        n <= 3,
        "adversary enumeration is doubly exponential; n ≤ 3 only"
    );
    let all_sets: Vec<ColorSet> = ColorSet::full(n).non_empty_subsets().collect();
    (0u32..(1 << all_sets.len()))
        .map(|mask| {
            Adversary::from_live_sets(
                n,
                all_sets
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, &s)| s),
            )
        })
        .collect()
}

/// Every *fair* adversary over `n` processes (`n ≤ 3`).
pub fn all_fair_adversaries(n: usize) -> Vec<Adversary> {
    all_adversaries(n)
        .into_iter()
        .filter(Adversary::is_fair)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_adversaries_have_documented_properties() {
        let fig5b = figure_5b_adversary();
        assert!(fig5b.is_superset_closed());
        assert!(fig5b.is_fair());
        assert!(!fig5b.is_symmetric());
        assert_eq!(fig5b.setcon(), 2);

        let alpha = figure_5a_alpha();
        assert_eq!(alpha.alpha(ColorSet::full(3)), 1);
        alpha.validate().unwrap();

        assert!(!unfair_example().is_fair());
    }

    #[test]
    fn adversary_census_over_3_processes() {
        // Figure 2, checked exhaustively for n = 3: class inclusions.
        let all = all_adversaries(3);
        assert_eq!(all.len(), 128);
        let mut fair = 0;
        let mut symmetric = 0;
        let mut superset_closed = 0;
        for a in &all {
            let is_fair = a.is_fair();
            if a.is_symmetric() {
                symmetric += 1;
                assert!(is_fair, "symmetric ⊆ fair violated by {a}");
            }
            if a.is_superset_closed() {
                superset_closed += 1;
                assert!(is_fair, "superset-closed ⊆ fair violated by {a}");
            }
            if is_fair {
                fair += 1;
            }
        }
        assert!(
            fair > symmetric.max(superset_closed),
            "fair class is strictly larger"
        );
        // Symmetric adversaries over 3 processes: one per subset of sizes
        // {1,2,3}: 8.
        assert_eq!(symmetric, 8);
        assert!(fair < all.len(), "unfair adversaries exist");
    }

    #[test]
    fn all_fair_census_is_consistent() {
        let fair = all_fair_adversaries(3);
        assert!(fair.iter().all(Adversary::is_fair));
        assert!(!fair.is_empty());
    }
}
