//! Adversaries, set-consensus power and agreement functions — Section 3 of
//! *An Asynchronous Computability Theorem for Fair Adversaries*.
//!
//! * [`Adversary`] — a set of live sets, with the constructors of the paper
//!   (wait-free, `t`-resilience, `k`-obstruction-freedom, superset-closed
//!   and symmetric adversaries);
//! * [`Adversary::setcon`] / [`SetconSolver`] — the set-consensus power of
//!   Definition 1, with the minimal hitting-set characterization
//!   ([`Adversary::csize`]) for superset-closed adversaries;
//! * [`AgreementFunction`] — `α(P) = setcon(A|P)`, tabulated, validated
//!   (monotone, bounded growth) and usable to define synthetic α-models;
//! * [`Adversary::is_fair`] — Definition 2, checked exhaustively;
//! * [`zoo`] — the named adversaries of the paper's figures plus full
//!   enumerations of (fair) adversaries over small systems.
//!
//! # Quickstart
//!
//! ```
//! use act_adversary::{Adversary, AgreementFunction};
//! use act_topology::ColorSet;
//!
//! let a = Adversary::t_resilient(3, 1);
//! assert!(a.is_fair());
//! let alpha = AgreementFunction::of_adversary(&a);
//! assert_eq!(alpha.alpha(ColorSet::full(3)), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversary;
mod agreement;
mod fairness;
mod setcon;
pub mod zoo;

pub use adversary::Adversary;
pub use agreement::{AgreementFunction, AgreementFunctionError};
pub use fairness::UnfairnessWitness;
pub use setcon::{csize_of_sets, SetconSolver};
