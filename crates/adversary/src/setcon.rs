//! The set-consensus power `setcon` (Definition 1) and the minimal
//! hitting-set size `csize`.

use std::collections::HashMap;

use act_topology::ColorSet;

use crate::adversary::Adversary;

/// Memoizing evaluator for the `setcon` recursion of Definition 1 over the
/// restrictions of a fixed adversary.
///
/// `setcon(A) = 0` if `A = ∅`, otherwise
/// `max_{S ∈ A} min_{a ∈ S} (setcon(A|_{S \ {a}}) + 1)`.
///
/// The evaluator memoizes `setcon(A|_{P,Q})` on the pair `(P, Q)`: the
/// plain restriction is the case `Q = Π`.
///
/// # Examples
///
/// ```
/// use act_adversary::{Adversary, SetconSolver};
/// use act_topology::ColorSet;
///
/// let a = Adversary::t_resilient(4, 2);
/// let mut solver = SetconSolver::new(&a);
/// assert_eq!(solver.setcon(ColorSet::full(4)), 3);
/// ```
#[derive(Debug)]
pub struct SetconSolver<'a> {
    adversary: &'a Adversary,
    memo: HashMap<(u64, u64), usize>,
}

impl<'a> SetconSolver<'a> {
    /// Creates a solver for the given adversary.
    pub fn new(adversary: &'a Adversary) -> Self {
        SetconSolver {
            adversary,
            memo: HashMap::new(),
        }
    }

    /// `setcon(A|P)`: the agreement power of the adversary restricted to
    /// live sets included in `P`.
    pub fn setcon(&mut self, p: ColorSet) -> usize {
        let q = ColorSet::full(self.adversary.num_processes());
        self.setcon_touching(p, q)
    }

    /// `setcon(A|P,Q)`: the agreement power of the live sets included in
    /// `P` that intersect `Q` (Section 3; used by the fairness check).
    pub fn setcon_touching(&mut self, p: ColorSet, q: ColorSet) -> usize {
        if let Some(&v) = self.memo.get(&(p.bits(), q.bits())) {
            return v;
        }
        // Collect the live sets of A|P,Q first to avoid borrowing issues.
        let candidates: Vec<ColorSet> = self
            .adversary
            .live_sets()
            .filter(|s| s.is_subset_of(p) && s.intersects(q))
            .collect();
        let mut best = 0usize;
        for s in candidates {
            let mut worst = usize::MAX;
            for a in s.iter() {
                let sub = self.setcon_touching(s.without(a), q) + 1;
                worst = worst.min(sub);
                if worst <= best {
                    break; // cannot improve `best` through this S
                }
            }
            best = best.max(worst);
        }
        self.memo.insert((p.bits(), q.bits()), best);
        best
    }
}

impl Adversary {
    /// The agreement power `setcon(A)` of this adversary (Definition 1):
    /// the smallest `k` such that `k`-set consensus is solvable in the
    /// `A`-model.
    pub fn setcon(&self) -> usize {
        SetconSolver::new(self).setcon(ColorSet::full(self.num_processes()))
    }

    /// The minimal hitting-set size `csize(A)`: the size of the smallest
    /// process set intersecting every live set. Returns `0` for the empty
    /// adversary (nothing to hit).
    ///
    /// For a superset-closed adversary, `csize(A) = setcon(A)`
    /// (Gafni–Kuznetsov).
    pub fn csize(&self) -> usize {
        csize_of_sets(&self.live_sets().collect::<Vec<_>>())
    }
}

/// The minimal hitting-set size of an arbitrary family of process sets:
/// the smallest number of processes intersecting every set of the family.
/// Returns 0 for the empty family; `usize::MAX` is never returned (a family
/// containing the empty set cannot be hit, but live sets are non-empty).
///
/// Exact branch-and-bound: pick an unhit set, branch on its members.
pub fn csize_of_sets(sets: &[ColorSet]) -> usize {
    fn search(sets: &[ColorSet], chosen: ColorSet, best: &mut usize) {
        if chosen.len() >= *best {
            return;
        }
        // Find the first set not hit by `chosen`.
        match sets.iter().find(|s| !s.intersects(chosen)) {
            None => *best = chosen.len(),
            Some(&unhit) => {
                for p in unhit.iter() {
                    search(sets, chosen.with(p), best);
                }
            }
        }
    }
    let mut best = sets.len().min(64) + 1;
    // Upper bound: one element per set (capped); start from that.
    best = best.min(64);
    search(sets, ColorSet::EMPTY, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setcon_of_empty_adversary_is_zero() {
        let a = Adversary::from_live_sets(3, []);
        assert_eq!(a.setcon(), 0);
    }

    #[test]
    fn setcon_of_wait_free_is_n() {
        // The wait-free model solves n-set consensus and no better.
        for n in 1..=5 {
            assert_eq!(Adversary::wait_free(n).setcon(), n, "n = {n}");
        }
    }

    #[test]
    fn setcon_of_t_resilient_is_t_plus_one() {
        for n in 2..=5 {
            for t in 0..n {
                assert_eq!(
                    Adversary::t_resilient(n, t).setcon(),
                    t + 1,
                    "n = {n}, t = {t}"
                );
            }
        }
    }

    #[test]
    fn setcon_of_k_obstruction_free_is_k() {
        for n in 2..=5 {
            for k in 1..=n {
                assert_eq!(
                    Adversary::k_obstruction_free(n, k).setcon(),
                    k,
                    "n = {n}, k = {k}"
                );
            }
        }
    }

    #[test]
    fn symmetric_formula_matches_recursion() {
        // For symmetric adversaries, setcon = number of distinct live-set
        // sizes (Section 3).
        let cases: Vec<Vec<usize>> = vec![
            vec![1],
            vec![2],
            vec![1, 3],
            vec![2, 3],
            vec![1, 2, 3],
            vec![3],
        ];
        for sizes in cases {
            let a = Adversary::symmetric(3, sizes.iter().copied());
            assert_eq!(a.setcon(), sizes.len(), "sizes = {sizes:?}");
        }
        let a = Adversary::symmetric(5, [2, 4]);
        assert_eq!(a.setcon(), 2);
    }

    #[test]
    fn csize_matches_setcon_for_superset_closed() {
        let zoo = [
            Adversary::t_resilient(4, 2),
            Adversary::t_resilient(5, 1),
            Adversary::superset_closure(
                3,
                [ColorSet::from_indices([1]), ColorSet::from_indices([0, 2])],
            ),
            Adversary::superset_closure(
                4,
                [
                    ColorSet::from_indices([0, 1]),
                    ColorSet::from_indices([2, 3]),
                ],
            ),
            Adversary::superset_closure(4, [ColorSet::from_indices([0])]),
        ];
        for a in &zoo {
            assert!(a.is_superset_closed());
            assert_eq!(a.setcon(), a.csize(), "adversary {a}");
        }
    }

    #[test]
    fn csize_examples() {
        // Hitting {p1},{p2} needs both.
        assert_eq!(
            csize_of_sets(&[ColorSet::from_indices([0]), ColorSet::from_indices([1])]),
            2
        );
        // Hitting {p1,p2},{p2,p3} needs only p2.
        assert_eq!(
            csize_of_sets(&[
                ColorSet::from_indices([0, 1]),
                ColorSet::from_indices([1, 2])
            ]),
            1
        );
        assert_eq!(csize_of_sets(&[]), 0);
    }

    #[test]
    fn figure_5b_adversary_power() {
        // {p2}, {p1,p3} + supersets: hitting set must hit {p2} and {p1,p3}:
        // csize = 2, so setcon = 2.
        let a = Adversary::superset_closure(
            3,
            [ColorSet::from_indices([1]), ColorSet::from_indices([0, 2])],
        );
        assert_eq!(a.setcon(), 2);
    }

    #[test]
    fn setcon_touching_restricts_properly() {
        let a = Adversary::wait_free(3);
        let mut solver = SetconSolver::new(&a);
        let p = ColorSet::full(3);
        // Only live sets touching {p1}: {p1}, {p1,p2}, {p1,p3}, {p1,p2,p3}.
        // This family still lets p1 run solo, p1+one, etc.: power 1?
        // S = {p1,p2,p3}: removing p1 leaves nothing touching {p1}: 1.
        // S = {p1}: 1. So setcon = 1? No: S = {p1,p2}: remove p1 -> 0+1,
        // remove p2 -> setcon({p1} family) = 1 + 1 = 2; min = 1.
        assert_eq!(solver.setcon_touching(p, ColorSet::from_indices([0])), 1);
        // Q = Π is the plain restriction.
        assert_eq!(solver.setcon_touching(p, p), 3);
    }

    #[test]
    fn setcon_monotone_in_restriction() {
        let a = Adversary::t_resilient(4, 2);
        let mut solver = SetconSolver::new(&a);
        let full = ColorSet::full(4);
        for p in full.subsets() {
            for p2 in full.subsets() {
                if p.is_subset_of(p2) {
                    assert!(solver.setcon(p) <= solver.setcon(p2));
                }
            }
        }
    }
}
