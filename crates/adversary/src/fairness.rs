//! Fairness of adversaries (Definition 2).
//!
//! An adversary `A` is *fair* when a subset `Q` of the participating
//! processes `P` cannot achieve better set consensus than `P` itself:
//! `setcon(A|P,Q) = min(|Q|, setcon(A|P))` for all `Q ⊆ P ⊆ Π`.
//! Superset-closed and symmetric adversaries are fair; not all adversaries
//! are.

use act_topology::ColorSet;

use crate::adversary::Adversary;
use crate::setcon::SetconSolver;

/// A witness that an adversary is unfair: a pair `(P, Q)` violating
/// Definition 2, with both sides of the equation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnfairnessWitness {
    /// The participating set.
    pub p: ColorSet,
    /// The sub-participation.
    pub q: ColorSet,
    /// `setcon(A|P,Q)`.
    pub restricted_power: usize,
    /// `min(|Q|, setcon(A|P))`.
    pub expected_power: usize,
}

impl Adversary {
    /// Checks fairness (Definition 2), returning `None` if fair and a
    /// violating `(P, Q)` pair otherwise.
    ///
    /// Exhaustive over the `3^n` nested pairs `Q ⊆ P`; intended for the
    /// small systems of the paper (`n ≤ 10` is instantaneous).
    pub fn fairness_witness(&self) -> Option<UnfairnessWitness> {
        let full = ColorSet::full(self.num_processes());
        let mut solver = SetconSolver::new(self);
        for p in full.subsets() {
            let power = solver.setcon(p);
            for q in p.subsets() {
                let restricted = solver.setcon_touching(p, q);
                let expected = q.len().min(power);
                if restricted != expected {
                    return Some(UnfairnessWitness {
                        p,
                        q,
                        restricted_power: restricted,
                        expected_power: expected,
                    });
                }
            }
        }
        None
    }

    /// Whether the adversary is fair (Definition 2).
    pub fn is_fair(&self) -> bool {
        self.fairness_witness().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superset_closed_adversaries_are_fair() {
        let zoo = [
            Adversary::t_resilient(3, 1),
            Adversary::t_resilient(4, 2),
            Adversary::superset_closure(
                3,
                [ColorSet::from_indices([1]), ColorSet::from_indices([0, 2])],
            ),
            Adversary::superset_closure(
                4,
                [
                    ColorSet::from_indices([0, 1]),
                    ColorSet::from_indices([1, 2]),
                ],
            ),
        ];
        for a in &zoo {
            assert!(a.is_fair(), "superset-closed adversary {a} must be fair");
        }
    }

    #[test]
    fn symmetric_adversaries_are_fair() {
        let zoo = [
            Adversary::k_obstruction_free(3, 1),
            Adversary::k_obstruction_free(4, 2),
            Adversary::symmetric(4, [1, 3]),
            Adversary::symmetric(3, [2]),
            Adversary::symmetric(4, [2, 4]),
        ];
        for a in &zoo {
            assert!(a.is_fair(), "symmetric adversary {a} must be fair");
        }
    }

    #[test]
    fn unfair_adversary_detected() {
        // A = {{p1}, {p2}, {p1,p2,p3}}: setcon(A) = 2 but the coalition
        // Q = {p1,p3} only reaches power 1 (see DESIGN.md, Figure-2
        // experiment).
        let a = Adversary::from_live_sets(
            3,
            [
                ColorSet::from_indices([0]),
                ColorSet::from_indices([1]),
                ColorSet::from_indices([0, 1, 2]),
            ],
        );
        assert_eq!(a.setcon(), 2);
        let w = a.fairness_witness().expect("adversary is unfair");
        assert_ne!(w.restricted_power, w.expected_power);
        assert!(!a.is_fair());
    }

    #[test]
    fn fair_but_neither_symmetric_nor_superset_closed_exists() {
        // Figure 2 shows fair adversaries strictly containing the union of
        // the symmetric and superset-closed classes; exhibit one.
        let mut found = None;
        let full = ColorSet::full(3);
        let all_sets: Vec<ColorSet> = full.non_empty_subsets().collect();
        // Enumerate adversaries over 3 processes (2^7 families).
        for mask in 0u32..(1 << all_sets.len()) {
            let sets: Vec<ColorSet> = all_sets
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &s)| s)
                .collect();
            let a = Adversary::from_live_sets(3, sets);
            if a.is_fair() && !a.is_symmetric() && !a.is_superset_closed() && !a.is_empty() {
                found = Some(a);
                break;
            }
        }
        let a = found.expect("a fair, non-symmetric, non-superset-closed adversary exists");
        assert!(a.is_fair());
        assert!(!a.is_symmetric());
        assert!(!a.is_superset_closed());
    }

    #[test]
    fn empty_adversary_is_fair() {
        let a = Adversary::from_live_sets(3, []);
        assert!(a.is_fair());
    }
}
