//! Agreement functions (Kuznetsov–Rieutord) and the α-model.
//!
//! The agreement function of a model maps each potential participating set
//! `P` to the best level of set consensus solvable when participation is
//! limited to `P`. For an adversary `A`, `α(P) = setcon(A|P)`.

use std::fmt;

use act_topology::ColorSet;
use serde::{Deserialize, Serialize};

use crate::adversary::Adversary;
use crate::setcon::SetconSolver;

/// An agreement function `α : 2^Π → {0, …, n}`, tabulated over the subset
/// lattice.
///
/// # Examples
///
/// ```
/// use act_adversary::{Adversary, AgreementFunction};
/// use act_topology::ColorSet;
///
/// let a = Adversary::t_resilient(3, 1);
/// let alpha = AgreementFunction::of_adversary(&a);
/// assert_eq!(alpha.alpha(ColorSet::full(3)), 2);
/// assert_eq!(alpha.alpha(ColorSet::from_indices([0])), 0); // solo runs not 1-resilient
/// alpha.validate().unwrap();
/// ```
///
/// Every agreement function obeys the lattice laws of Kuznetsov–Rieutord:
/// monotonicity under `⊆`, growth bounded by the added processes, and the
/// bounded-decrease property the liveness proof leans on:
///
/// ```
/// use act_adversary::{Adversary, AgreementFunction};
/// use act_topology::ColorSet;
///
/// let alpha = AgreementFunction::of_adversary(&Adversary::wait_free(3));
/// let full = ColorSet::full(3);
/// for p in full.subsets() {
///     for q in full.minus(p).iter() {
///         let bigger = p.with(q);
///         assert!(alpha.alpha(p) <= alpha.alpha(bigger)); // monotone under ⊆
///         assert!(alpha.alpha(bigger) <= alpha.alpha(p) + 1); // bounded growth
///     }
/// }
/// assert!(alpha.has_bounded_decrease()); // α(P \ Q) ≥ α(P) − |Q|
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgreementFunction {
    n: usize,
    table: Vec<u8>,
}

/// Error returned by [`AgreementFunction::validate`] when the table violates
/// one of the structural properties of agreement functions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AgreementFunctionError {
    /// `α(P) > α(P')` for some `P ⊆ P'`.
    NotMonotone {
        /// The smaller set.
        smaller: ColorSet,
        /// The larger set.
        larger: ColorSet,
    },
    /// `α(P') > α(P) + |P' \ P|` for some `P ⊆ P'`.
    UnboundedGrowth {
        /// The smaller set.
        smaller: ColorSet,
        /// The larger set.
        larger: ColorSet,
    },
    /// `α(P) > |P|` for some `P`.
    ExceedsCardinality {
        /// The offending set.
        set: ColorSet,
    },
}

impl fmt::Display for AgreementFunctionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgreementFunctionError::NotMonotone { smaller, larger } => {
                write!(f, "agreement function decreases from {smaller} to {larger}")
            }
            AgreementFunctionError::UnboundedGrowth { smaller, larger } => {
                write!(
                    f,
                    "agreement function grows faster than participation from {smaller} to {larger}"
                )
            }
            AgreementFunctionError::ExceedsCardinality { set } => {
                write!(f, "agreement power exceeds the cardinality of {set}")
            }
        }
    }
}

impl std::error::Error for AgreementFunctionError {}

impl AgreementFunction {
    /// The agreement function of an adversary: `α(P) = setcon(A|P)`.
    pub fn of_adversary(adversary: &Adversary) -> AgreementFunction {
        let n = adversary.num_processes();
        let mut solver = SetconSolver::new(adversary);
        let table = (0..1u64 << n)
            .map(|bits| solver.setcon(ColorSet::from_bits(bits)) as u8)
            .collect();
        AgreementFunction { n, table }
    }

    /// Builds an agreement function from an arbitrary map. Useful for
    /// synthetic α-models such as `α(P) = min(|P|, k)` (the `k`-active
    /// adversaries of Figures 5a–7a).
    ///
    /// # Panics
    ///
    /// Panics if the function returns a value exceeding `n`.
    pub fn from_fn<F: FnMut(ColorSet) -> usize>(n: usize, mut f: F) -> AgreementFunction {
        let table = (0..1u64 << n)
            .map(|bits| {
                let v = f(ColorSet::from_bits(bits));
                assert!(
                    v <= n,
                    "agreement power {v} exceeds the number of processes"
                );
                v as u8
            })
            .collect();
        AgreementFunction { n, table }
    }

    /// The `k`-concurrency / `k`-obstruction-freedom agreement function
    /// `α(P) = min(|P|, k)`.
    pub fn k_concurrency(n: usize, k: usize) -> AgreementFunction {
        AgreementFunction::from_fn(n, |p| p.len().min(k))
    }

    /// Builds an agreement function directly from its table over the
    /// subset lattice — `table[P.bits()] = α(P)` — validating the
    /// lattice laws up front so a stored or user-supplied table can
    /// never name an ill-formed α-model.
    ///
    /// # Errors
    ///
    /// Rejects tables of the wrong length (`2^n` entries are required),
    /// values exceeding `n`, and tables violating [`validate`]
    /// (monotonicity, bounded growth, `α(P) ≤ |P|`).
    ///
    /// # Examples
    ///
    /// ```
    /// use act_adversary::AgreementFunction;
    ///
    /// // 2-process wait-freedom: α(∅)=0, α({p1})=1, α({p2})=1, α(Π)=2.
    /// let alpha = AgreementFunction::from_table(2, vec![0, 1, 1, 2]).unwrap();
    /// assert_eq!(alpha, AgreementFunction::k_concurrency(2, 2));
    /// // A non-monotone table is refused.
    /// assert!(AgreementFunction::from_table(2, vec![0, 1, 1, 0]).is_err());
    /// ```
    ///
    /// [`validate`]: AgreementFunction::validate
    pub fn from_table(n: usize, table: Vec<u8>) -> Result<AgreementFunction, String> {
        if table.len() != 1usize << n {
            return Err(format!(
                "an agreement table over {n} processes needs {} entries, got {}",
                1usize << n,
                table.len()
            ));
        }
        if let Some(&v) = table.iter().find(|&&v| v as usize > n) {
            return Err(format!(
                "agreement power {v} exceeds the number of processes ({n})"
            ));
        }
        let alpha = AgreementFunction { n, table };
        alpha.validate().map_err(|e| e.to_string())?;
        Ok(alpha)
    }

    /// The table over the subset lattice: entry `i` is `α` of the
    /// participating set whose bitmask is `i` (so entry `0` is `α(∅)`
    /// and the last entry is `α(Π)`).
    pub fn table(&self) -> &[u8] {
        &self.table
    }

    /// The number of processes.
    pub fn num_processes(&self) -> usize {
        self.n
    }

    /// The agreement power `α(P)` of the participating set `P`.
    ///
    /// # Panics
    ///
    /// Panics if `P` mentions processes outside the system.
    pub fn alpha(&self, p: ColorSet) -> usize {
        assert!(
            p.is_subset_of(ColorSet::full(self.n)),
            "participating set outside the system"
        );
        self.table[p.bits() as usize] as usize
    }

    /// Validates monotonicity (`P ⊆ P' ⇒ α(P) ≤ α(P')`), bounded growth
    /// (`α(P') ≤ α(P) + |P' \ P|`) and `α(P) ≤ |P|`.
    ///
    /// # Errors
    ///
    /// Returns the first violated property.
    pub fn validate(&self) -> Result<(), AgreementFunctionError> {
        let full = ColorSet::full(self.n);
        for p in full.subsets() {
            if self.alpha(p) > p.len() {
                return Err(AgreementFunctionError::ExceedsCardinality { set: p });
            }
            // It suffices to check one-step extensions.
            for q in full.minus(p).iter() {
                let bigger = p.with(q);
                if self.alpha(p) > self.alpha(bigger) {
                    return Err(AgreementFunctionError::NotMonotone {
                        smaller: p,
                        larger: bigger,
                    });
                }
                if self.alpha(bigger) > self.alpha(p) + 1 {
                    return Err(AgreementFunctionError::UnboundedGrowth {
                        smaller: p,
                        larger: bigger,
                    });
                }
            }
        }
        Ok(())
    }

    /// Whether the *bounded decrease* property of fair adversaries holds:
    /// `α(P \ Q) ≥ α(P) − |Q|` for all `Q ⊆ P` (Section 5.3 of the paper).
    ///
    /// This follows from bounded growth, so it holds for every agreement
    /// function; it is exposed separately because the liveness proof leans
    /// on it.
    pub fn has_bounded_decrease(&self) -> bool {
        let full = ColorSet::full(self.n);
        full.subsets().all(|p| {
            p.subsets()
                .all(|q| self.alpha(p.minus(q)) + q.len() >= self.alpha(p))
        })
    }

    /// In the α-model, whether a run with participating set `p` and `f`
    /// failures is admissible: `α(P) ≥ 1` and `f ≤ α(P) − 1` (Definition 3).
    pub fn admits(&self, p: ColorSet, failures: usize) -> bool {
        let a = self.alpha(p);
        a >= 1 && failures < a
    }
}

impl fmt::Debug for AgreementFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AgreementFunction(n={}, α(Π)={})",
            self.n,
            self.table[self.table.len() - 1]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_resilient_alpha_values() {
        // 1-resilient, n = 3: α(P) = 0 for |P| < 2 (such participation can
        // never satisfy 1-resilience alone? Actually A|P empty iff |P| < n-t)
        let a = Adversary::t_resilient(3, 1);
        let alpha = AgreementFunction::of_adversary(&a);
        assert_eq!(alpha.alpha(ColorSet::EMPTY), 0);
        assert_eq!(alpha.alpha(ColorSet::from_indices([0])), 0);
        assert_eq!(alpha.alpha(ColorSet::from_indices([0, 1])), 1);
        assert_eq!(alpha.alpha(ColorSet::full(3)), 2);
        alpha.validate().unwrap();
        assert!(alpha.has_bounded_decrease());
    }

    #[test]
    fn k_obstruction_free_alpha_is_min() {
        let a = Adversary::k_obstruction_free(4, 2);
        let alpha = AgreementFunction::of_adversary(&a);
        for p in ColorSet::full(4).subsets() {
            assert_eq!(alpha.alpha(p), p.len().min(2));
        }
        assert_eq!(alpha, AgreementFunction::k_concurrency(4, 2));
    }

    #[test]
    fn wait_free_alpha_is_cardinality() {
        let alpha = AgreementFunction::of_adversary(&Adversary::wait_free(4));
        for p in ColorSet::full(4).subsets() {
            assert_eq!(alpha.alpha(p), p.len());
        }
        alpha.validate().unwrap();
    }

    #[test]
    fn from_fn_and_admits() {
        let alpha = AgreementFunction::k_concurrency(3, 1);
        assert!(alpha.admits(ColorSet::from_indices([0]), 0));
        assert!(!alpha.admits(ColorSet::from_indices([0]), 1));
        assert!(!alpha.admits(ColorSet::EMPTY, 0));
        alpha.validate().unwrap();
    }

    #[test]
    fn validate_catches_violations() {
        // Non-monotone: α({p1}) = 1, α({p1,p2}) = 0.
        let bad = AgreementFunction::from_fn(2, |p| usize::from(p.len() == 1));
        assert!(matches!(
            bad.validate(),
            Err(AgreementFunctionError::NotMonotone { .. })
        ));
        // Growth 2 in one step.
        let bad = AgreementFunction::from_fn(2, |p| if p.len() == 2 { 2 } else { 0 });
        assert!(matches!(
            bad.validate(),
            Err(AgreementFunctionError::UnboundedGrowth { .. })
        ));
        // α exceeding |P| is caught by from_fn's table check only if > n;
        // the subtler per-set bound is caught by validate (α(∅) = 1 here,
        // which is monotone and of bounded growth but exceeds |∅|).
        let bad = AgreementFunction::from_fn(2, |p| (p.len() + 1).min(2));
        assert!(matches!(
            bad.validate(),
            Err(AgreementFunctionError::ExceedsCardinality { .. })
        ));
    }

    #[test]
    fn from_table_round_trips_and_validates() {
        let alpha = AgreementFunction::of_adversary(&Adversary::t_resilient(3, 1));
        let rebuilt = AgreementFunction::from_table(3, alpha.table().to_vec()).unwrap();
        assert_eq!(rebuilt, alpha);

        // Wrong length, over-n values, and law violations are refused.
        assert!(AgreementFunction::from_table(3, vec![0, 1]).is_err());
        assert!(AgreementFunction::from_table(2, vec![0, 1, 1, 3]).is_err());
        assert!(AgreementFunction::from_table(2, vec![0, 1, 1, 0]).is_err());
        assert!(AgreementFunction::from_table(2, vec![0, 0, 0, 2]).is_err());
        assert!(AgreementFunction::from_table(2, vec![1, 1, 1, 1]).is_err());
    }

    #[test]
    fn figure_5b_agreement_function() {
        // {p2}, {p1,p3} + supersets.
        let a = Adversary::superset_closure(
            3,
            [ColorSet::from_indices([1]), ColorSet::from_indices([0, 2])],
        );
        let alpha = AgreementFunction::of_adversary(&a);
        assert_eq!(alpha.alpha(ColorSet::full(3)), 2);
        assert_eq!(alpha.alpha(ColorSet::from_indices([1])), 1);
        assert_eq!(alpha.alpha(ColorSet::from_indices([0, 2])), 1);
        assert_eq!(alpha.alpha(ColorSet::from_indices([0])), 0);
        assert_eq!(alpha.alpha(ColorSet::from_indices([2])), 0);
        assert_eq!(alpha.alpha(ColorSet::from_indices([0, 1])), 1);
        assert_eq!(alpha.alpha(ColorSet::from_indices([1, 2])), 1);
        alpha.validate().unwrap();
    }
}
