//! `act-obs` — zero-dependency run telemetry for the FACT reproduction.
//!
//! The solver and the runtime schedulers are the expensive, failure-prone
//! layers of the pipeline; this crate gives them a common, allocation-shy
//! observability substrate:
//!
//! * a process-global **JSON-lines event sink** ([`Sink`]) — stderr, a
//!   file, or an in-memory buffer for tests — installed explicitly
//!   ([`install`]) or from the `ACT_OBS_OUT` environment variable
//!   ([`init_from_env`]);
//! * **events** ([`event`]): one JSON object per line, built field by
//!   field with no intermediate allocations when telemetry is disabled;
//! * **span timers** ([`span`]): monotonic wall-clock timers that finish
//!   into an event carrying `elapsed_us`;
//! * **monotonic counters** ([`Counter`]): process-global atomics for
//!   cheap cross-call aggregation (total search nodes, liveness failures,
//!   …), snapshotted into events on demand;
//! * an **artifact directory** ([`artifacts_dir`]) where failing runs are
//!   captured as replayable JSON (see `act_runtime::TraceArtifact`).
//!
//! # Near-zero cost when disabled
//!
//! Every entry point first checks one relaxed atomic load
//! ([`enabled`]). With no sink installed, [`event`] returns an inert
//! builder whose methods are no-ops, [`span`] does not even read the
//! clock, and [`Counter::add`] is a single uncontended atomic add. The
//! instrumented hot paths (subdivision, map search, schedulers) therefore
//! produce bit-identical results — and indistinguishable timings — with
//! telemetry off, which the golden-count and serial≡parallel exactness
//! suites rely on.
//!
//! # Event schema
//!
//! Every line is a flat JSON object with at least:
//!
//! ```json
//! {"ev": "<event name>", "seq": <u64>}
//! ```
//!
//! `seq` is a process-global monotonic sequence number (events emitted
//! from worker threads interleave, but `seq` orders them totally).
//! Remaining fields are event-specific scalars: `u64`, `i64`, `f64`,
//! `bool`, or strings. Span events add `elapsed_us`. The schema is
//! documented per instrumentation site in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// A destination for telemetry lines. Implementations must tolerate
/// concurrent `write_line` calls from multiple threads.
pub trait Sink: Send + Sync {
    /// Writes one complete JSON line (no trailing newline included).
    fn write_line(&self, line: &str);
}

/// Sink writing one line per event to standard error.
pub struct StderrSink;

impl Sink for StderrSink {
    fn write_line(&self, line: &str) {
        eprintln!("{line}");
    }
}

/// Sink appending one line per event to a file.
pub struct FileSink {
    file: Mutex<std::fs::File>,
}

impl FileSink {
    /// Opens (creating or appending to) the file at `path`.
    pub fn open(path: &str) -> std::io::Result<FileSink> {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(FileSink {
            file: Mutex::new(file),
        })
    }
}

impl Sink for FileSink {
    fn write_line(&self, line: &str) {
        // Telemetry must never turn a caught worker panic into a second
        // failure: a poisoned lock still guards a valid File, so recover.
        let mut f = self.file.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(f, "{line}");
    }
}

/// In-memory sink for tests and for `fact-cli --report`: collects every
/// emitted line for later inspection.
#[derive(Default)]
pub struct MemorySink {
    lines: Mutex<Vec<String>>,
}

impl MemorySink {
    /// Creates an empty shared memory sink.
    pub fn shared() -> Arc<MemorySink> {
        Arc::new(MemorySink::default())
    }

    /// A snapshot of the lines collected so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Removes and returns every collected line.
    pub fn drain(&self) -> Vec<String> {
        std::mem::take(&mut *self.lines.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl Sink for MemorySink {
    fn write_line(&self, line: &str) {
        self.lines
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(line.to_string());
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SEQ: AtomicU64 = AtomicU64::new(0);

fn sink_slot() -> &'static RwLock<Option<Arc<dyn Sink>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<dyn Sink>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Whether a sink is installed. One relaxed atomic load — the gate every
/// instrumentation site checks before doing any telemetry work.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `sink` as the process-global event sink (replacing any
/// previous one) and enables telemetry.
pub fn install(sink: Arc<dyn Sink>) {
    *sink_slot().write().unwrap_or_else(|e| e.into_inner()) = Some(sink);
    ENABLED.store(true, Ordering::Release);
}

/// Disables telemetry and drops the installed sink, if any.
pub fn uninstall() {
    ENABLED.store(false, Ordering::Release);
    *sink_slot().write().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Installs a sink according to `ACT_OBS_OUT`: `stderr` (or `-`) for
/// [`StderrSink`], any other non-empty value as a [`FileSink`] path.
/// Returns whether a sink was installed.
pub fn init_from_env() -> bool {
    match std::env::var("ACT_OBS_OUT") {
        Ok(v) if v == "stderr" || v == "-" => {
            install(Arc::new(StderrSink));
            true
        }
        Ok(v) if !v.trim().is_empty() => match FileSink::open(v.trim()) {
            Ok(sink) => {
                install(Arc::new(sink));
                true
            }
            Err(e) => {
                eprintln!("act-obs: cannot open ACT_OBS_OUT={v:?}: {e}");
                false
            }
        },
        _ => false,
    }
}

/// The directory where failing runs are captured as replayable JSON
/// artifacts: `ACT_OBS_ARTIFACTS` if set, else `target/act-artifacts`
/// when telemetry is enabled, else `None` (capture disabled).
///
/// A set-but-blank `ACT_OBS_ARTIFACTS` is malformed; it warns once and
/// falls back to the default rather than disabling capture silently.
pub fn artifacts_dir() -> Option<PathBuf> {
    if let Ok(dir) = std::env::var("ACT_OBS_ARTIFACTS") {
        if !dir.trim().is_empty() {
            return Some(PathBuf::from(dir.trim()));
        }
        static WARN: std::sync::Once = std::sync::Once::new();
        WARN.call_once(|| {
            eprintln!("act-obs: ACT_OBS_ARTIFACTS is set but blank; using the default directory");
        });
    }
    enabled().then(|| PathBuf::from("target/act-artifacts"))
}

/// A fresh process-unique artifact id (monotonic within the process).
pub fn next_artifact_id() -> u64 {
    static ARTIFACT_ID: AtomicU64 = AtomicU64::new(0);
    ARTIFACT_ID.fetch_add(1, Ordering::Relaxed)
}

fn emit_line(line: &str) {
    if let Some(sink) = sink_slot()
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
    {
        sink.write_line(line);
    }
}

/// Appends a JSON string literal (with escaping) to `out`.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON-lines event under construction. Obtained from [`event`] or
/// [`Span::finish`]; inert (every method a no-op) when telemetry is
/// disabled at creation time.
#[must_use = "an Event does nothing until .emit() is called"]
pub struct Event {
    buf: Option<String>,
}

/// Starts an event named `name`. When no sink is installed the returned
/// builder is inert and allocation-free.
pub fn event(name: &str) -> Event {
    if !enabled() {
        return Event { buf: None };
    }
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let mut buf = String::with_capacity(96);
    buf.push_str("{\"ev\":");
    push_json_str(&mut buf, name);
    let _ = write!(buf, ",\"seq\":{seq}");
    Event { buf: Some(buf) }
}

impl Event {
    fn key(&mut self, k: &str) -> bool {
        if let Some(buf) = &mut self.buf {
            buf.push(',');
            push_json_str(buf, k);
            buf.push(':');
            true
        } else {
            false
        }
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Self {
        if self.key(k) {
            let _ = write!(self.buf.as_mut().expect("buf present"), "{v}");
        }
        self
    }

    /// Adds a signed integer field.
    pub fn i64(mut self, k: &str, v: i64) -> Self {
        if self.key(k) {
            let _ = write!(self.buf.as_mut().expect("buf present"), "{v}");
        }
        self
    }

    /// Adds a floating-point field (`null` for non-finite values).
    pub fn f64(mut self, k: &str, v: f64) -> Self {
        if self.key(k) {
            let buf = self.buf.as_mut().expect("buf present");
            if v.is_finite() {
                let s = v.to_string();
                buf.push_str(&s);
                // Keep floats distinguishable from integers on re-parse.
                if !s.contains(['.', 'e', 'E']) {
                    buf.push_str(".0");
                }
            } else {
                buf.push_str("null");
            }
        }
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> Self {
        if self.key(k) {
            self.buf
                .as_mut()
                .expect("buf present")
                .push_str(if v { "true" } else { "false" });
        }
        self
    }

    /// Adds a string field.
    pub fn str(mut self, k: &str, v: &str) -> Self {
        if self.key(k) {
            push_json_str(self.buf.as_mut().expect("buf present"), v);
        }
        self
    }

    /// Finishes the event and writes it to the sink (no-op when inert).
    pub fn emit(self) {
        if let Some(mut buf) = self.buf {
            buf.push('}');
            emit_line(&buf);
        }
    }
}

/// 64-bit FNV-1a over `bytes`, from the given offset basis.
///
/// This is the workspace's shared content-hashing primitive: the
/// verdict store (`act-service`) derives its content addresses from it,
/// and the campaign runner (`act-campaign`) signs normalized failure
/// traces with the same machinery, so the two layers' keys are computed
/// identically.
pub fn fnv1a64(basis: u64, bytes: &[u8]) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The canonical 128-bit content address: two independently seeded
/// FNV-1a hashes ([`fnv1a64`]) of the same bytes, concatenated.
pub fn content_hash128(bytes: &[u8]) -> u128 {
    let lo = fnv1a64(0xcbf29ce484222325, bytes);
    let hi = fnv1a64(0x6c62272e07bb0142, bytes);
    ((hi as u128) << 64) | lo as u128
}

/// A monotonic wall-clock span. Created by [`span`]; does not read the
/// clock when telemetry is disabled.
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

/// Starts a span named `name`.
pub fn span(name: &'static str) -> Span {
    Span {
        name,
        start: enabled().then(Instant::now),
    }
}

/// Starts a span that reads the clock even when telemetry is disabled,
/// for callers that need the duration itself (throughput computations
/// like campaign runs/sec), not just the telemetry event. `finish` is
/// still a no-op without a sink.
pub fn timer(name: &'static str) -> Span {
    Span {
        name,
        start: Some(Instant::now()),
    }
}

impl Span {
    /// Microseconds elapsed since the span started, if it is live.
    pub fn elapsed_us(&self) -> Option<u64> {
        self.start.map(|s| s.elapsed().as_micros() as u64)
    }

    /// Finishes the span into an event named after it, carrying
    /// `elapsed_us`. Add further fields, then call [`Event::emit`].
    pub fn finish(self) -> Event {
        match self.start {
            None => Event { buf: None },
            Some(start) => event(self.name).u64("elapsed_us", start.elapsed().as_micros() as u64),
        }
    }
}

/// A process-global monotonic counter, cheap enough to bump from hot
/// paths (one uncontended relaxed atomic add).
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// Creates a named counter (usable in `static` position).
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Emits a `counter` event snapshotting the current value.
    pub fn emit(&self) {
        event("counter")
            .str("name", self.name)
            .u64("value", self.get())
            .emit();
    }
}

/// A process-global instantaneous gauge (queue depth, in-flight jobs,
/// …): unlike a [`Counter`] it moves both ways. One relaxed atomic;
/// cheap enough to update from request hot paths, snapshotted into a
/// `gauge` event on demand.
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
}

impl Gauge {
    /// Creates a named gauge (usable in `static` position).
    pub const fn new(name: &'static str) -> Gauge {
        Gauge {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Increments the gauge.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements the gauge, saturating at zero (a racy extra decrement
    /// must not wrap to `u64::MAX`).
    #[inline]
    pub fn dec(&self) {
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Emits a `gauge` event snapshotting the current value.
    pub fn emit(&self) {
        event("gauge")
            .str("name", self.name)
            .u64("value", self.get())
            .emit();
    }
}

/// A process-global hit/miss tally for cache-style instrumentation
/// (memo tables, GAC residual supports, …): two uncontended relaxed
/// atomics, cheap enough for hot paths, snapshotted into a `rate_counter`
/// event on demand.
pub struct RateCounter {
    name: &'static str,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl RateCounter {
    /// Creates a named rate counter (usable in `static` position).
    pub const fn new(name: &'static str) -> RateCounter {
        RateCounter {
            name,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Records `n` hits.
    #[inline]
    pub fn hit(&self, n: u64) {
        self.hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` misses.
    #[inline]
    pub fn miss(&self, n: u64) {
        self.misses.fetch_add(n, Ordering::Relaxed);
    }

    /// Hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The hit rate in `[0, 1]` (0 when nothing was recorded).
    pub fn rate(&self) -> f64 {
        let h = self.hits();
        let m = self.misses();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Emits a `rate_counter` event snapshotting hits, misses, and rate.
    pub fn emit(&self) {
        event("rate_counter")
            .str("name", self.name)
            .u64("hits", self.hits())
            .u64("misses", self.misses())
            .f64("rate", self.rate())
            .emit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes sink-swapping tests (the sink is process-global).
    fn with_memory_sink<R>(f: impl FnOnce(&MemorySink) -> R) -> R {
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let sink = MemorySink::shared();
        install(sink.clone());
        let out = f(&sink);
        uninstall();
        out
    }

    #[test]
    fn disabled_events_are_inert() {
        // Not under the lock: uninstalled state is the default; emitting
        // must be a no-op rather than a panic.
        if enabled() {
            return; // another test holds the sink; nothing to check here
        }
        event("x").u64("n", 1).emit();
        assert!(span("y").elapsed_us().is_none());
        span("y").finish().u64("n", 2).emit();
    }

    #[test]
    fn events_are_json_lines_with_sequence_numbers() {
        let lines = with_memory_sink(|sink| {
            event("alpha").u64("n", 3).bool("ok", true).emit();
            event("beta").str("s", "a\"b\\c\nd").i64("z", -4).emit();
            sink.drain()
        });
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"ev\":\"alpha\",\"seq\":"));
        assert!(lines[0].ends_with(",\"n\":3,\"ok\":true}"));
        assert!(lines[1].contains("\"s\":\"a\\\"b\\\\c\\nd\""));
        assert!(lines[1].contains("\"z\":-4"));
    }

    #[test]
    fn spans_record_elapsed_time() {
        let lines = with_memory_sink(|sink| {
            let s = span("work");
            assert!(s.elapsed_us().is_some());
            s.finish().u64("items", 7).emit();
            sink.drain()
        });
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"ev\":\"work\""));
        assert!(lines[0].contains("\"elapsed_us\":"));
        assert!(lines[0].ends_with("\"items\":7}"));
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        static NODES: Counter = Counter::new("test.nodes");
        let before = NODES.get();
        NODES.add(5);
        NODES.add(2);
        assert_eq!(NODES.get(), before + 7);
        let lines = with_memory_sink(|sink| {
            NODES.emit();
            sink.drain()
        });
        assert!(lines[0].contains("\"name\":\"test.nodes\""));
    }

    #[test]
    fn gauges_move_both_ways_and_saturate_at_zero() {
        static DEPTH: Gauge = Gauge::new("test.depth");
        DEPTH.set(0);
        DEPTH.inc();
        DEPTH.inc();
        assert_eq!(DEPTH.get(), 2);
        DEPTH.dec();
        assert_eq!(DEPTH.get(), 1);
        DEPTH.dec();
        DEPTH.dec(); // extra decrement must not wrap
        assert_eq!(DEPTH.get(), 0);
        DEPTH.set(7);
        assert_eq!(DEPTH.get(), 7);
        let lines = with_memory_sink(|sink| {
            DEPTH.emit();
            sink.drain()
        });
        assert!(lines[0].contains("\"ev\":\"gauge\""));
        assert!(lines[0].contains("\"name\":\"test.depth\""));
        assert!(lines[0].contains("\"value\":7"));
    }

    #[test]
    fn rate_counters_track_hits_and_misses() {
        static RES: RateCounter = RateCounter::new("test.residue");
        let (h0, m0) = (RES.hits(), RES.misses());
        RES.hit(3);
        RES.miss(1);
        assert_eq!(RES.hits(), h0 + 3);
        assert_eq!(RES.misses(), m0 + 1);
        assert!(RES.rate() > 0.0 && RES.rate() <= 1.0);
        let lines = with_memory_sink(|sink| {
            RES.emit();
            sink.drain()
        });
        assert!(lines[0].contains("\"ev\":\"rate_counter\""));
        assert!(lines[0].contains("\"name\":\"test.residue\""));
        assert!(lines[0].contains("\"rate\":"));

        static EMPTY: RateCounter = RateCounter::new("test.empty");
        assert_eq!(EMPTY.rate(), 0.0, "no observations → rate 0");
    }

    #[test]
    fn artifacts_dir_follows_enablement() {
        // With no env override and telemetry disabled there is no
        // artifact capture.
        if std::env::var("ACT_OBS_ARTIFACTS").is_ok() {
            return;
        }
        with_memory_sink(|_| {
            assert_eq!(artifacts_dir(), Some(PathBuf::from("target/act-artifacts")));
        });
    }

    #[test]
    fn unopenable_obs_out_warns_and_stays_disabled() {
        // An ACT_OBS_OUT value that cannot be opened as a file (here: an
        // existing directory) must warn and leave telemetry off, not
        // panic or half-install a sink.
        with_memory_sink(|_| {
            uninstall();
            let dir = std::env::temp_dir();
            std::env::set_var("ACT_OBS_OUT", &dir);
            let installed = init_from_env();
            std::env::remove_var("ACT_OBS_OUT");
            assert!(!installed);
            assert!(!enabled());
        });
    }

    #[test]
    fn blank_obs_out_is_ignored() {
        with_memory_sink(|_| {
            uninstall();
            std::env::set_var("ACT_OBS_OUT", "   ");
            let installed = init_from_env();
            std::env::remove_var("ACT_OBS_OUT");
            assert!(!installed);
            assert!(!enabled());
        });
    }

    #[test]
    fn blank_artifacts_env_falls_back_to_default() {
        with_memory_sink(|_| {
            std::env::set_var("ACT_OBS_ARTIFACTS", "  ");
            let dir = artifacts_dir();
            std::env::remove_var("ACT_OBS_ARTIFACTS");
            assert_eq!(dir, Some(PathBuf::from("target/act-artifacts")));
        });
    }

    #[test]
    fn artifacts_env_overrides_default() {
        with_memory_sink(|_| {
            std::env::set_var("ACT_OBS_ARTIFACTS", " /tmp/act-chaos ");
            let dir = artifacts_dir();
            std::env::remove_var("ACT_OBS_ARTIFACTS");
            assert_eq!(dir, Some(PathBuf::from("/tmp/act-chaos")));
        });
    }

    #[test]
    fn poisoned_sink_locks_recover() {
        // A panic while holding a sink lock poisons it; telemetry must
        // keep flowing afterwards instead of cascading the failure.
        let sink = Arc::new(MemorySink::default());
        let s2 = sink.clone();
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _guard = s2.lines.lock().unwrap();
            panic!("poison the memory sink");
        }));
        std::panic::set_hook(hook);
        sink.write_line("after-poison");
        assert_eq!(sink.lines(), vec!["after-poison"]);
    }

    #[test]
    fn memory_sink_collects_lines() {
        let sink = MemorySink::default();
        sink.write_line("a");
        sink.write_line("b");
        assert_eq!(sink.lines(), vec!["a", "b"]);
        assert_eq!(sink.drain().len(), 2);
        assert!(sink.lines().is_empty());
    }
}
