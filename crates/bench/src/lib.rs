//! Shared support for the figure/experiment regeneration benches.
//!
//! Every bench in `benches/` regenerates one figure or validates one
//! theorem of the paper, printing the same data series the paper reports
//! (facet counts, class censuses, histograms, verdict tables) before
//! running its timed measurements. The printed blocks are delimited so
//! `EXPERIMENTS.md` can be checked against `cargo bench` output.

use act_adversary::{zoo, Adversary, AgreementFunction};

/// Prints a delimited figure/experiment data block.
pub fn banner(id: &str, title: &str) {
    println!("\n=== {id}: {title} ===");
}

/// Records a figure/experiment scalar (a facet count, census size,
/// verdict tally, …) both to stdout and to the bench target's
/// `BENCH_<name>.json` report, so CI can diff the numbers the paper
/// reports without scraping the text output.
pub fn metric(key: &str, value: u64) {
    println!("metric {key} = {value}");
    criterion::record_metric(key, value);
}

/// The model portfolio used across experiments: name, agreement function,
/// and `setcon`.
pub fn model_portfolio() -> Vec<(String, AgreementFunction, usize)> {
    vec![
        model("wait-free", Adversary::wait_free(3)),
        model("1-resilient", Adversary::t_resilient(3, 1)),
        model("0-resilient", Adversary::t_resilient(3, 0)),
        model("1-obstruction-free", Adversary::k_obstruction_free(3, 1)),
        model("2-obstruction-free", Adversary::k_obstruction_free(3, 2)),
        model("figure-5b", zoo::figure_5b_adversary()),
    ]
}

fn model(name: &str, a: Adversary) -> (String, AgreementFunction, usize) {
    let alpha = AgreementFunction::of_adversary(&a);
    let power = a.setcon();
    (name.to_string(), alpha, power)
}
