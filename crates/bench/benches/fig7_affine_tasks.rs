//! Figure 7 — the affine tasks `R_A` (Definition 9) of the two example
//! models, plus the cross-construction relationship with `R_{k-OF}`
//! (Definition 6) and `R_{t-res}` (Saraph et al.).

use act_adversary::{zoo, AgreementFunction};
use act_affine::{
    fair_affine_task, fair_affine_task_with, k_obstruction_free_task, t_resilient_task,
    CriticalSideCondition,
};
use act_bench::{banner, metric};
use criterion::{criterion_group, criterion_main, Criterion};

fn print_figure_data() {
    banner("Figure 7a", "R_A of the 1-OF α-model");
    let alpha_a = AgreementFunction::k_concurrency(3, 1);
    let r_a = fair_affine_task(&alpha_a);
    println!("facets: {} of 169", r_a.complex().facet_count());
    let def6 = k_obstruction_free_task(3, 1);
    println!(
        "R_1-OF (Def 6): {} facets; equal to R_A: {}",
        def6.complex().facet_count(),
        r_a.complex().same_complex(def6.complex())
    );
    assert!(r_a.complex().same_complex(def6.complex()));

    banner("Figure 7b", "R_A of {p2},{p1,p3}+supersets");
    let alpha_b = AgreementFunction::of_adversary(&zoo::figure_5b_adversary());
    let r_b = fair_affine_task(&alpha_b);
    println!("facets: {} of 169", r_b.complex().facet_count());
    metric("fig7a_r_1of_facets", r_a.complex().facet_count() as u64);
    metric("fig7b_r_5b_facets", r_b.complex().facet_count() as u64);

    banner(
        "Figure 7+",
        "Definition 9 vs Definition 6 across k (reproduction finding)",
    );
    for k in 1..=3usize {
        let alpha = AgreementFunction::k_concurrency(3, k);
        let union = fair_affine_task_with(&alpha, CriticalSideCondition::Union);
        let triple = fair_affine_task_with(&alpha, CriticalSideCondition::TripleIntersection);
        let def6 = k_obstruction_free_task(3, k);
        println!(
            "k = {k}: |R_A(union)| = {:>3}  |R_A(triple)| = {:>3}  |R_k-OF(Def 6)| = {:>3}",
            union.complex().facet_count(),
            triple.complex().facet_count(),
            def6.complex().facet_count()
        );
        assert!(union
            .complex()
            .canonical_facets()
            .is_subset(&def6.complex().canonical_facets()));
    }
    let r1res_direct = t_resilient_task(3, 1);
    let alpha_1res = AgreementFunction::of_adversary(&act_adversary::Adversary::t_resilient(3, 1));
    let r1res_general = fair_affine_task(&alpha_1res);
    println!(
        "1-resilience: |R_A(Def 9)| = {}  |R_t-res(Saraph)| = {}  equal = {}",
        r1res_general.complex().facet_count(),
        r1res_direct.complex().facet_count(),
        r1res_general.complex().same_complex(r1res_direct.complex())
    );

    banner("Figure 7 @ n=4", "the divergence at four processes");
    for k in 1..=3usize {
        let alpha = AgreementFunction::k_concurrency(4, k);
        let general = fair_affine_task(&alpha);
        let direct = k_obstruction_free_task(4, k);
        let g = general.complex().canonical_facets();
        let d = direct.complex().canonical_facets();
        println!(
            "k = {k}: |R_A| = {:>4}  |R_k-OF| = {:>4}  R_A⊆Def6 = {}  Def6⊆R_A = {}",
            g.len(),
            d.len(),
            g.is_subset(&d),
            d.is_subset(&g)
        );
    }
    for t in 1..=2usize {
        let alpha = AgreementFunction::of_adversary(&act_adversary::Adversary::t_resilient(4, t));
        let general = fair_affine_task(&alpha);
        let direct = t_resilient_task(4, t);
        println!(
            "t = {t}: |R_A| = {:>4}  |R_t-res| = {:>4}  equal = {}",
            general.complex().facet_count(),
            direct.complex().facet_count(),
            general.complex().same_complex(direct.complex())
        );
    }
}

fn bench(c: &mut Criterion) {
    print_figure_data();

    let alpha_a = AgreementFunction::k_concurrency(3, 1);
    let alpha_b = AgreementFunction::of_adversary(&zoo::figure_5b_adversary());
    c.bench_function("fig7a_r_a_construction_1of", |b| {
        b.iter(|| fair_affine_task(&alpha_a).complex().facet_count())
    });
    c.bench_function("fig7b_r_a_construction_fig5b", |b| {
        b.iter(|| fair_affine_task(&alpha_b).complex().facet_count())
    });
    let alpha4 = AgreementFunction::k_concurrency(4, 2);
    c.bench_function("fig7_r_a_construction_n4", |b| {
        b.iter(|| fair_affine_task(&alpha4).complex().facet_count())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
