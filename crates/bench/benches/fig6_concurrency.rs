//! Figure 6 — the concurrency map `Conc_α` (Definition 8) over `Chr s`
//! for the two example models: the histogram of concurrency levels over
//! all simplices, and the star-structure observation of the paper (a
//! simplex's level is the best agreement power among the critical
//! simplices it contains).

use act_adversary::{zoo, AgreementFunction};
use act_affine::CriticalAnalysis;
use act_bench::{banner, metric};
use act_topology::Complex;
use criterion::{criterion_group, criterion_main, Criterion};

fn histogram(chr: &Complex, alpha: &AgreementFunction) -> Vec<(usize, usize)> {
    let mut crit = CriticalAnalysis::new(chr, alpha);
    let mut hist = std::collections::BTreeMap::new();
    let mut seen = std::collections::BTreeSet::new();
    for facet in chr.facets() {
        for face in facet.non_empty_faces() {
            if seen.insert(face.clone()) {
                *hist.entry(crit.concurrency(&face)).or_insert(0usize) += 1;
            }
        }
    }
    hist.into_iter().collect()
}

fn print_figure_data() {
    let chr = Complex::standard(3).chromatic_subdivision();

    banner("Figure 6a", "concurrency map of the 1-OF α-model");
    let alpha_a = AgreementFunction::k_concurrency(3, 1);
    let h = histogram(&chr, &alpha_a);
    println!("distinct simplices per concurrency level: {h:?}");
    assert!(h.iter().all(|&(lvl, _)| lvl <= 1), "1-OF levels are 0 or 1");

    banner("Figure 6b", "concurrency map of {p2},{p1,p3}+supersets");
    let alpha_b = AgreementFunction::of_adversary(&zoo::figure_5b_adversary());
    let h = histogram(&chr, &alpha_b);
    println!("distinct simplices per concurrency level: {h:?}");
    assert_eq!(
        h.iter().map(|&(lvl, _)| lvl).collect::<Vec<_>>(),
        vec![0, 1, 2],
        "levels 0, 1, 2 all occur (black, orange, green in the figure)"
    );

    // The star-structure observation: Conc(σ) equals the max power of the
    // critical simplices contained in σ.
    let mut crit = CriticalAnalysis::new(&chr, &alpha_b);
    for facet in chr.facets() {
        for face in facet.non_empty_faces() {
            let info = crit.analyze(&face).clone();
            let expected = info
                .critical
                .iter()
                .map(|t| alpha_b.alpha(chr.carrier_colors(t)))
                .max()
                .unwrap_or(0);
            assert_eq!(info.concurrency, expected);
        }
    }
    println!("star-structure identity verified on every simplex of Chr s");
    metric("fig6b_concurrency_levels", h.len() as u64);
}

fn bench(c: &mut Criterion) {
    print_figure_data();

    let chr = Complex::standard(3).chromatic_subdivision();
    let alpha_b = AgreementFunction::of_adversary(&zoo::figure_5b_adversary());
    c.bench_function("fig6_concurrency_histogram", |b| {
        b.iter(|| histogram(&chr, &alpha_b).len())
    });
    let chr4 = Complex::standard(4).chromatic_subdivision();
    let alpha4 = AgreementFunction::k_concurrency(4, 2);
    c.bench_function("fig6_concurrency_histogram_n4", |b| {
        b.iter(|| histogram(&chr4, &alpha4).len())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
