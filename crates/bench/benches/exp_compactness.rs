//! Experiment E7 — compact models (Section 1): adversarial models are
//! generally not compact (every finite prefix of the solo run is
//! admissible but the limit run is not), while affine models are compact
//! by construction — solvable tasks are solved within an explicit bound
//! of iterations.

use act_adversary::{Adversary, AgreementFunction};
use act_affine::fair_affine_task;
use act_bench::{banner, metric};
use act_runtime::System;
use act_tasks::{find_carried_map, SetConsensus};
use act_topology::{ColorSet, ProcessId};
use criterion::{criterion_group, criterion_main, Criterion};
use fact::{affine_domain, AlgorithmOneSystem};

fn print_experiment_data() {
    banner("E7", "compactness of affine models vs adversarial models");

    // Non-compactness of 1-resilience: the solo prefix is always
    // extendable, the limit excluded; Algorithm 1 keeps p1 waiting.
    let alpha = AgreementFunction::of_adversary(&Adversary::t_resilient(3, 1));
    assert_eq!(alpha.alpha(ColorSet::from_indices([0])), 0);
    let mut sys = AlgorithmOneSystem::new(&alpha, ColorSet::full(3));
    let p1 = ProcessId::new(0);
    for _ in 0..2_000 {
        sys.step(p1);
    }
    println!(
        "1-resilient solo run: p1 undecided after 2000 solo steps: {}",
        !sys.has_terminated(p1)
    );
    assert!(!sys.has_terminated(p1));

    // Compactness of R_A^*: 2-set consensus solved within ℓ = 1.
    let r_a = fair_affine_task(&alpha);
    let t = SetConsensus::new(3, 2, &[0, 1, 2]);
    let domain = affine_domain(&r_a, &t.rainbow_inputs(), 1);
    let found = find_carried_map(&t, &domain, 3_000_000).is_found();
    println!("R_A^* solves 2-set consensus at explicit bound ℓ = 1: {found}");
    assert!(found);

    // The bounded-round König consequence, quantitatively: the domain at
    // ℓ iterations is finite and explicit.
    for l in 1..=2usize {
        let d = affine_domain(&r_a, &t.rainbow_inputs(), l);
        println!("ℓ = {l}: |facets(R_A^ℓ(I))| = {}", d.facet_count());
        metric(&format!("exp7_domain_facets_l{l}"), d.facet_count() as u64);
    }
}

fn bench(c: &mut Criterion) {
    print_experiment_data();

    let alpha = AgreementFunction::of_adversary(&Adversary::t_resilient(3, 1));
    let r_a = fair_affine_task(&alpha);
    let t = SetConsensus::new(3, 2, &[0, 1, 2]);
    c.bench_function("exp7_iterate_r_a_once", |b| {
        let inputs = t.rainbow_inputs();
        b.iter(|| affine_domain(&r_a, &inputs, 1).facet_count())
    });
    c.bench_function("exp7_iterate_r_a_twice", |b| {
        let inputs = t.rainbow_inputs();
        b.iter(|| affine_domain(&r_a, &inputs, 2).facet_count())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
