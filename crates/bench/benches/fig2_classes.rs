//! Figure 2 — the adversary class diagram (superset-closed ⊆ fair,
//! symmetric ⊆ fair, both strict, t-resilient in the intersection,
//! k-obstruction-free symmetric but not superset-closed), checked by an
//! exhaustive census over all 128 adversaries on 3 processes.

use act_adversary::{zoo, Adversary};
use act_bench::{banner, metric};
use criterion::{criterion_group, criterion_main, Criterion};

fn print_figure_data() {
    banner(
        "Figure 2",
        "adversary classes over 3 processes (exhaustive census)",
    );
    let all = zoo::all_adversaries(3);
    let mut fair = 0;
    let mut sym = 0;
    let mut ssc = 0;
    let mut sym_and_ssc = 0;
    let mut fair_only = 0;
    for a in &all {
        let (f, s, c) = (a.is_fair(), a.is_symmetric(), a.is_superset_closed());
        assert!(!s || f, "symmetric ⊆ fair");
        assert!(!c || f, "superset-closed ⊆ fair");
        fair += usize::from(f);
        sym += usize::from(s);
        ssc += usize::from(c);
        sym_and_ssc += usize::from(s && c);
        fair_only += usize::from(f && !s && !c);
    }
    println!("total adversaries        : {}", all.len());
    println!("fair                     : {fair}");
    println!("symmetric                : {sym}");
    println!("superset-closed          : {ssc}");
    println!("symmetric ∩ ssc          : {sym_and_ssc}");
    println!("fair \\ (sym ∪ ssc)       : {fair_only}");
    println!("unfair                   : {}", all.len() - fair);
    assert!(
        fair_only > 0,
        "the fair class is strictly larger (paper's Figure 2)"
    );
    // t-resilience sits in the intersection; k-OF is symmetric only.
    assert!(Adversary::t_resilient(3, 1).is_symmetric());
    assert!(Adversary::t_resilient(3, 1).is_superset_closed());
    assert!(Adversary::k_obstruction_free(3, 1).is_symmetric());
    assert!(!Adversary::k_obstruction_free(3, 1).is_superset_closed());
    metric("fig2_total_adversaries", all.len() as u64);
    metric("fig2_fair", fair as u64);
    metric("fig2_symmetric", sym as u64);
    metric("fig2_superset_closed", ssc as u64);
}

fn bench(c: &mut Criterion) {
    print_figure_data();

    c.bench_function("fig2_fairness_check_t_resilient", |b| {
        let a = Adversary::t_resilient(3, 1);
        b.iter(|| a.is_fair())
    });
    c.bench_function("fig2_full_census", |b| {
        b.iter(|| zoo::all_fair_adversaries(3).len())
    });
    c.bench_function("fig2_fairness_check_n5", |b| {
        let a = Adversary::t_resilient(5, 2);
        b.iter(|| a.is_fair())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
