//! Replicated serving performance: wire-path throughput and tail
//! latency of a fact-serve cluster at 1, 2, and 4 peers.
//!
//! Each phase stands up an in-process cluster over real TCP sockets
//! (`spawn_server` per peer, every peer configured with the full
//! membership list), then drives it through the resilient
//! `ClusterClient` — so the measured path includes placement,
//! non-owner forwarding, and write-through replication, exactly what a
//! production client pays. Per peer count the bench reports cold
//! (engine + replication) and warm (store hit over the wire)
//! queries/second with p50/p99 latency as `peers{N}_*` metrics in
//! `BENCH_perf_cluster.json`.

use std::net::TcpListener;
use std::time::Instant;

use act_bench::{banner, metric};
use act_service::{spawn_server, ClusterClient, ClusterConfig, ServeOptions, ServerHandle};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn samples() -> usize {
    std::env::var("ACT_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(10)
}

/// The wire portfolio: the same small `n = 3` instances `perf_serve`
/// uses, issued as protocol requests instead of scheduler submits.
const PORTFOLIO: &[(&str, usize)] = &[
    ("t-res:3:1", 1),
    ("t-res:3:1", 2),
    ("t-res:3:2", 2),
    ("k-of:3:1", 1),
    ("k-of:3:2", 2),
    ("wait-free:3", 2),
];

struct TestCluster {
    handles: Vec<ServerHandle>,
    client: ClusterClient,
}

fn start_cluster(peers: usize) -> TestCluster {
    let listeners: Vec<TcpListener> = (0..peers)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind bench listener"))
        .collect();
    let addrs: Vec<String> = listeners
        .iter()
        .map(|l| l.local_addr().expect("listener addr").to_string())
        .collect();
    let handles = listeners
        .into_iter()
        .enumerate()
        .map(|(i, listener)| {
            let options = ServeOptions {
                cluster: (peers > 1).then(|| ClusterConfig::new(addrs.clone(), i)),
                ..ServeOptions::default()
            };
            spawn_server(&options, listener).expect("spawn bench peer")
        })
        .collect();
    TestCluster {
        handles,
        client: ClusterClient::new(addrs, 0xBE7C),
    }
}

impl TestCluster {
    fn stop(self) {
        for h in self.handles {
            h.stop();
        }
    }
}

/// One wire solve, returning its latency in nanoseconds.
fn solve_one(client: &ClusterClient, model: &str, k: usize) -> u64 {
    let start = Instant::now();
    let resp = client
        .solve(model, k, 1, false, Some(60_000))
        .expect("bench solve answered");
    assert!(resp.ok, "bench solve must succeed: {:?}", resp.error);
    start.elapsed().as_nanos() as u64
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn report_phase(phase: &str, mut latencies: Vec<u64>, total_ns: u64) {
    latencies.sort_unstable();
    let qps = latencies.len() as f64 * 1e9 / total_ns.max(1) as f64;
    metric(&format!("{phase}_qps"), qps as u64);
    metric(&format!("{phase}_p50_ns"), percentile(&latencies, 0.50));
    metric(&format!("{phase}_p99_ns"), percentile(&latencies, 0.99));
    println!(
        "{phase}: {} requests in {:.3} ms — {:.0} qps, p50 {} ns, p99 {} ns",
        latencies.len(),
        total_ns as f64 / 1e6,
        qps,
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
    );
}

fn print_experiment_data() {
    banner("P8", "replicated serving: wire qps/p99 at 1/2/4 peers");
    let rounds = samples();
    for peers in [1usize, 2, 4] {
        let cluster = start_cluster(peers);

        // Cold: every solve runs the engine and (for peers > 1)
        // write-through replicates before the reply.
        let mut cold = Vec::new();
        let cold_start = Instant::now();
        for &(model, k) in PORTFOLIO {
            cold.push(solve_one(&cluster.client, model, k));
        }
        let cold_total = cold_start.elapsed().as_nanos() as u64;
        report_phase(&format!("peers{peers}_cold"), cold, cold_total);

        // Warm: the same portfolio over and over — every request is a
        // store hit on whichever peer answers (owner or forwarded).
        let mut warm = Vec::new();
        let warm_start = Instant::now();
        for _ in 0..rounds {
            for &(model, k) in PORTFOLIO {
                warm.push(solve_one(&cluster.client, model, k));
            }
        }
        let warm_total = warm_start.elapsed().as_nanos() as u64;
        report_phase(&format!("peers{peers}"), warm, warm_total);

        cluster.stop();
    }
}

fn bench(c: &mut Criterion) {
    print_experiment_data();
    let n = samples();

    // Timed slice: the full warm wire round-trip (client → TCP →
    // forward/answer → reply) on a 2-peer cluster.
    let cluster = start_cluster(2);
    solve_one(&cluster.client, "t-res:3:1", 2);
    let mut g = c.benchmark_group("p8_cluster_wire");
    g.sample_size(n);
    g.bench_with_input(BenchmarkId::new("warm_solve", "2peers"), &(), |b, ()| {
        b.iter(|| solve_one(&cluster.client, "t-res:3:1", 2))
    });
    g.bench_with_input(BenchmarkId::new("stats", "2peers"), &(), |b, ()| {
        b.iter(|| cluster.client.stats().expect("stats answered"))
    });
    g.finish();
    cluster.stop();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
