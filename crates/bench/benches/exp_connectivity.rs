//! Experiment E8 — Section 8's structural observation: continuous-map
//! (point-set) arguments need link-connected complexes, and "only very
//! special adversaries, such as A_{t-res}, have link-connected
//! counterparts (see, e.g., the affine task corresponding to
//! 1-obstruction-freedom in Figure 7a)". We compute connectivity and
//! link-connectivity of R_A for the portfolio.

use act_affine::fair_affine_task;
use act_bench::{banner, metric, model_portfolio};
use act_topology::{
    betti_numbers, connected_components, euler_characteristic, is_link_connected,
    link_disconnection_witness,
};
use criterion::{criterion_group, criterion_main, Criterion};

fn print_experiment_data() {
    banner("E8", "connectivity structure of R_A (Section 8)");
    println!(
        "{:<22} {:>7} {:>12} {:>16} {:>14} {:>5}",
        "model", "facets", "components", "link-connected", "betti", "chi"
    );
    for (name, alpha, power) in model_portfolio() {
        if power == 0 {
            continue;
        }
        let r = fair_affine_task(&alpha);
        let comps = connected_components(r.complex());
        let link = is_link_connected(r.complex());
        let betti = betti_numbers(r.complex());
        let chi = euler_characteristic(r.complex());
        println!(
            "{:<22} {:>7} {:>12} {:>16} {:>14} {:>5}",
            name,
            r.complex().facet_count(),
            comps,
            link,
            format!("{betti:?}"),
            chi
        );
        assert_eq!(betti[0], comps, "β₀ equals the component count");
        metric(&format!("exp8_components_{name}"), comps as u64);
        match name.as_str() {
            "1-obstruction-free" => {
                assert_eq!(comps, 7, "Figure 7a splits into 7 pieces");
                assert!(!link, "1-OF is not link-connected (paper, Section 8)");
                assert!(link_disconnection_witness(r.complex()).is_some());
                assert_eq!(betti, vec![7, 0, 0], "seven acyclic pieces");
            }
            "2-obstruction-free" => {
                assert_eq!(
                    betti,
                    vec![1, 3, 0],
                    "R_A(2-OF) is connected with three 1-cycles — the holes \
                     obstructing consensus"
                );
            }
            "1-resilient" | "0-resilient" | "wait-free" => {
                assert_eq!(comps, 1);
                assert!(
                    link,
                    "t-resilient tasks are link-connected (shellable, [30])"
                );
            }
            _ => {}
        }
    }
}

fn bench(c: &mut Criterion) {
    print_experiment_data();

    let (_, alpha, _) = model_portfolio().into_iter().nth(3).unwrap(); // 1-OF
    let r = fair_affine_task(&alpha);
    c.bench_function("exp8_connected_components", |b| {
        b.iter(|| connected_components(r.complex()))
    });
    c.bench_function("exp8_link_connectivity", |b| {
        b.iter(|| is_link_connected(r.complex()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
