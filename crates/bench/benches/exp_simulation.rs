//! Experiment E5 — Theorem 15 (Lemmas 13, 14): simulating the α-model in
//! `R_A^*`. α-adaptive set consensus via `µ_Q` (validity, α-agreement,
//! termination) and the emulated atomic-snapshot memory (atomicity
//! axioms) over sampled affine-model runs.

use std::collections::HashMap;

use act_affine::fair_affine_task;
use act_bench::{banner, metric, model_portfolio};
use act_topology::{ColorSet, ProcessId};
use criterion::{criterion_group, criterion_main, Criterion};
use fact::{iteration_views, AdaptiveSetConsensus, AffineRunGenerator, SnapshotSimulation};
use rand::SeedableRng;

fn print_experiment_data() {
    banner("E5", "simulation of the α-model in R_A^* (Theorem 15)");
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(55);
    println!(
        "{:<22} {:>6} {:>10} {:>10} {:>12}",
        "model", "α(Π)", "runs", "max vals", "max rounds"
    );
    for (name, alpha, power) in model_portfolio() {
        if power == 0 {
            continue;
        }
        let task = fair_affine_task(&alpha);
        let solver = AdaptiveSetConsensus::new(&task, &alpha);
        let full = ColorSet::full(3);
        let mut max_vals = 0usize;
        let mut max_rounds = 0usize;
        let runs = 200usize;
        for _ in 0..runs {
            let proposals: HashMap<ProcessId, u64> =
                full.iter().map(|p| (p, 7 + p.index() as u64)).collect();
            let decisions = solver.solve(full, full, &proposals, &mut rng, 64);
            let mut values: Vec<u64> = decisions.iter().map(|d| d.value).collect();
            values.sort_unstable();
            values.dedup();
            assert!(values.len() <= alpha.alpha(full), "α-agreement");
            max_vals = max_vals.max(values.len());
            max_rounds = max_rounds.max(decisions.iter().map(|d| d.round).max().unwrap());
        }
        println!(
            "{:<22} {:>6} {:>10} {:>10} {:>12}",
            name,
            alpha.alpha(full),
            runs,
            max_vals,
            max_rounds
        );
    }

    // Atomic-snapshot emulation over affine runs.
    let (_, alpha, _) = &model_portfolio()[1]; // 1-resilient
    let task = fair_affine_task(alpha);
    let generator = AffineRunGenerator::new(&task, ColorSet::full(3));
    let mut sim = SnapshotSimulation::new(3);
    for round in 0..60 {
        if round % 2 == 0 {
            for i in 0..3 {
                sim.stage_write(ProcessId::new(i), (round * 10 + i) as u64);
            }
        }
        let iter = generator.next_iteration(&mut rng);
        sim.step_round(&iteration_views(task.complex(), &iter, 3));
    }
    sim.check_atomicity().expect("atomicity axioms");
    println!(
        "atomic-snapshot emulation: {} snapshots logged, atomicity verified",
        sim.snapshots().len()
    );
    metric("exp5_snapshots_logged", sim.snapshots().len() as u64);
}

fn bench(c: &mut Criterion) {
    print_experiment_data();

    let (_, alpha, _) = model_portfolio().into_iter().nth(5).unwrap(); // figure-5b
    let task = fair_affine_task(&alpha);
    let solver = AdaptiveSetConsensus::new(&task, &alpha);
    let full = ColorSet::full(3);
    let proposals: HashMap<ProcessId, u64> = full.iter().map(|p| (p, p.index() as u64)).collect();
    c.bench_function("exp5_adaptive_set_consensus", |b| {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(56);
        b.iter(|| solver.solve(full, full, &proposals, &mut rng, 64).len())
    });
    c.bench_function("exp5_snapshot_simulation_round", |b| {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(57);
        let generator = AffineRunGenerator::new(&task, full);
        let mut sim = SnapshotSimulation::new(3);
        b.iter(|| {
            sim.stage_write(ProcessId::new(0), 1);
            let iter = generator.next_iteration(&mut rng);
            sim.step_round(&iteration_views(task.complex(), &iter, 3));
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
