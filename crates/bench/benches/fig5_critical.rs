//! Figure 5 — critical simplices (Definition 7) for the two example
//! models: the 1-obstruction-free α-model (5a) and the adversary
//! `{p2}, {p1,p3}` + supersets (5b).

use act_adversary::{zoo, AgreementFunction};
use act_affine::CriticalAnalysis;
use act_bench::{banner, metric};
use act_topology::Complex;
use criterion::{criterion_group, criterion_main, Criterion};

fn distinct_critical(chr: &Complex, alpha: &AgreementFunction) -> Vec<(usize, usize)> {
    // Returns (dimension, count) pairs of distinct critical simplices.
    let crit = CriticalAnalysis::new(chr, alpha);
    let mut distinct = std::collections::BTreeSet::new();
    for facet in chr.facets() {
        for face in facet.non_empty_faces() {
            if crit.is_critical(&face) {
                distinct.insert(face);
            }
        }
    }
    let mut by_dim = std::collections::BTreeMap::new();
    for s in &distinct {
        *by_dim.entry(s.dim() as usize).or_insert(0usize) += 1;
    }
    by_dim.into_iter().collect()
}

fn print_figure_data() {
    let chr = Complex::standard(3).chromatic_subdivision();

    banner("Figure 5a", "critical simplices of the 1-OF α-model");
    let alpha_a = AgreementFunction::k_concurrency(3, 1);
    let by_dim = distinct_critical(&chr, &alpha_a);
    println!("critical simplices by dimension: {by_dim:?}");
    let total_a: usize = by_dim.iter().map(|&(_, c)| c).sum();
    println!("total: {total_a} (the synchronous simplex of every face of s)");
    assert_eq!(total_a, 7);

    banner("Figure 5b", "critical simplices of {p2},{p1,p3}+supersets");
    let alpha_b = AgreementFunction::of_adversary(&zoo::figure_5b_adversary());
    let by_dim = distinct_critical(&chr, &alpha_b);
    println!("critical simplices by dimension: {by_dim:?}");
    let total_b: usize = by_dim.iter().map(|&(_, c)| c).sum();
    println!("total: {total_b}");
    assert!(total_b > total_a, "the richer adversary has more witnesses");
    metric("fig5a_critical_total", total_a as u64);
    metric("fig5b_critical_total", total_b as u64);
}

fn bench(c: &mut Criterion) {
    print_figure_data();

    let chr = Complex::standard(3).chromatic_subdivision();
    let alpha_a = AgreementFunction::k_concurrency(3, 1);
    let alpha_b = AgreementFunction::of_adversary(&zoo::figure_5b_adversary());
    c.bench_function("fig5a_critical_enumeration", |b| {
        b.iter(|| distinct_critical(&chr, &alpha_a).len())
    });
    c.bench_function("fig5b_critical_enumeration", |b| {
        b.iter(|| distinct_critical(&chr, &alpha_b).len())
    });
    let chr4 = Complex::standard(4).chromatic_subdivision();
    let alpha4 = AgreementFunction::k_concurrency(4, 2);
    c.bench_function("fig5_critical_enumeration_n4", |b| {
        b.iter(|| distinct_critical(&chr4, &alpha4).len())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
