//! Experiment E4 — Properties 9, 10 and 12 of the leader-election map
//! `µ_Q` (Section 6.2), verified exhaustively over every facet of `R_A`,
//! every coalition `Q` and every sub-simplex, for the model portfolio and
//! the full fair-adversary census.

use act_adversary::{zoo, AgreementFunction};
use act_affine::fair_affine_task;
use act_bench::{banner, metric, model_portfolio};
use act_topology::ColorSet;
use criterion::{criterion_group, criterion_main, Criterion};
use fact::LeaderMap;

fn check_model(alpha: &AgreementFunction) -> usize {
    let r = fair_affine_task(alpha);
    let lm = LeaderMap::new(r.complex(), alpha);
    let full = ColorSet::full(3);
    let mut checks = 0usize;
    for facet in r.complex().facets() {
        for q in full.non_empty_subsets() {
            let theta = facet.filter(|v| q.contains(r.complex().color(v)));
            for sub in theta.non_empty_faces() {
                let mut leaders = ColorSet::EMPTY;
                for &v in sub.vertices() {
                    let leader = lm.mu_q(v, q);
                    assert!(q.contains(leader), "Property 9: leader ∈ Q");
                    assert!(
                        r.complex().base_colors_of_vertex(v).contains(leader),
                        "Property 9: leader observed"
                    );
                    let seen = r.complex().base_colors_of_vertex(v);
                    assert_eq!(
                        leader,
                        lm.mu_q(v, q.intersection(seen)),
                        "Property 12: robustness"
                    );
                    leaders = leaders.with(leader);
                }
                let carrier = r.complex().carrier_colors(&sub);
                assert!(
                    leaders.len() <= alpha.alpha(carrier),
                    "Property 10: agreement"
                );
                checks += 1;
            }
        }
    }
    checks
}

fn print_experiment_data() {
    banner("E4", "µ_Q leader election (Properties 9, 10, 12)");
    println!("{:<22} {:>12}", "model", "checks");
    for (name, alpha, power) in model_portfolio() {
        if power == 0 {
            continue;
        }
        let checks = check_model(&alpha);
        println!("{name:<22} {checks:>12}");
    }
    let mut census = 0usize;
    let mut models = 0usize;
    for a in zoo::all_fair_adversaries(3) {
        if a.setcon() == 0 {
            continue;
        }
        let alpha = AgreementFunction::of_adversary(&a);
        census += check_model(&alpha);
        models += 1;
    }
    println!("fair census: {census} checks across {models} models, 0 violations");
    metric("exp4_census_checks", census as u64);
    metric("exp4_census_models", models as u64);
}

fn bench(c: &mut Criterion) {
    print_experiment_data();

    let alpha = AgreementFunction::of_adversary(&zoo::figure_5b_adversary());
    c.bench_function("exp4_mu_q_full_verification", |b| {
        b.iter(|| check_model(&alpha))
    });
    let r = fair_affine_task(&alpha);
    let lm = LeaderMap::new(r.complex(), &alpha);
    let v = r.complex().used_vertices()[0];
    let q = ColorSet::full(3);
    c.bench_function("exp4_mu_q_single_query", |b| b.iter(|| lm.mu_q(v, q)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
