//! Campaign-runner throughput: sampled runs/second over the worker
//! fleet at 1, 4, and 8 workers on the `t-res:3:1` model (solver oracle
//! off, so every measured unit is schedule generation + adversarial
//! execution + invariant checking, not the one-off solvability query).
//!
//! Each worker count contributes one row to `BENCH_perf_campaign.json`
//! carrying the stub's timing fields plus two result metrics attached
//! via `record_result_metric`: `runs_per_sec` (from a dedicated
//! fixed-size throughput campaign) and `workers`. The perf-smoke CI job
//! asserts this schema.

use act_bench::{banner, metric};
use act_campaign::{run_campaign_in, CampaignConfig, CampaignContext, Scope};
use criterion::{criterion_group, criterion_main, record_result_metric, BenchmarkId, Criterion};

const WORKER_COUNTS: [usize; 3] = [1, 4, 8];

fn samples() -> usize {
    std::env::var("ACT_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(10)
}

/// Size of the dedicated throughput campaign each worker count runs
/// once; the criterion-timed loop uses a tenth of this per iteration.
fn campaign_runs() -> u64 {
    std::env::var("ACT_BENCH_CAMPAIGN_RUNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(20_000)
}

fn config(workers: usize, samples: u64, seed: u64) -> CampaignConfig {
    let mut config = CampaignConfig::new("t-res:3:1");
    config.scope = Scope::Sampled { samples };
    config.seed = seed;
    config.workers = workers;
    config.batch = (samples / 4).max(1);
    config.fault_rate_percent = 25;
    config.solver_check = false;
    config
}

fn bench(c: &mut Criterion) {
    banner("P8", "campaign runner: sampled runs/sec by worker count");
    let ctx = CampaignContext::new("t-res:3:1", false).expect("campaign context builds");
    let runs = campaign_runs();

    let mut g = c.benchmark_group("campaign");
    g.sample_size(samples());
    for workers in WORKER_COUNTS {
        let id = BenchmarkId::new("sampled_runs", workers);
        let timed = config(workers, (runs / 10).max(1_000), 0xFAC7);
        g.bench_with_input(id, &timed, |b, cfg| {
            b.iter(|| run_campaign_in(&ctx, cfg).expect("timed campaign completes"))
        });

        // One fixed-size campaign per worker count gives the headline
        // throughput number; coverage is worker-count-invariant, so the
        // three reports double as a determinism check.
        let report =
            run_campaign_in(&ctx, &config(workers, runs, 0xFAC7)).expect("campaign completes");
        assert_eq!(report.coverage.runs, runs);
        assert_eq!(report.coverage.violations, 0);
        let rps = report.runs_per_sec();
        println!(
            "campaign throughput: {workers} worker(s), {runs} runs, {:.0} runs/sec",
            rps
        );
        let row = format!("campaign/sampled_runs/{workers}");
        record_result_metric(&row, "runs_per_sec", rps);
        record_result_metric(&row, "workers", workers as f64);
        metric(&format!("runs_per_sec_w{workers}"), rps as u64);
    }
    g.finish();
    metric("campaign_runs", runs);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
