//! Experiment E10 — the fully executed `R_A^*` stack: iterate the real
//! Algorithm 1 (scheduled Borowsky–Gafni snapshots + waiting phase) to
//! produce affine-model runs, measure how much of `R_A` the executed runs
//! cover, and solve α-adaptive set consensus with `µ_Q` on top.

use std::collections::HashMap;

use act_affine::fair_affine_task;
use act_bench::{banner, metric, model_portfolio};
use act_topology::{ColorSet, ProcessId};
use criterion::{criterion_group, criterion_main, Criterion};
use fact::{execute_affine_iterations, executed_set_consensus};
use rand::SeedableRng;

fn print_experiment_data() {
    banner("E10", "executed R_A^* stack: coverage + µ_Q consensus");
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(101);
    println!(
        "{:<22} {:>8} {:>10} {:>12} {:>12}",
        "model", "|R_A|", "runs", "covered", "worst vals"
    );
    for (name, alpha, power) in model_portfolio() {
        if power == 0 {
            continue;
        }
        let task = fair_affine_task(&alpha);
        let full = ColorSet::full(3);
        let runs = 600usize;
        let iterations = execute_affine_iterations(&task, &alpha, full, runs, &mut rng);
        let covered: std::collections::BTreeSet<_> =
            iterations.iter().map(|it| it.facet.clone()).collect();
        let proposals: HashMap<ProcessId, u64> =
            full.iter().map(|p| (p, p.index() as u64)).collect();
        let mut worst = 0usize;
        for it in &iterations {
            let decisions = executed_set_consensus(&task, &alpha, it, full, &proposals);
            let mut values: Vec<u64> = decisions.iter().map(|&(_, v)| v).collect();
            values.sort_unstable();
            values.dedup();
            assert!(
                values.len() <= alpha.alpha(full),
                "α-agreement on executed runs"
            );
            worst = worst.max(values.len());
        }
        println!(
            "{:<22} {:>8} {:>10} {:>12} {:>12}",
            name,
            task.complex().facet_count(),
            runs,
            covered.len(),
            worst
        );
        metric(&format!("exp10_covered_{name}"), covered.len() as u64);
    }
    println!(
        "note: failure-free full-participation executions only reach the facets \
         whose runs need no crashes; coverage below |R_A| is expected"
    );
}

fn bench(c: &mut Criterion) {
    print_experiment_data();

    let (_, alpha, _) = model_portfolio().into_iter().nth(1).unwrap(); // 1-resilient
    let task = fair_affine_task(&alpha);
    let full = ColorSet::full(3);
    c.bench_function("exp10_executed_iteration", |b| {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(102);
        b.iter(|| execute_affine_iterations(&task, &alpha, full, 1, &mut rng).len())
    });
    c.bench_function("exp10_executed_iteration_plus_mu_q", |b| {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(103);
        let proposals: HashMap<ProcessId, u64> =
            full.iter().map(|p| (p, p.index() as u64)).collect();
        b.iter(|| {
            let its = execute_affine_iterations(&task, &alpha, full, 1, &mut rng);
            executed_set_consensus(&task, &alpha, &its[0], full, &proposals).len()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
