//! Figure 3 — example immediate-snapshot runs: the ordered run
//! `{p2}, {p1}, {p3}` and the synchronous run `{p1,p2,p3}`, their views,
//! and the correspondence between *executed* runs (Borowsky–Gafni under a
//! scheduler) and facets of `Chr s`.

use act_bench::{banner, metric};
use act_runtime::{facet_of_run, run_iis_with_bg};
use act_topology::{ColorSet, Complex, Osp};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;

fn print_figure_data() {
    banner("Figure 3", "valid sets of IS outputs");
    let ordered = Osp::new(vec![
        ColorSet::from_indices([1]),
        ColorSet::from_indices([0]),
        ColorSet::from_indices([2]),
    ])
    .unwrap();
    println!("3a ordered run {ordered}:");
    for (p, v) in ordered.views() {
        println!("   {p} sees {v}");
    }
    let sync = Osp::synchronous(ColorSet::full(3));
    println!("3b synchronous run {sync}:");
    for (p, v) in sync.views() {
        println!("   {p} sees {v}");
    }
    // Executed-run coverage: scheduled BG realizes all 13 facets.
    let chr = Complex::standard(3).chromatic_subdivision();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
    let mut seen = std::collections::BTreeSet::new();
    for _ in 0..500 {
        let rounds = run_iis_with_bg(3, ColorSet::full(3), 1, &mut rng);
        seen.insert(facet_of_run(&chr, &rounds).unwrap());
    }
    println!(
        "executed BG runs realized {} / 13 facets of Chr s",
        seen.len()
    );
    assert_eq!(seen.len(), 13);
    metric("fig3_chr_facets_realized", seen.len() as u64);
}

fn bench(c: &mut Criterion) {
    print_figure_data();

    c.bench_function("fig3_bg_is_round_n3", |b| {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
        b.iter(|| run_iis_with_bg(3, ColorSet::full(3), 1, &mut rng))
    });
    c.bench_function("fig3_bg_is_round_n6", |b| {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        b.iter(|| run_iis_with_bg(6, ColorSet::full(6), 1, &mut rng))
    });
    c.bench_function("fig3_facet_resolution", |b| {
        let chr2 = Complex::standard(3).iterated_subdivision(2);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(6);
        let rounds = run_iis_with_bg(3, ColorSet::full(3), 2, &mut rng);
        b.iter(|| facet_of_run(&chr2, &rounds).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
