//! Serving-layer performance: cold (engine) vs warm (store hit) vs
//! coalesced (single-flight fan-in) throughput and latency of the
//! `act-service` scheduler over a persistent verdict store.
//!
//! The experiment mirrors `EXPERIMENTS.md`'s cold-vs-warm methodology:
//! one portfolio of solvability queries is answered three ways —
//! first by running the engine into an empty store, then from the
//! store's disk tier through a fresh process-equivalent (a new
//! `VerdictStore` over the same directory, so the memory LRU cannot
//! hide the disk path), and finally as a burst of identical in-flight
//! queries that must coalesce onto one engine run. Each phase reports
//! queries/second and p50/p99 per-query latency as metrics in
//! `BENCH_perf_serve.json`.

use std::sync::Arc;
use std::time::Instant;

use act_bench::{banner, metric};
use act_service::{Scheduler, ServeConfig, Served, SolveQuery, Submitted, VerdictStore};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fact::{ModelSpec, TaskSpec};

fn samples() -> usize {
    std::env::var("ACT_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(10)
}

fn query(model: &str, k: usize, iters: usize) -> SolveQuery {
    let model = ModelSpec::parse(model, false).expect("portfolio model parses");
    let task = TaskSpec::set_consensus(model.num_processes(), k).expect("portfolio task parses");
    SolveQuery {
        model,
        task,
        iters,
        deadline_ms: None,
    }
}

/// The query portfolio: small `n = 3` instances across the adversary
/// zoo, cheap enough to answer at ℓ = 1 but distinct enough that every
/// cold answer is a real engine run with its own `R_A` tower.
fn portfolio() -> Vec<SolveQuery> {
    vec![
        query("t-res:3:1", 1, 1),
        query("t-res:3:1", 2, 1),
        query("t-res:3:2", 2, 1),
        query("k-of:3:1", 1, 1),
        query("k-of:3:2", 2, 1),
        query("wait-free:3", 2, 1),
    ]
}

/// Submits `q` and blocks for its answer, returning the per-query
/// latency in nanoseconds. Panics on backpressure/drain — the bench
/// never fills the queue.
fn answer_one(sched: &Scheduler, q: SolveQuery) -> u64 {
    let start = Instant::now();
    let served = match sched.submit(q) {
        Submitted::Ready(s) => s,
        Submitted::Pending(rx) => rx.recv().expect("worker answers"),
        other => panic!("bench query rejected: {other:?}"),
    };
    match served {
        Served::Authoritative { .. } | Served::Unreliable { .. } => {}
        Served::Failed { error, .. } => panic!("bench query failed: {error}"),
    }
    start.elapsed().as_nanos() as u64
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Reports `<phase>_qps`, `<phase>_p50_ns`, `<phase>_p99_ns` from one
/// phase's per-query latencies and total wall clock.
fn report_phase(phase: &str, mut latencies: Vec<u64>, total_ns: u64) {
    latencies.sort_unstable();
    let qps = latencies.len() as f64 * 1e9 / total_ns.max(1) as f64;
    metric(&format!("{phase}_qps"), qps as u64);
    metric(&format!("{phase}_p50_ns"), percentile(&latencies, 0.50));
    metric(&format!("{phase}_p99_ns"), percentile(&latencies, 0.99));
    println!(
        "{phase}: {} queries in {:.3} ms — {:.0} qps, p50 {} ns, p99 {} ns",
        latencies.len(),
        total_ns as f64 / 1e6,
        qps,
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
    );
}

fn print_experiment_data(dir: &std::path::Path) {
    banner("P7", "serving layer: cold vs warm vs coalesced");
    let rounds = samples();

    // Cold: every query is an engine run into an empty store.
    let store = Arc::new(VerdictStore::open(dir).expect("open bench store"));
    let sched = Scheduler::new(Arc::clone(&store), ServeConfig::default());
    sched.start_workers();
    let mut cold = Vec::new();
    let cold_start = Instant::now();
    for q in portfolio() {
        cold.push(answer_one(&sched, q));
    }
    let cold_total = cold_start.elapsed().as_nanos() as u64;
    sched.drain();
    report_phase("cold", cold, cold_total);

    // Warm: a fresh store over the same directory stands in for a new
    // process — every answer comes off the disk tier, no engine, no
    // memory-LRU shortcut. Repeated `rounds` times for a stable tail.
    let mut warm = Vec::new();
    let warm_start = Instant::now();
    for _ in 0..rounds {
        let fresh = Arc::new(VerdictStore::open(dir).expect("reopen bench store"));
        let sched = Scheduler::new(fresh, ServeConfig::default());
        for q in portfolio() {
            warm.push(answer_one(&sched, q));
        }
        sched.drain();
    }
    let warm_total = warm_start.elapsed().as_nanos() as u64;
    report_phase("warm", warm, warm_total);

    // Coalesced: a burst of identical queries enqueued before any worker
    // starts, so all but one provably ride the same engine run.
    const BURST: usize = 16;
    let sched = Scheduler::new(Arc::new(VerdictStore::in_memory()), ServeConfig::default());
    let burst_start = Instant::now();
    let receivers: Vec<_> = (0..BURST)
        .map(|_| match sched.submit(query("t-res:3:2", 2, 1)) {
            Submitted::Pending(rx) => rx,
            other => panic!("burst query rejected: {other:?}"),
        })
        .collect();
    sched.start_workers();
    let mut coalesced = Vec::new();
    for rx in receivers {
        rx.recv().expect("burst waiter answered");
        coalesced.push(burst_start.elapsed().as_nanos() as u64);
    }
    let coalesced_total = burst_start.elapsed().as_nanos() as u64;
    sched.drain();
    metric("coalesced_burst", BURST as u64);
    report_phase("coalesced", coalesced, coalesced_total);
}

fn bench(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("fact-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    print_experiment_data(&dir);
    let n = samples();

    // Timed slices of the two hot paths: a memory-tier hit on a live
    // scheduler, and a disk-tier load through a cold store.
    let store = Arc::new(VerdictStore::open(&dir).expect("open bench store"));
    let warm_key = query("t-res:3:1", 1, 1).key();
    assert!(
        store.get(&warm_key).is_some(),
        "cold phase must have populated the store"
    );
    let mut g = c.benchmark_group("p7_store_hit");
    g.sample_size(n);
    g.bench_with_input(BenchmarkId::new("hit", "memory_tier"), &(), |b, ()| {
        b.iter(|| store.get(&warm_key).expect("memory hit"))
    });
    g.bench_with_input(BenchmarkId::new("hit", "disk_tier"), &(), |b, ()| {
        b.iter(|| {
            let cold = VerdictStore::open(&dir).expect("reopen bench store");
            cold.get(&warm_key).expect("disk hit")
        })
    });
    g.finish();

    // The full warm request path: scheduler submit → store-backed Ready.
    c.bench_function("p7_warm_submit", |b| {
        let sched = Scheduler::new(Arc::clone(&store), ServeConfig::default());
        b.iter(|| match sched.submit(query("t-res:3:1", 1, 1)) {
            Submitted::Ready(Served::Authoritative { verdict, .. }) => verdict.iterations,
            other => panic!("warm submit must be a store hit, got {other:?}"),
        })
    });

    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
