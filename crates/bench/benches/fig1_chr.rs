//! Figure 1 — (a) the standard chromatic subdivision `Chr s` and (b) the
//! affine task `R_{1-res}` of 1-resilience, for 3 processes.
//!
//! Regenerates the combinatorial data of both sub-figures and times the
//! constructions.

use act_affine::t_resilient_task;
use act_bench::{banner, metric};
use act_topology::{fubini, Complex};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn print_figure_data() {
    banner("Figure 1a", "Chr s, n = 3");
    let chr = Complex::standard(3).chromatic_subdivision();
    println!(
        "f-vector (vertices, edges, triangles): {:?}",
        chr.f_vector()
    );
    assert_eq!(chr.f_vector(), vec![12, 24, 13]);
    for n in 1..=5 {
        let count = Complex::standard(n).chromatic_subdivision().facet_count();
        println!(
            "facets of Chr s for n = {n}: {count} (Fubini {})",
            fubini(n)
        );
        assert_eq!(count as u64, fubini(n));
    }

    banner("Figure 1b", "R_{1-res}, n = 3");
    let r = t_resilient_task(3, 1);
    println!(
        "R_1-res: {} of 169 facets of Chr² s survive (every process sees ≥ 2 processes)",
        r.complex().facet_count()
    );
    assert_eq!(r.complex().facet_count(), 142);
    metric("fig1a_chr_facets_n3", chr.facet_count() as u64);
    metric("fig1b_r1res_facets", r.complex().facet_count() as u64);
}

fn bench(c: &mut Criterion) {
    print_figure_data();

    let mut g = c.benchmark_group("fig1_chr_construction");
    for n in 2..=4usize {
        g.bench_with_input(BenchmarkId::new("chr", n), &n, |b, &n| {
            let s = Complex::standard(n);
            b.iter(|| s.chromatic_subdivision().facet_count())
        });
        g.bench_with_input(BenchmarkId::new("chr2", n), &n, |b, &n| {
            let s = Complex::standard(n);
            b.iter(|| s.iterated_subdivision(2).facet_count())
        });
    }
    g.finish();

    c.bench_function("fig1b_r_1res_construction", |b| {
        b.iter(|| t_resilient_task(3, 1).complex().facet_count())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
