//! Experiment E6 — Theorem 16 (the FACT): `k`-set consensus is solvable
//! in a fair adversarial model iff `k ≥ setcon(A)`, decided by the
//! carried-map pipeline over `R_A` (with the Sperner certificate routing
//! the parity-type wait-free case).

use act_affine::fair_affine_task;
use act_bench::{banner, metric, model_portfolio};
use act_tasks::SetConsensus;
use criterion::{criterion_group, criterion_main, Criterion};
use fact::{set_consensus_verdict, Solvability};

fn print_experiment_data() {
    banner("E6", "k-set consensus vs setcon (Theorem 16)");
    println!(
        "{:<22} {:>7} {:>14} {:>14}",
        "model", "setcon", "k=1", "k=2"
    );
    for (name, alpha, power) in model_portfolio() {
        if power == 0 {
            continue;
        }
        let r_a = fair_affine_task(&alpha);
        let mut cells = Vec::new();
        for k in 1..=2usize {
            let t = SetConsensus::new(3, k, &[0, 1, 2]);
            let verdict = set_consensus_verdict(&t, &r_a, 1, 3_000_000);
            let cell = match &verdict {
                Solvability::Solvable { .. } => "solvable",
                Solvability::NoMapUpTo { .. } => "no-map",
                Solvability::Exhausted { .. } => "exhausted",
                Solvability::TimedOut { .. } => "timed-out",
            };
            if k >= power {
                assert!(verdict.is_solvable(), "{name}: k = {k} must be solvable");
            } else {
                assert!(
                    matches!(verdict, Solvability::NoMapUpTo { .. }),
                    "{name}: k = {k} must be unsolvable"
                );
            }
            cells.push(cell);
        }
        println!(
            "{:<22} {:>7} {:>14} {:>14}",
            name, power, cells[0], cells[1]
        );
    }
    println!("every verdict agrees with setcon — both directions of the FACT hold");
    metric(
        "exp6_models_checked",
        model_portfolio().iter().filter(|(_, _, p)| *p > 0).count() as u64,
    );
}

fn bench(c: &mut Criterion) {
    print_experiment_data();

    let (_, alpha, _) = model_portfolio().into_iter().nth(1).unwrap(); // 1-resilient
    let r_a = fair_affine_task(&alpha);
    c.bench_function("exp6_solvable_verdict_k2", |b| {
        let t = SetConsensus::new(3, 2, &[0, 1, 2]);
        b.iter(|| set_consensus_verdict(&t, &r_a, 1, 3_000_000).is_solvable())
    });
    c.bench_function("exp6_unsolvable_verdict_k1", |b| {
        let t = SetConsensus::new(3, 1, &[0, 1, 2]);
        b.iter(|| {
            matches!(
                set_consensus_verdict(&t, &r_a, 1, 3_000_000),
                Solvability::NoMapUpTo { .. }
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
