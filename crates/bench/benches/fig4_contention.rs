//! Figure 4 — the 2-contention complex `Cont²` of `Chr² s` (Definition 5)
//! and the two detailed runs of sub-figures 4a/4b.

use act_affine::{contention_complex, is_contention_simplex, max_contention_dim};
use act_bench::{banner, metric};
use act_topology::{ColorSet, Complex, Osp};
use criterion::{criterion_group, criterion_main, Criterion};

fn print_figure_data() {
    banner("Figure 4", "the 2-contention complex Cont², n = 3");
    let chr2 = Complex::standard(3).iterated_subdivision(2);
    let cont = contention_complex(&chr2);
    println!("maximal contention simplices : {}", cont.facet_count());
    println!("contention complex dimension : {}", cont.dim());
    let mut by_dim = [0usize; 3];
    for facet in chr2.facets() {
        for face in facet.non_empty_faces() {
            if face.dim() >= 1 && is_contention_simplex(&chr2, &face) {
                by_dim[face.dim() as usize] += 1;
            }
        }
    }
    println!("contending pairs (counted per facet) : {}", by_dim[1]);
    println!("contending triples (counted per facet): {}", by_dim[2]);
    metric("fig4_cont2_facets", cont.facet_count() as u64);
    metric("fig4_contending_pairs", by_dim[1] as u64);

    // 4a: fully reversed ordered runs contend pairwise.
    let r1 = Osp::new(vec![
        ColorSet::from_indices([1]),
        ColorSet::from_indices([0]),
        ColorSet::from_indices([2]),
    ])
    .unwrap();
    let r2 = Osp::new(vec![
        ColorSet::from_indices([2]),
        ColorSet::from_indices([0]),
        ColorSet::from_indices([1]),
    ])
    .unwrap();
    let s = Complex::standard(3);
    let run4a = s.subdivide_patterned(2, move |_| vec![vec![r1.clone(), r2.clone()]]);
    println!(
        "4a reversed runs: max contention dim = {}",
        max_contention_dim(&run4a, &run4a.facets()[0])
    );
    assert_eq!(max_contention_dim(&run4a, &run4a.facets()[0]), 2);
}

fn bench(c: &mut Criterion) {
    print_figure_data();

    let chr2 = Complex::standard(3).iterated_subdivision(2);
    c.bench_function("fig4_contention_complex_n3", |b| {
        b.iter(|| contention_complex(&chr2).facet_count())
    });
    c.bench_function("fig4_max_contention_per_facet", |b| {
        b.iter(|| {
            chr2.facets()
                .iter()
                .map(|f| max_contention_dim(&chr2, f))
                .max()
        })
    });
    let chr2_4 = Complex::standard(4).iterated_subdivision(2);
    c.bench_function("fig4_contention_complex_n4", |b| {
        b.iter(|| contention_complex(&chr2_4).facet_count())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
