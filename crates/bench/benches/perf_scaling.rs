//! P1–P5 — performance envelope for downstream users: scaling of the
//! subdivision machinery, `R_A` construction, `setcon`, the map search,
//! and the serial-vs-parallel speedup of the subdivision engine, as a
//! function of system size.

use act_adversary::{Adversary, AgreementFunction, SetconSolver};
use act_affine::{fair_affine_task, fair_census_quotiented};
use act_bench::{banner, metric};
use act_tasks::{find_carried_map, SetConsensus};
use act_topology::{subdivision_threads, ColorSet, Complex};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fact::affine_domain;
use std::time::Instant;

/// The mean of row `id`, which must have been reported in this run.
fn row_mean_ns(id: &str) -> u64 {
    criterion::result_mean_ns(id).unwrap_or_else(|| panic!("benchmark row {id:?} did not run"))
}

fn print_experiment_data() {
    banner("P1-P5", "scaling envelope");
    for n in 2..=5usize {
        let chr = Complex::standard(n).chromatic_subdivision();
        println!("n = {n}: |facets(Chr s)| = {}", chr.facet_count());
    }
    for n in 2..=4usize {
        let chr2 = Complex::standard(n).iterated_subdivision(2);
        println!("n = {n}: |facets(Chr² s)| = {}", chr2.facet_count());
    }
    for n in 2..=4usize {
        let alpha = AgreementFunction::k_concurrency(n, 1.max(n - 1));
        let r = fair_affine_task(&alpha);
        println!(
            "n = {n}: |facets(R_(n-1)-OF)| = {}",
            r.complex().facet_count()
        );
    }
    // P5: serial-vs-parallel speedup of the subdivision engine on the
    // heaviest deterministic build in the figures, Chr² s at n = 4
    // (5 625 facets). The two builds are byte-identical; only the wall
    // clock differs.
    let workers = subdivision_threads();
    let chr = Complex::standard(4).chromatic_subdivision();
    let t0 = Instant::now();
    let serial = chr.chromatic_subdivision_threaded(1);
    let serial_time = t0.elapsed();
    let t1 = Instant::now();
    let parallel = chr.chromatic_subdivision_threaded(workers);
    let parallel_time = t1.elapsed();
    assert_eq!(serial, parallel, "deterministic merge must be exact");
    metric("p5_chr2_facets_n4", parallel.facet_count() as u64);
    metric("p5_workers", workers as u64);
    println!(
        "n = 4: Chr² s serial {:.1?} vs {} workers {:.1?} — speedup {:.2}x",
        serial_time,
        workers,
        parallel_time,
        serial_time.as_secs_f64() / parallel_time.as_secs_f64().max(f64::EPSILON)
    );
}

fn bench(c: &mut Criterion) {
    print_experiment_data();

    // P1: subdivision scaling.
    let mut g = c.benchmark_group("p1_chr_scaling");
    for n in 2..=5usize {
        g.bench_with_input(BenchmarkId::new("chr", n), &n, |b, &n| {
            let s = Complex::standard(n);
            b.iter(|| s.chromatic_subdivision().facet_count())
        });
    }
    g.finish();

    // P2: R_A construction scaling — direct builds for n ≤ 4, and the
    // symmetry-quotiented census alongside them. Quotiented and direct
    // must agree on the facet count (verdict parity is checked before
    // any timing), and the quotient is what makes n = 5 reachable at
    // all: 16 representative orbit expansions instead of the 292 681
    // facets of Chr² s.
    for n in 3..=4usize {
        let alpha = AgreementFunction::k_concurrency(n, n - 1);
        let census = fair_census_quotiented(&alpha).expect("k-concurrency is color-symmetric");
        assert_eq!(
            census.facet_count,
            fair_affine_task(&alpha).complex().facet_count(),
            "quotiented census must agree with the direct build at n = {n}"
        );
    }
    let mut g = c.benchmark_group("p2_r_a_scaling");
    for n in 2..=4usize {
        g.bench_with_input(BenchmarkId::new("r_a_kof", n), &n, |b, &n| {
            let alpha = AgreementFunction::k_concurrency(n, 1.max(n - 1));
            b.iter(|| fair_affine_task(&alpha).complex().facet_count())
        });
    }
    for n in 3..=4usize {
        g.bench_with_input(BenchmarkId::new("r_a_kof_quotient", n), &n, |b, &n| {
            let alpha = AgreementFunction::k_concurrency(n, n - 1);
            b.iter(|| {
                fair_census_quotiented(&alpha)
                    .expect("k-concurrency is color-symmetric")
                    .facet_count
            })
        });
    }
    // Previously unreachable: the direct build materializes Chr² s
    // (292 681 facets at n = 5) before Definition 9 prunes it; the
    // quotiented census never builds it and lands in tens of
    // milliseconds.
    g.bench_with_input(BenchmarkId::new("r_a_kof", 5usize), &5usize, |b, &n| {
        let alpha = AgreementFunction::k_concurrency(n, n - 1);
        b.iter(|| {
            fair_census_quotiented(&alpha)
                .expect("k-concurrency is color-symmetric")
                .facet_count
        })
    });
    g.finish();
    let n5 = fair_census_quotiented(&AgreementFunction::k_concurrency(5, 4))
        .expect("k-concurrency is color-symmetric");
    metric("r_a_kof5_facets", n5.facet_count as u64);
    metric("r_a_kof5_orbits", n5.orbit_count as u64);
    metric("r_a_kof5_chr2_facets", n5.chr2_facet_count as u64);
    // Quotiented-vs-direct speedup on the same instance, read back from
    // the rows of this very run (CI perf-smoke enforces the n = 4 one).
    let direct3 = row_mean_ns("p2_r_a_scaling/r_a_kof/3");
    let quotient3 = row_mean_ns("p2_r_a_scaling/r_a_kof_quotient/3");
    let direct4 = row_mean_ns("p2_r_a_scaling/r_a_kof/4");
    let quotient4 = row_mean_ns("p2_r_a_scaling/r_a_kof_quotient/4");
    metric("quotient_speedup_n3_x100", direct3 * 100 / quotient3.max(1));
    metric("quotient_speedup_x100", direct4 * 100 / quotient4.max(1));
    println!(
        "R_A quotient: n = 3 direct {direct3} ns vs quotient {quotient3} ns, \
         n = 4 direct {direct4} ns vs quotient {quotient4} ns"
    );

    // P3: setcon scaling over adversary size.
    let mut g = c.benchmark_group("p3_setcon_scaling");
    for n in 4..=8usize {
        g.bench_with_input(BenchmarkId::new("t_resilient", n), &n, |b, &n| {
            let a = Adversary::t_resilient(n, n / 2);
            b.iter(|| {
                let mut solver = SetconSolver::new(&a);
                solver.setcon(ColorSet::full(n))
            })
        });
    }
    g.finish();

    // P5: serial vs parallel subdivision on Chr² s, n = 4 — fixed 1-,
    // 2- and 4-worker rows (plus the ambient default when it differs)
    // so the parallel-scaling claim is backed by recorded numbers on
    // every run, not just on many-core hosts.
    let mut g = c.benchmark_group("p5_parallel_subdivision");
    let chr4 = Complex::standard(4).chromatic_subdivision();
    let mut worker_rows = vec![1usize, 2, 4];
    if !worker_rows.contains(&subdivision_threads()) {
        worker_rows.push(subdivision_threads());
    }
    for &threads in &worker_rows {
        g.bench_with_input(
            BenchmarkId::new("chr2_n4", threads),
            &threads,
            |b, &threads| b.iter(|| chr4.chromatic_subdivision_threaded(threads).facet_count()),
        );
    }
    g.finish();
    let p5_serial = row_mean_ns("p5_parallel_subdivision/chr2_n4/1");
    let p5_best = worker_rows
        .iter()
        .filter(|&&w| w > 1)
        .map(|&w| row_mean_ns(&format!("p5_parallel_subdivision/chr2_n4/{w}")))
        .min()
        .unwrap_or(p5_serial);
    metric("p5_parallel_speedup_x100", p5_serial * 100 / p5_best.max(1));

    // P4: map search on the solvable side.
    c.bench_function("p4_map_search_2set_1res", |b| {
        let alpha = AgreementFunction::of_adversary(&Adversary::t_resilient(3, 1));
        let r_a = fair_affine_task(&alpha);
        let t = SetConsensus::new(3, 2, &[0, 1, 2]);
        let domain = affine_domain(&r_a, &t.rainbow_inputs(), 1);
        b.iter(|| find_carried_map(&t, &domain, 3_000_000).is_found())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
