//! P1–P4 — performance envelope for downstream users: scaling of the
//! subdivision machinery, `R_A` construction, `setcon`, and the map
//! search, as a function of system size.

use act_adversary::{Adversary, AgreementFunction, SetconSolver};
use act_affine::fair_affine_task;
use act_bench::banner;
use act_tasks::{find_carried_map, SetConsensus};
use act_topology::{ColorSet, Complex};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fact::affine_domain;

fn print_experiment_data() {
    banner("P1-P4", "scaling envelope");
    for n in 2..=5usize {
        let chr = Complex::standard(n).chromatic_subdivision();
        println!("n = {n}: |facets(Chr s)| = {}", chr.facet_count());
    }
    for n in 2..=4usize {
        let chr2 = Complex::standard(n).iterated_subdivision(2);
        println!("n = {n}: |facets(Chr² s)| = {}", chr2.facet_count());
    }
    for n in 2..=4usize {
        let alpha = AgreementFunction::k_concurrency(n, 1.max(n - 1));
        let r = fair_affine_task(&alpha);
        println!("n = {n}: |facets(R_(n-1)-OF)| = {}", r.complex().facet_count());
    }
}

fn bench(c: &mut Criterion) {
    print_experiment_data();

    // P1: subdivision scaling.
    let mut g = c.benchmark_group("p1_chr_scaling");
    for n in 2..=5usize {
        g.bench_with_input(BenchmarkId::new("chr", n), &n, |b, &n| {
            let s = Complex::standard(n);
            b.iter(|| s.chromatic_subdivision().facet_count())
        });
    }
    g.finish();

    // P2: R_A construction scaling.
    let mut g = c.benchmark_group("p2_r_a_scaling");
    for n in 2..=4usize {
        g.bench_with_input(BenchmarkId::new("r_a_kof", n), &n, |b, &n| {
            let alpha = AgreementFunction::k_concurrency(n, 1.max(n - 1));
            b.iter(|| fair_affine_task(&alpha).complex().facet_count())
        });
    }
    g.finish();

    // P3: setcon scaling over adversary size.
    let mut g = c.benchmark_group("p3_setcon_scaling");
    for n in 4..=8usize {
        g.bench_with_input(BenchmarkId::new("t_resilient", n), &n, |b, &n| {
            let a = Adversary::t_resilient(n, n / 2);
            b.iter(|| {
                let mut solver = SetconSolver::new(&a);
                solver.setcon(ColorSet::full(n))
            })
        });
    }
    g.finish();

    // P4: map search on the solvable side.
    c.bench_function("p4_map_search_2set_1res", |b| {
        let alpha = AgreementFunction::of_adversary(&Adversary::t_resilient(3, 1));
        let r_a = fair_affine_task(&alpha);
        let t = SetConsensus::new(3, 2, &[0, 1, 2]);
        let domain = affine_domain(&r_a, &t.rainbow_inputs(), 1);
        b.iter(|| find_carried_map(&t, &domain, 3_000_000).is_found())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
