//! P6 — the map-search engine after the bitset/trail/residue rewrite:
//! serial and default engines on the PR-2 reference instance
//! (`p4_map_search_2set_1res`), unsolvable propagation-heavy searches,
//! and the incremental `DomainCache` against from-scratch domain builds.
//!
//! The `speedup_vs_pr2*` metrics compare against the mean recorded by
//! the PR-2 engine for the same instance in `BENCH_perf_scaling.json`
//! (7 286 497 ns). `ACT_BENCH_SAMPLES` overrides the per-benchmark
//! sample count (default 10) so CI smoke runs can keep this cheap.

use act_adversary::{Adversary, AgreementFunction};
use act_affine::fair_affine_task;
use act_bench::{banner, metric};
use act_tasks::{
    consensus, find_carried_map, find_carried_map_with_config, find_carried_map_with_stats,
    SearchConfig, SetConsensus, Task,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fact::{affine_domain, DomainCache};
use std::time::Instant;

/// Mean of `p4_map_search_2set_1res` recorded by the PR-2 engine
/// (domain-cloning backtracking over `Vec<VertexId>` domains).
const PR2_P4_MEAN_NS: u64 = 7_286_497;

fn samples() -> usize {
    std::env::var("ACT_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(10)
}

/// Mean wall clock of `samples()` runs of `f`, in nanoseconds.
fn mean_ns<F: FnMut()>(mut f: F) -> u64 {
    f(); // warm-up, matching the vendored criterion's Bencher
    let n = samples() as u32;
    let start = Instant::now();
    for _ in 0..n {
        f();
    }
    (start.elapsed() / n).as_nanos() as u64
}

fn print_experiment_data() {
    banner("P6", "map-search engine");
    let alpha = AgreementFunction::of_adversary(&Adversary::t_resilient(3, 1));
    let r_a = fair_affine_task(&alpha);
    let t = SetConsensus::new(3, 2, &[0, 1, 2]);
    let inputs = t.rainbow_inputs();
    let domain = affine_domain(&r_a, &inputs, 1);

    // Engine speedups on the PR-2 reference instance. The serial number
    // isolates the bitset/trail/residue gains; the default engine adds
    // the root-split fan-out on multi-core machines.
    let serial = mean_ns(|| {
        let config = SearchConfig::serial(3_000_000);
        assert!(find_carried_map_with_config(&t, &domain, &config)
            .0
            .is_found());
    });
    let default = mean_ns(|| {
        assert!(find_carried_map(&t, &domain, 3_000_000).is_found());
    });
    metric("p4_serial_mean_ns", serial);
    metric("p4_default_mean_ns", default);
    metric(
        "speedup_serial_vs_pr2",
        (PR2_P4_MEAN_NS + serial / 2) / serial.max(1),
    );
    metric(
        "speedup_serial_vs_pr2_x100",
        PR2_P4_MEAN_NS * 100 / serial.max(1),
    );
    metric(
        "speedup_vs_pr2",
        (PR2_P4_MEAN_NS + default / 2) / default.max(1),
    );
    metric("speedup_vs_pr2_x100", PR2_P4_MEAN_NS * 100 / default.max(1));
    println!(
        "p4 reference instance: PR-2 {} ns → serial {} ns ({:.1}x), default {} ns ({:.1}x)",
        PR2_P4_MEAN_NS,
        serial,
        PR2_P4_MEAN_NS as f64 / serial.max(1) as f64,
        default,
        PR2_P4_MEAN_NS as f64 / default.max(1) as f64,
    );

    // Residual-support effectiveness on the same search.
    let (result, stats) = find_carried_map_with_stats(&t, &domain, 3_000_000);
    assert!(result.is_found());
    metric("p4_nodes", stats.nodes as u64);
    metric("p4_workers", stats.workers as u64);
    metric(
        "residue_hit_rate_x100",
        (stats.residue_hit_rate() * 100.0) as u64,
    );
    println!(
        "p4 search: {} nodes, {} workers, residue hit rate {:.1}% ({} hits / {} misses)",
        stats.nodes,
        stats.workers,
        stats.residue_hit_rate() * 100.0,
        stats.residue_hits,
        stats.residue_misses,
    );

    // DomainCache: extending the R_A tower by one level vs rebuilding
    // R_A²(I) from scratch.
    let scratch = mean_ns(|| {
        assert!(affine_domain(&r_a, &inputs, 2).facet_count() > 0);
    });
    // The tower up to ℓ = 1 is paid once outside the measurement; each
    // sample clones it (cheap Arc clones) and extends it by one level.
    let mut seeded = DomainCache::new();
    seeded.domain(&r_a, &inputs, 1);
    let cached = mean_ns(|| {
        let mut cache = seeded.clone();
        assert!(cache.domain(&r_a, &inputs, 2).facet_count() > 0);
    });
    metric("domain_scratch_l2_mean_ns", scratch);
    metric("domain_cached_l2_mean_ns", cached);
    println!("R_A²(I): from scratch {scratch} ns, cached tower {cached} ns");
}

fn bench(c: &mut Criterion) {
    print_experiment_data();
    let n = samples();

    let alpha = AgreementFunction::of_adversary(&Adversary::t_resilient(3, 1));
    let r_a = fair_affine_task(&alpha);
    let t = SetConsensus::new(3, 2, &[0, 1, 2]);
    let inputs = t.rainbow_inputs();
    let domain = affine_domain(&r_a, &inputs, 1);

    // The PR-2 reference instance, same id as perf_scaling for direct
    // comparison across reports.
    let mut g = c.benchmark_group("p4_map_search");
    g.sample_size(n);
    g.bench_with_input(BenchmarkId::new("2set_1res", "serial"), &(), |b, ()| {
        let config = SearchConfig::serial(3_000_000);
        b.iter(|| {
            find_carried_map_with_config(&t, &domain, &config)
                .0
                .is_found()
        })
    });
    g.bench_with_input(BenchmarkId::new("2set_1res", "default"), &(), |b, ()| {
        b.iter(|| find_carried_map(&t, &domain, 3_000_000).is_found())
    });
    g.finish();
    c.bench_function("p4_map_search_2set_1res", |b| {
        b.iter(|| find_carried_map(&t, &domain, 3_000_000).is_found())
    });

    // Unsolvable side: pure propagation work (consensus on Chr²).
    c.bench_function("p6_consensus_unsolvable_chr2", |b| {
        let t = consensus(2, &[0, 1]);
        let domain = t.inputs().iterated_subdivision(2);
        b.iter(|| find_carried_map(&t, &domain, 1_000_000).is_unsolvable())
    });

    // Domain construction: from-scratch vs incremental tower.
    let mut g = c.benchmark_group("p6_domain_build");
    g.sample_size(n);
    g.bench_with_input(BenchmarkId::new("r_a_l2", "scratch"), &(), |b, ()| {
        b.iter(|| affine_domain(&r_a, &inputs, 2).facet_count())
    });
    g.bench_with_input(BenchmarkId::new("r_a_l2", "cached"), &(), |b, ()| {
        // The tower up to ℓ = 1 is paid once outside the measurement;
        // each sample then measures one incremental extension.
        let base = DomainCache::new();
        let mut seeded = base.clone();
        seeded.domain(&r_a, &inputs, 1);
        b.iter(|| {
            let mut cache = seeded.clone();
            cache.domain(&r_a, &inputs, 2).facet_count()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
