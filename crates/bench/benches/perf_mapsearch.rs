//! P6 — the map-search engine after the bitset/trail/residue rewrite:
//! serial and default engines on the PR-2 reference instance
//! (`p4_map_search/2set_1res/*`), unsolvable propagation-heavy searches,
//! and the incremental `DomainCache` against from-scratch domain builds.
//!
//! Every `*_mean_ns` metric (and every derived speedup) is read back
//! from the result row of the same run with
//! [`criterion::result_mean_ns`], so the `metrics` block of the JSON
//! report can never disagree with the rows it summarizes.
//!
//! The `p6_domain_build/r_a_l2` group measures four ways to obtain
//! `R_A²(I)`:
//!
//! * `scratch` — a full rebuild, two subdivision rounds per sample;
//! * `extend` — a cache already holding the ℓ = 1 tower is cloned and
//!   extended by exactly one `apply_to` per sample (the incremental
//!   path a deepening solver takes at every new level);
//! * `cached` — one persistent cache serves every sample, the steady
//!   state of a solver or server re-asking reachable depths; the first
//!   (warm-up) sample pays the build, the measured ones are pure tower
//!   reuse. CI enforces `cached_speedup_x100 >= 150` over `scratch`;
//! * `warm_restart` — a *fresh* cache per sample, backed by a
//!   `TowerStore` populated by an earlier process lifetime: every level
//!   is decoded from disk, zero subdivisions run;
//! * `orbit_hit` — the cache already holds the tower for one coloring
//!   of the query and a *color-permuted* client asks for the same
//!   domain: the resident tower is transported along the permutation
//!   (`domain.cache.orbit_hit`), zero subdivisions run. Each sample
//!   clones the seeded cache so every measurement is a fresh orbit
//!   transport, not a resident-tower lookup.
//!
//! The `speedup_vs_pr2*` metrics compare against the mean recorded by
//! the PR-2 engine for the same instance in `BENCH_perf_scaling.json`
//! (7 286 497 ns). `ACT_BENCH_SAMPLES` overrides the per-benchmark
//! sample count (default 10) so CI smoke runs can keep this cheap.

use std::sync::Arc;

use act_adversary::{Adversary, AgreementFunction};
use act_affine::{fair_affine_task, AffineTask};
use act_bench::{banner, metric};
use act_service::TowerStore;
use act_tasks::{
    consensus, find_carried_map, find_carried_map_with_config, find_carried_map_with_stats,
    SearchConfig, SetConsensus, Task,
};
use act_topology::{permute_complex, ColorPerm};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fact::{affine_domain, DomainCache, TowerPersistence};

/// Mean of the PR-2 engine (domain-cloning backtracking over
/// `Vec<VertexId>` domains) on the same reference instance.
const PR2_P4_MEAN_NS: u64 = 7_286_497;

fn samples() -> usize {
    std::env::var("ACT_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(10)
}

/// The mean of row `id`, which must have been reported in this run.
fn row_mean_ns(id: &str) -> u64 {
    criterion::result_mean_ns(id).unwrap_or_else(|| panic!("benchmark row {id:?} did not run"))
}

fn bench(c: &mut Criterion) {
    banner("P6", "map-search engine");
    let n = samples();

    let alpha = AgreementFunction::of_adversary(&Adversary::t_resilient(3, 1));
    let r_a = fair_affine_task(&alpha);
    let t = SetConsensus::new(3, 2, &[0, 1, 2]);
    let inputs = t.rainbow_inputs();
    let domain = affine_domain(&r_a, &inputs, 1);

    // The PR-2 reference instance, same group id as perf_scaling for
    // direct comparison across reports.
    let mut g = c.benchmark_group("p4_map_search");
    g.sample_size(n);
    g.bench_with_input(BenchmarkId::new("2set_1res", "serial"), &(), |b, ()| {
        let config = SearchConfig::serial(3_000_000);
        b.iter(|| {
            assert!(find_carried_map_with_config(&t, &domain, &config)
                .0
                .is_found())
        })
    });
    g.bench_with_input(BenchmarkId::new("2set_1res", "default"), &(), |b, ()| {
        b.iter(|| assert!(find_carried_map(&t, &domain, 3_000_000).is_found()))
    });
    g.finish();

    // Unsolvable side: pure propagation work (consensus on Chr²).
    c.bench_function("p6_consensus_unsolvable_chr2", |b| {
        let t = consensus(2, &[0, 1]);
        let domain = t.inputs().iterated_subdivision(2);
        b.iter(|| assert!(find_carried_map(&t, &domain, 1_000_000).is_unsolvable()))
    });

    // Domain construction: from-scratch rebuilds vs the three
    // incremental paths (see the module docs for what each row means).
    let store_dir =
        std::env::temp_dir().join(format!("fact-bench-towers-{}-{}", std::process::id(), "p6"));
    let _ = std::fs::remove_dir_all(&store_dir);
    let towers = Arc::new(TowerStore::open(&store_dir).expect("open bench tower store"));
    {
        // A prior lifetime populates the store (levels 1 and 2).
        let mut warmer =
            DomainCache::new().with_persistence(Arc::clone(&towers) as Arc<dyn TowerPersistence>);
        assert!(warmer.domain(&r_a, &inputs, 2).facet_count() > 0);
    }

    let mut g = c.benchmark_group("p6_domain_build");
    g.sample_size(n);
    g.bench_with_input(BenchmarkId::new("r_a_l2", "scratch"), &(), |b, ()| {
        b.iter(|| affine_domain(&r_a, &inputs, 2).facet_count())
    });
    g.bench_with_input(BenchmarkId::new("r_a_l2", "extend"), &(), |b, ()| {
        // The tower up to ℓ = 1 is paid once outside the measurement;
        // each sample clones it (cheap Arc clones) and extends it by
        // exactly one `apply_to`.
        let mut seeded = DomainCache::new();
        seeded.domain(&r_a, &inputs, 1);
        b.iter(|| {
            let mut cache = seeded.clone();
            cache.domain(&r_a, &inputs, 2).facet_count()
        })
    });
    g.bench_with_input(BenchmarkId::new("r_a_l2", "cached"), &(), |b, ()| {
        // One cache across all samples: the warm-up pays the build,
        // the measured samples are steady-state tower reuse.
        let mut cache = DomainCache::new();
        b.iter(|| cache.domain(&r_a, &inputs, 2).facet_count())
    });
    g.bench_with_input(BenchmarkId::new("r_a_l2", "warm_restart"), &(), |b, ()| {
        // A fresh cache per sample, as after a process restart: every
        // level is decoded from the tower store, zero subdivisions.
        b.iter(|| {
            let mut cache = DomainCache::new()
                .with_persistence(Arc::clone(&towers) as Arc<dyn TowerPersistence>);
            cache.domain(&r_a, &inputs, 2).facet_count()
        })
    });
    g.bench_with_input(BenchmarkId::new("r_a_l2", "orbit_hit"), &(), |b, ()| {
        // A color-permuted client asks for the tower the cache already
        // holds in another coloring: the resident tower is transported
        // along the permutation instead of being rebuilt. The seeded
        // cache is cloned per sample (cheap Arc clones) so every
        // measurement performs the transport, not a resident lookup.
        let perm = ColorPerm::from_images(&[2, 0, 1]).expect("a 3-cycle is a bijection");
        let r_a_p = AffineTask::new(
            format!("{}-permuted", r_a.name()),
            permute_complex(r_a.complex(), &perm),
        );
        let inputs_p = permute_complex(&inputs, &perm);
        let mut seeded = DomainCache::new();
        seeded.domain(&r_a, &inputs, 2);
        b.iter(|| {
            let mut cache = seeded.clone();
            cache.domain(&r_a_p, &inputs_p, 2).facet_count()
        })
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&store_dir);

    // Metrics, all derived from the rows above — never from a separate
    // timing loop.
    let serial = row_mean_ns("p4_map_search/2set_1res/serial");
    let default = row_mean_ns("p4_map_search/2set_1res/default");
    metric("p4_serial_mean_ns", serial);
    metric("p4_default_mean_ns", default);
    metric(
        "speedup_serial_vs_pr2",
        (PR2_P4_MEAN_NS + serial / 2) / serial.max(1),
    );
    metric(
        "speedup_serial_vs_pr2_x100",
        PR2_P4_MEAN_NS * 100 / serial.max(1),
    );
    metric(
        "speedup_vs_pr2",
        (PR2_P4_MEAN_NS + default / 2) / default.max(1),
    );
    metric("speedup_vs_pr2_x100", PR2_P4_MEAN_NS * 100 / default.max(1));
    println!(
        "p4 reference instance: PR-2 {} ns → serial {} ns ({:.1}x), default {} ns ({:.1}x)",
        PR2_P4_MEAN_NS,
        serial,
        PR2_P4_MEAN_NS as f64 / serial.max(1) as f64,
        default,
        PR2_P4_MEAN_NS as f64 / default.max(1) as f64,
    );

    let scratch = row_mean_ns("p6_domain_build/r_a_l2/scratch");
    let extend = row_mean_ns("p6_domain_build/r_a_l2/extend");
    let cached = row_mean_ns("p6_domain_build/r_a_l2/cached");
    let warm = row_mean_ns("p6_domain_build/r_a_l2/warm_restart");
    let orbit = row_mean_ns("p6_domain_build/r_a_l2/orbit_hit");
    metric("domain_scratch_l2_mean_ns", scratch);
    metric("domain_extend_l2_mean_ns", extend);
    metric("domain_cached_l2_mean_ns", cached);
    metric("warm_restart_l2_mean_ns", warm);
    metric("orbit_hit_l2_mean_ns", orbit);
    metric("cached_speedup_x100", scratch * 100 / cached.max(1));
    metric("extend_speedup_x100", scratch * 100 / extend.max(1));
    metric("warm_restart_speedup_x100", scratch * 100 / warm.max(1));
    metric("orbit_hit_speedup_x100", scratch * 100 / orbit.max(1));
    println!(
        "R_A²(I): scratch {scratch} ns, extend {extend} ns, cached {cached} ns, \
         warm restart {warm} ns, orbit hit {orbit} ns"
    );

    // Residual-support effectiveness on the reference search (telemetry
    // counters, not timings — these have no result row to read back).
    let (result, stats) = find_carried_map_with_stats(&t, &domain, 3_000_000);
    assert!(result.is_found());
    metric("p4_nodes", stats.nodes as u64);
    metric("p4_workers", stats.workers as u64);
    metric(
        "residue_hit_rate_x100",
        (stats.residue_hit_rate() * 100.0) as u64,
    );
    println!(
        "p4 search: {} nodes, {} workers, residue hit rate {:.1}% ({} hits / {} misses)",
        stats.nodes,
        stats.workers,
        stats.residue_hit_rate() * 100.0,
        stats.residue_hits,
        stats.residue_misses,
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
