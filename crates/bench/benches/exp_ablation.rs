//! Experiment E9 — ablations of the design choices DESIGN.md calls out:
//!
//! 1. **The waiting phase of Algorithm 1** (Lines 5–9): disabling it lets
//!    processes overtake without a critical excuse, and outputs escape
//!    `R_A` — measured violation rates under random schedules.
//! 2. **Definition 9's side condition**: the union (proofs) vs triple
//!    intersection (printed definition) readings, across every fair
//!    3-process adversary.
//! 3. **Immediate-snapshot substrate**: the scheduled Borowsky–Gafni
//!    protocol vs the OSP oracle, timed.

use act_adversary::{zoo, AgreementFunction};
use act_affine::{fair_affine_task, fair_affine_task_with, CriticalSideCondition};
use act_bench::{banner, metric, model_portfolio};
use act_runtime::{run_adversarial, run_iis_with_bg};
use act_topology::ColorSet;
use criterion::{criterion_group, criterion_main, Criterion};
use fact::{outputs_to_simplex, AlgorithmOneSystem};
use rand::SeedableRng;

fn print_experiment_data() {
    banner("E9.1", "ablation: Algorithm 1 without its waiting phase");
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(91);
    println!(
        "{:<22} {:>8} {:>12} {:>12}",
        "model", "runs", "violations", "with waiting"
    );
    for (name, alpha, power) in model_portfolio() {
        if power == 0 {
            continue;
        }
        let r_a = fair_affine_task(&alpha);
        let full = ColorSet::full(3);
        let runs = 400usize;
        let mut violations = 0usize;
        let mut control = 0usize;
        for _ in 0..runs {
            let mut sys = AlgorithmOneSystem::new_without_waiting(&alpha, full);
            let outcome = run_adversarial(&mut sys, full, full, &mut rng, |_| 0, 200_000);
            assert!(outcome.all_correct_terminated);
            let simplex = outputs_to_simplex(r_a.complex(), &sys.outputs()).unwrap();
            violations += usize::from(!r_a.complex().contains_simplex(&simplex));

            let mut sys = AlgorithmOneSystem::new(&alpha, full);
            let outcome = run_adversarial(&mut sys, full, full, &mut rng, |_| 0, 200_000);
            assert!(outcome.all_correct_terminated);
            let simplex = outputs_to_simplex(r_a.complex(), &sys.outputs()).unwrap();
            control += usize::from(!r_a.complex().contains_simplex(&simplex));
        }
        println!("{name:<22} {runs:>8} {violations:>12} {control:>12}");
        assert_eq!(control, 0, "the real algorithm never violates safety");
        if alpha.alpha(full) < 3 {
            assert!(
                violations > 0,
                "{name}: removing the waiting phase must break safety"
            );
        }
    }

    banner(
        "E9.2",
        "ablation: Definition 9 side-condition reading (all fair adversaries)",
    );
    let mut differ = 0usize;
    let mut total = 0usize;
    for a in zoo::all_fair_adversaries(3) {
        if a.setcon() == 0 {
            continue;
        }
        let alpha = AgreementFunction::of_adversary(&a);
        let union = fair_affine_task_with(&alpha, CriticalSideCondition::Union);
        let triple = fair_affine_task_with(&alpha, CriticalSideCondition::TripleIntersection);
        let u = union.complex().canonical_facets();
        let t = triple.complex().canonical_facets();
        assert!(t.is_subset(&u), "triple reading is always a refinement");
        differ += usize::from(t != u);
        total += 1;
    }
    println!("fair models where the readings differ: {differ} / {total}");
    assert!(differ > 0);
    metric("exp9_readings_differ", differ as u64);
    metric("exp9_fair_models", total as u64);
}

fn bench(c: &mut Criterion) {
    print_experiment_data();

    let alpha = AgreementFunction::k_concurrency(3, 1);
    let full = ColorSet::full(3);
    c.bench_function("exp9_algorithm1_with_waiting", |b| {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(92);
        b.iter(|| {
            let mut sys = AlgorithmOneSystem::new(&alpha, full);
            run_adversarial(&mut sys, full, full, &mut rng, |_| 0, 200_000).steps
        })
    });
    c.bench_function("exp9_algorithm1_without_waiting", |b| {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(93);
        b.iter(|| {
            let mut sys = AlgorithmOneSystem::new_without_waiting(&alpha, full);
            run_adversarial(&mut sys, full, full, &mut rng, |_| 0, 200_000).steps
        })
    });
    c.bench_function("exp9_bg_is_round_executed", |b| {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(94);
        b.iter(|| run_iis_with_bg(3, full, 1, &mut rng))
    });
    c.bench_function("exp9_oracle_is_round", |b| {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(95);
        b.iter(|| act_runtime::random_osp(full, &mut rng))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
