//! Experiments E1/E2 — Theorem 7: Algorithm 1 solves `R_A` in the
//! α-model. Safety (Lemma 6: outputs form a simplex of `R_A`) and
//! liveness (Lemma 5: every correct process decides) over randomized
//! adversarial schedules for the whole model portfolio, plus timed
//! throughput of the algorithm.

use act_affine::fair_affine_task;
use act_bench::{banner, metric, model_portfolio};
use act_runtime::run_adversarial;
use act_topology::ColorSet;
use criterion::{criterion_group, criterion_main, Criterion};
use fact::{outputs_to_simplex, AlgorithmOneSystem};
use rand::SeedableRng;

fn print_experiment_data() {
    banner("E1/E2", "Algorithm 1 safety + liveness (Theorem 7)");
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
    println!(
        "{:<22} {:>6} {:>8} {:>8} {:>10} {:>14}",
        "model", "runs", "live", "safe", "avg steps", "distinct out"
    );
    for (name, alpha, power) in model_portfolio() {
        let r_a = fair_affine_task(&alpha);
        let full = ColorSet::full(3);
        let mut live = 0usize;
        let mut safe = 0usize;
        let mut steps = 0usize;
        let mut distinct = std::collections::BTreeSet::new();
        let runs = 300usize;
        for trial in 0..runs {
            // Admissible fault pattern: fewer than α(P) failures.
            let faulty = if power >= 2 && trial % 3 == 0 {
                ColorSet::from_indices([trial % 3])
            } else {
                ColorSet::EMPTY
            };
            let correct = full.minus(faulty);
            let mut sys = AlgorithmOneSystem::new(&alpha, full);
            let outcome = run_adversarial(
                &mut sys,
                full,
                correct,
                &mut rng,
                |_| (trial % 5) * 2,
                300_000,
            );
            live += usize::from(outcome.all_correct_terminated);
            steps += outcome.steps;
            let simplex = outputs_to_simplex(r_a.complex(), &sys.outputs()).unwrap();
            safe += usize::from(r_a.complex().contains_simplex(&simplex));
            distinct.insert(simplex);
        }
        println!(
            "{:<22} {:>6} {:>8} {:>8} {:>10} {:>14}",
            name,
            runs,
            live,
            safe,
            steps / runs,
            distinct.len()
        );
        assert_eq!(live, runs, "liveness must hold on every admissible run");
        assert_eq!(safe, runs, "safety must hold on every admissible run");
        metric(&format!("exp1_live_runs_{name}"), live as u64);
    }
}

fn bench(c: &mut Criterion) {
    print_experiment_data();

    for (name, alpha, _) in model_portfolio().into_iter().take(3) {
        c.bench_function(&format!("exp1_algorithm1_run_{name}"), |b| {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
            let full = ColorSet::full(3);
            b.iter(|| {
                let mut sys = AlgorithmOneSystem::new(&alpha, full);
                run_adversarial(&mut sys, full, full, &mut rng, |_| 0, 300_000).steps
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
