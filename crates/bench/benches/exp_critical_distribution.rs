//! Experiment E3 — Lemma 3 / Corollary 4: the distribution of critical
//! simplices. For every simplex of `Chr s` and every agreement level `l`,
//! the minimal hitting set of the critical simplices with power ≥ `l` is
//! at least `α(χ(σ)) − l + 1` (adjusted for missing participation per
//! Corollary 4) — verified exhaustively over the model portfolio and the
//! full fair-adversary census.

use act_adversary::{csize_of_sets, zoo, AgreementFunction};
use act_affine::CriticalAnalysis;
use act_bench::{banner, metric, model_portfolio};
use act_topology::{ColorSet, Complex};
use criterion::{criterion_group, criterion_main, Criterion};

fn check_model(chr: &Complex, alpha: &AgreementFunction) -> (usize, usize) {
    let mut crit = CriticalAnalysis::new(chr, alpha);
    let mut checked = 0usize;
    let mut tight = 0usize;
    let mut all = std::collections::BTreeSet::new();
    for facet in chr.facets() {
        for face in facet.non_empty_faces() {
            all.insert(face);
        }
    }
    for sigma in &all {
        let carrier = chr.carrier_colors(sigma);
        let missing = carrier.minus(chr.colors(sigma)).len();
        let power = alpha.alpha(carrier);
        for level in 1..=3usize {
            let witnesses: Vec<ColorSet> = crit
                .critical_at_least(sigma, level)
                .iter()
                .map(|t| chr.colors(t))
                .collect();
            let hitting = csize_of_sets(&witnesses);
            let bound = (power + 1).saturating_sub(level + missing);
            assert!(
                hitting >= bound,
                "Corollary 4 violated: σ = {sigma:?}, l = {level}"
            );
            checked += 1;
            tight += usize::from(hitting == bound);
        }
    }
    (checked, tight)
}

fn print_experiment_data() {
    banner(
        "E3",
        "distribution of critical simplices (Lemma 3 / Corollary 4)",
    );
    let chr = Complex::standard(3).chromatic_subdivision();
    println!("{:<22} {:>10} {:>10}", "model", "checked", "tight");
    for (name, alpha, _) in model_portfolio() {
        let (checked, tight) = check_model(&chr, &alpha);
        println!("{name:<22} {checked:>10} {tight:>10}");
    }
    // Full census of fair adversaries.
    let mut census_checked = 0usize;
    for a in zoo::all_fair_adversaries(3) {
        let alpha = AgreementFunction::of_adversary(&a);
        let (c, _) = check_model(&chr, &alpha);
        census_checked += c;
    }
    println!("fair-adversary census: {census_checked} inequalities verified, 0 violations");
    metric("exp3_census_inequalities", census_checked as u64);
}

fn bench(c: &mut Criterion) {
    print_experiment_data();

    let chr = Complex::standard(3).chromatic_subdivision();
    let alpha = AgreementFunction::of_adversary(&zoo::figure_5b_adversary());
    c.bench_function("exp3_corollary4_full_check", |b| {
        b.iter(|| check_model(&chr, &alpha))
    });
    let chr4 = Complex::standard(4).chromatic_subdivision();
    let alpha4 = AgreementFunction::k_concurrency(4, 2);
    c.bench_function("exp3_corollary4_full_check_n4", |b| {
        b.iter(|| check_model(&chr4, &alpha4))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
