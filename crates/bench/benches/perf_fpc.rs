//! FPC workload throughput: seeded simulator runs/second and the
//! rounds-to-finality distribution per malicious strategy.
//!
//! Each strategy contributes one row to `BENCH_perf_fpc.json` carrying
//! the stub's timing fields plus result metrics attached via
//! `record_result_metric`: `runs_per_sec`, `rounds_p50`, and
//! `rounds_p99` (plus the node count for context). The perf-smoke CI
//! job asserts this schema.

use act_bench::{banner, metric};
use act_fpc::{run_stats, FpcSpec};
use criterion::{criterion_group, criterion_main, record_result_metric, BenchmarkId, Criterion};
use std::time::Instant;

const STRATEGIES: [&str; 3] = ["cautious", "berserk", "fixed-split"];

fn samples() -> usize {
    std::env::var("ACT_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(10)
}

/// Size of the dedicated throughput batch each strategy runs once; the
/// criterion-timed loop uses a tenth of this per iteration.
fn batch_runs() -> u64 {
    std::env::var("ACT_BENCH_FPC_RUNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(5_000)
}

fn spec_for(strategy: &str) -> FpcSpec {
    FpcSpec::parse(&format!("fpc:32:8:{strategy}:10:600")).expect("bench spec parses")
}

fn bench(c: &mut Criterion) {
    banner(
        "P9",
        "FPC workloads: runs/sec + rounds-to-finality by strategy",
    );
    let runs = batch_runs();

    let mut g = c.benchmark_group("fpc");
    g.sample_size(samples());
    for strategy in STRATEGIES {
        let spec = spec_for(strategy);
        let id = BenchmarkId::new("seeded_runs", strategy);
        let timed = (runs / 10).max(500);
        g.bench_with_input(id, &spec, |b, spec| {
            b.iter(|| run_stats(spec, timed, 0xFAC7))
        });

        // One fixed-size batch per strategy gives the headline numbers;
        // the statistics are a pure function of (spec, runs, seed), so
        // re-running this bench reproduces them bit for bit.
        let t0 = Instant::now();
        let stats = run_stats(&spec, runs, 0xFAC7);
        let rps = runs as f64 / t0.elapsed().as_secs_f64().max(f64::EPSILON);
        assert_eq!(stats.runs, runs);
        println!(
            "fpc {strategy}: {runs} runs, {rps:.0} runs/sec, rounds p50 {} p99 {} max {}",
            stats.rounds_p50, stats.rounds_p99, stats.rounds_max
        );
        let row = format!("fpc/seeded_runs/{strategy}");
        record_result_metric(&row, "runs_per_sec", rps);
        record_result_metric(&row, "rounds_p50", stats.rounds_p50 as f64);
        record_result_metric(&row, "rounds_p99", stats.rounds_p99 as f64);
        record_result_metric(&row, "nodes", 32.0);
        metric(&format!("rounds_p50_{strategy}"), stats.rounds_p50);
    }
    g.finish();
    metric("fpc_runs", runs);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
