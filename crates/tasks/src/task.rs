//! Distributed tasks `(I, O, Δ)` as chromatic complexes plus a carrier map.

use std::collections::HashMap;

use act_topology::{ColorPerm, ColorSet, Complex, ProcessId, Simplex, SYMMETRY_MAX_DEGREE};

/// A declared symmetry of a task: a color permutation `π`, optionally
/// paired with label relabelings, under which the task is invariant:
/// `I` and `O` map onto themselves and
/// `output ∈ Δ(input)  ⟺  g(output) ∈ Δ(g(input))`.
///
/// The label maps must be bijections on the labels they touch; `None`
/// means labels are fixed. Implementations of [`Task::symmetries`] are
/// trusted to return only genuine symmetries — the map search uses them
/// to add symmetry-breaking (lex-leader) constraints, so a bogus entry
/// can prune real solutions. The search independently verifies that each
/// declared symmetry lifts to an automorphism of the concrete search
/// domain and of the output complex (via [`act_topology::chain_action`])
/// and silently skips the ones that do not.
#[derive(Clone, Debug)]
pub struct TaskSymmetry {
    /// The color permutation `π`.
    pub color: ColorPerm,
    /// Relabeling applied to input labels alongside `π` (`None` = fixed).
    pub input_labels: Option<HashMap<u64, u64>>,
    /// Relabeling applied to output labels alongside `π` (`None` = fixed).
    pub output_labels: Option<HashMap<u64, u64>>,
}

/// A distributed task `T = (I, O, Δ)` (Section 2 of the paper).
///
/// Inputs and outputs are level-0 chromatic complexes whose vertex labels
/// are the task values; `Δ` is represented by the [`Task::allows`]
/// predicate. Implementations must keep `allows` *monotone*: if an output
/// simplex is allowed, so is each of its faces (this is what makes `Δ` a
/// carrier map and enables incremental pruning in the map search).
///
/// `Send + Sync` is a supertrait so the parallel map-search engine can
/// share a `&dyn Task` across its scoped worker threads.
pub trait Task: Send + Sync {
    /// Display name of the task.
    fn name(&self) -> String;

    /// The number of processes.
    fn num_processes(&self) -> usize;

    /// The input complex `I`.
    fn inputs(&self) -> &Complex;

    /// The output complex `O`.
    fn outputs(&self) -> &Complex;

    /// Whether the output simplex is allowed when the participating
    /// processes' inputs form `input`: `output ∈ Δ(input)`.
    ///
    /// Only called with `input ∈ I`, `output ∈ O` and
    /// `χ(output) ⊆ χ(input)`; must be monotone in `output`.
    fn allows(&self, input: &Simplex, output: &Simplex) -> bool;

    /// The task's declared symmetries (see [`TaskSymmetry`]); the map
    /// search breaks them with lex-leader constraints so only one witness
    /// per orbit is explored. The default — no symmetries — is always
    /// sound. Every returned entry must be a genuine symmetry of `Δ`.
    fn symmetries(&self) -> Vec<TaskSymmetry> {
        Vec::new()
    }
}

/// Builds the pseudosphere input complex: every process independently
/// receives any value from `values`; facets are all full assignments.
///
/// # Panics
///
/// Panics if `values` is empty or `n` is 0.
pub fn pseudosphere(n: usize, values: &[u64]) -> Complex {
    assert!(
        n >= 1 && !values.is_empty(),
        "pseudosphere needs processes and values"
    );
    let mut verts = Vec::with_capacity(n * values.len());
    for p in 0..n {
        for &v in values {
            verts.push((ProcessId::new(p), v));
        }
    }
    // Facets: one vertex per process, every combination.
    let mut facets = Vec::new();
    let mut choice = vec![0usize; n];
    loop {
        facets.push(
            (0..n)
                .map(|p| p * values.len() + choice[p])
                .collect::<Vec<_>>(),
        );
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == n {
                return Complex::from_labeled_vertices(n, verts, facets);
            }
            choice[i] += 1;
            if choice[i] < values.len() {
                break;
            }
            choice[i] = 0;
            i += 1;
        }
    }
}

/// The `k`-set consensus task: processes propose values from a fixed set
/// and must decide on at most `k` distinct proposed values (validity +
/// `k`-agreement). `k = 1` is consensus.
///
/// # Examples
///
/// ```
/// use act_tasks::{SetConsensus, Task};
///
/// let t = SetConsensus::new(3, 2, &[0, 1, 2]);
/// assert_eq!(t.name(), "2-set consensus (3 processes, 3 values)");
/// assert_eq!(t.inputs().facet_count(), 27);
/// ```
#[derive(Clone, Debug)]
pub struct SetConsensus {
    n: usize,
    k: usize,
    values: Vec<u64>,
    inputs: Complex,
    outputs: Complex,
}

impl SetConsensus {
    /// Creates the `k`-set consensus task over `n` processes with the
    /// given proposal values.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or `values` has fewer than `k + 1` distinct
    /// values (the task would be trivial).
    pub fn new(n: usize, k: usize, values: &[u64]) -> SetConsensus {
        assert!(k >= 1, "k-set consensus needs k ≥ 1");
        let mut distinct = values.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(
            distinct.len() > k,
            "k-set consensus needs more than k distinct values to be non-trivial"
        );
        let inputs = pseudosphere(n, &distinct);
        // Output complex: all colorful simplices using at most k distinct
        // values.
        let mut verts = Vec::new();
        for p in 0..n {
            for &v in &distinct {
                verts.push((ProcessId::new(p), v));
            }
        }
        let mut facets = Vec::new();
        // Facets: choose one value per process such that ≤ k distinct.
        let mut choice = vec![0usize; n];
        'outer: loop {
            let mut used: Vec<u64> = choice.iter().map(|&c| distinct[c]).collect();
            used.sort_unstable();
            used.dedup();
            if used.len() <= k {
                facets.push(
                    (0..n)
                        .map(|p| p * distinct.len() + choice[p])
                        .collect::<Vec<_>>(),
                );
            }
            let mut i = 0;
            loop {
                if i == n {
                    break 'outer;
                }
                choice[i] += 1;
                if choice[i] < distinct.len() {
                    break;
                }
                choice[i] = 0;
                i += 1;
            }
        }
        let outputs = Complex::from_labeled_vertices(n, verts, facets);
        SetConsensus {
            n,
            k,
            values: distinct,
            inputs,
            outputs,
        }
    }

    /// The agreement parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The proposal values.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// The *rainbow* restriction of the input complex: the single facet
    /// where process `i` proposes the `i`-th value (cyclically). Searching
    /// on it is much cheaper, and a non-existence result on a sub-complex
    /// of the inputs implies non-existence on the full inputs.
    pub fn rainbow_inputs(&self) -> Complex {
        let i = &self.inputs;
        let m = self.values.len();
        let facet = i
            .facets()
            .iter()
            .find(|f| {
                f.vertices()
                    .iter()
                    .all(|&v| i.vertex(v).label == self.values[i.color(v).index() % m])
            })
            .expect("the rainbow facet exists in the pseudosphere")
            .clone();
        i.sub_complex(vec![facet])
    }
}

impl Task for SetConsensus {
    fn name(&self) -> String {
        format!(
            "{}-set consensus ({} processes, {} values)",
            self.k,
            self.n,
            self.values.len()
        )
    }

    fn num_processes(&self) -> usize {
        self.n
    }

    fn inputs(&self) -> &Complex {
        &self.inputs
    }

    fn outputs(&self) -> &Complex {
        &self.outputs
    }

    fn allows(&self, input: &Simplex, output: &Simplex) -> bool {
        // Validity: every decided value was proposed by a participant.
        // k-agreement: at most k distinct decided values.
        let proposed: Vec<u64> = input
            .vertices()
            .iter()
            .map(|&v| self.inputs.vertex(v).label)
            .collect();
        let mut decided: Vec<u64> = output
            .vertices()
            .iter()
            .map(|&v| self.outputs.vertex(v).label)
            .collect();
        decided.sort_unstable();
        decided.dedup();
        decided.len() <= self.k && decided.iter().all(|d| proposed.contains(d))
    }

    fn symmetries(&self) -> Vec<TaskSymmetry> {
        // Validity and k-agreement see only the *sets* of proposed and
        // decided values, so every color permutation π fixes Δ outright.
        // With exactly n distinct proposal values the diagonal action
        // that also relabels values[i] → values[π(i)] is a symmetry too
        // — the one that survives on rainbow-restricted inputs, where
        // process i proposes the i-th value.
        if self.n > SYMMETRY_MAX_DEGREE {
            return Vec::new();
        }
        let mut out = Vec::new();
        for perm in ColorPerm::all(self.n) {
            if perm.is_identity() {
                continue;
            }
            out.push(TaskSymmetry {
                color: perm.clone(),
                input_labels: None,
                output_labels: None,
            });
            if self.values.len() == self.n {
                let map: HashMap<u64, u64> = (0..self.n)
                    .map(|i| {
                        (
                            self.values[i],
                            self.values[perm.apply(ProcessId::new(i)).index()],
                        )
                    })
                    .collect();
                out.push(TaskSymmetry {
                    color: perm,
                    input_labels: Some(map.clone()),
                    output_labels: Some(map),
                });
            }
        }
        out
    }
}

/// Consensus: 1-set consensus.
pub fn consensus(n: usize, values: &[u64]) -> SetConsensus {
    SetConsensus::new(n, 1, values)
}

/// The trivial task: every process outputs its own input (solvable in any
/// model without communication) — a sanity baseline for the solver.
#[derive(Clone, Debug)]
pub struct TrivialTask {
    n: usize,
    inputs: Complex,
    outputs: Complex,
}

impl TrivialTask {
    /// Creates the trivial task over `n` processes and the given values.
    pub fn new(n: usize, values: &[u64]) -> TrivialTask {
        let inputs = pseudosphere(n, values);
        let outputs = pseudosphere(n, values);
        TrivialTask { n, inputs, outputs }
    }
}

impl Task for TrivialTask {
    fn name(&self) -> String {
        format!("trivial ({} processes)", self.n)
    }

    fn num_processes(&self) -> usize {
        self.n
    }

    fn inputs(&self) -> &Complex {
        &self.inputs
    }

    fn outputs(&self) -> &Complex {
        &self.outputs
    }

    fn allows(&self, input: &Simplex, output: &Simplex) -> bool {
        // Each participant outputs exactly its input value.
        output.vertices().iter().all(|&ov| {
            let color = self.outputs.color(ov);
            let value = self.outputs.vertex(ov).label;
            input
                .vertices()
                .iter()
                .any(|&iv| self.inputs.color(iv) == color && self.inputs.vertex(iv).label == value)
        })
    }
}

/// The participating-set-style *election* task used in the compactness
/// experiment: every process outputs a process id that must be a
/// participating process, and all outputs must coincide (leader election —
/// equivalent to consensus on ids).
#[derive(Clone, Debug)]
pub struct LeaderElection {
    inner: SetConsensus,
}

impl LeaderElection {
    /// Creates leader election over `n` processes: consensus on ids.
    pub fn new(n: usize) -> LeaderElection {
        let ids: Vec<u64> = (0..n as u64).collect();
        LeaderElection {
            inner: SetConsensus::new(n, 1, &ids),
        }
    }
}

impl Task for LeaderElection {
    fn name(&self) -> String {
        format!("leader election ({} processes)", self.inner.n)
    }
    fn num_processes(&self) -> usize {
        self.inner.n
    }
    fn inputs(&self) -> &Complex {
        self.inner.inputs()
    }
    fn outputs(&self) -> &Complex {
        self.inner.outputs()
    }
    fn allows(&self, input: &Simplex, output: &Simplex) -> bool {
        self.inner.allows(input, output)
    }
    fn symmetries(&self) -> Vec<TaskSymmetry> {
        // Δ is literally the inner consensus-on-ids Δ.
        self.inner.symmetries()
    }
}

/// Returns the participating colors of an input simplex.
pub fn participants_of(inputs: &Complex, input: &Simplex) -> ColorSet {
    inputs.colors(input)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pseudosphere_shape() {
        let c = pseudosphere(3, &[0, 1]);
        assert_eq!(c.num_vertices(), 6);
        assert_eq!(c.facet_count(), 8);
        assert!(c.is_chromatic());
        assert!(c.is_pure());
    }

    #[test]
    fn set_consensus_outputs_respect_k() {
        let t = SetConsensus::new(3, 2, &[0, 1, 2]);
        for f in t
            .outputs()
            .facet_count()
            .checked_sub(0)
            .map(|_| t.outputs().facets())
            .unwrap()
        {
            let mut vals: Vec<u64> = f
                .vertices()
                .iter()
                .map(|&v| t.outputs().vertex(v).label)
                .collect();
            vals.sort_unstable();
            vals.dedup();
            assert!(vals.len() <= 2);
        }
        // 27 total assignments − 6 rainbow (all distinct) = 21.
        assert_eq!(t.outputs().facet_count(), 21);
    }

    #[test]
    fn allows_checks_validity_and_agreement() {
        let t = consensus(2, &[0, 1]);
        let i = t.inputs();
        let o = t.outputs();
        // Input: p1 proposes 0, p2 proposes 1.
        let input = i
            .facets()
            .iter()
            .find(|f| {
                let labels: Vec<u64> = f.vertices().iter().map(|&v| i.vertex(v).label).collect();
                labels == vec![0, 1]
            })
            .unwrap();
        // Output both 0: allowed.
        let both0 = o
            .facets()
            .iter()
            .find(|f| f.vertices().iter().all(|&v| o.vertex(v).label == 0))
            .unwrap();
        assert!(t.allows(input, both0));
        // Input both 1: output both 0 violates validity.
        let input11 = i
            .facets()
            .iter()
            .find(|f| f.vertices().iter().all(|&v| i.vertex(v).label == 1))
            .unwrap();
        assert!(!t.allows(input11, both0));
    }

    #[test]
    fn allows_is_monotone() {
        let t = SetConsensus::new(3, 2, &[0, 1, 2]);
        let input = t.inputs().facets()[5].clone();
        for out_facet in t.outputs().facets().iter().take(10) {
            if t.allows(&input, out_facet) {
                for face in out_facet.non_empty_faces() {
                    assert!(t.allows(&input, &face), "monotonicity violated");
                }
            }
        }
    }

    #[test]
    fn trivial_task_allows_identity_only() {
        let t = TrivialTask::new(2, &[3, 4]);
        let i = t.inputs();
        let input = i.facets()[0].clone();
        let labels: Vec<(usize, u64)> = input
            .vertices()
            .iter()
            .map(|&v| (i.color(v).index(), i.vertex(v).label))
            .collect();
        // The matching output facet is allowed.
        let o = t.outputs();
        let matching = o
            .facets()
            .iter()
            .find(|f| {
                f.vertices()
                    .iter()
                    .map(|&v| (o.color(v).index(), o.vertex(v).label))
                    .collect::<Vec<_>>()
                    == labels
            })
            .unwrap();
        assert!(t.allows(&input, matching));
        // Any differing output facet is not.
        let differing = o
            .facets()
            .iter()
            .find(|f| {
                f.vertices()
                    .iter()
                    .map(|&v| (o.color(v).index(), o.vertex(v).label))
                    .collect::<Vec<_>>()
                    != labels
            })
            .unwrap();
        assert!(!t.allows(&input, differing));
    }

    #[test]
    #[should_panic(expected = "non-trivial")]
    fn degenerate_set_consensus_rejected() {
        let _ = SetConsensus::new(3, 3, &[0, 1, 2]);
    }

    #[test]
    fn leader_election_is_consensus_on_ids() {
        let t = LeaderElection::new(3);
        assert_eq!(t.inputs().facet_count(), 27);
        assert_eq!(t.num_processes(), 3);
        assert_eq!(
            t.symmetries().len(),
            SetConsensus::new(3, 1, &[0, 1, 2]).symmetries().len()
        );
    }

    #[test]
    fn declared_symmetries_are_genuine() {
        // The symmetry-breaking search trusts `symmetries()`: verify the
        // contract exhaustively for a small instance — each declared
        // action lifts to I and O and commutes with Δ on every
        // (input facet, output facet) pair.
        use act_topology::{chain_action, LabelMatching};
        let t = SetConsensus::new(3, 2, &[0, 1, 2]);
        let syms = t.symmetries();
        // 5 non-identity permutations of S₃, pure only (4 values ≠ n is
        // false here: 3 values == n=3, so diagonal entries double it).
        assert_eq!(syms.len(), 10);
        for sym in &syms {
            let in_matching = match &sym.input_labels {
                Some(m) => LabelMatching::Relabeled(m),
                None => LabelMatching::Strict,
            };
            let gi =
                chain_action(t.inputs(), &sym.color, in_matching).expect("inputs admit the action");
            assert!(gi.preserves_facets(t.inputs()));
            let out_matching = match &sym.output_labels {
                Some(m) => LabelMatching::Relabeled(m),
                None => LabelMatching::Strict,
            };
            let go = chain_action(t.outputs(), &sym.color, out_matching)
                .expect("outputs admit the action");
            assert!(go.preserves_facets(t.outputs()));
            for input in t.inputs().facets() {
                for output in t.outputs().facets() {
                    assert_eq!(
                        t.allows(input, output),
                        t.allows(&gi.apply_simplex(0, input), &go.apply_simplex(0, output)),
                        "Δ must be invariant under every declared symmetry"
                    );
                }
            }
        }
    }

    #[test]
    fn tasks_without_declared_symmetries_default_to_none() {
        assert!(TrivialTask::new(2, &[0, 1]).symmetries().is_empty());
        // With values.len() != n only the pure color actions are
        // declared: S₂ has one non-identity element.
        assert_eq!(SetConsensus::new(2, 1, &[0, 1, 2]).symmetries().len(), 1);
    }
}
