//! Deciding the existence of a chromatic simplicial map carried by a
//! task's carrier map — the computational content of the (F)ACT statement
//! "`T` is solvable iff there is `ℓ` and `φ : R_A^ℓ(I) → O` carried by Δ".
//!
//! The decision procedure is a constraint search. Every used vertex of the
//! (subdivided) domain is a variable whose values are same-colored output
//! vertices; every facet contributes one table constraint whose allowed
//! tuples are precomputed (facets have at most `n` vertices and a handful
//! of candidate values each, so tables are small). Generalized arc
//! consistency over the tables plus backtracking makes both directions —
//! finding maps and *exhausting* the space (unsolvability proofs) —
//! practical for the paper's instances.

use std::collections::HashMap;

use act_topology::{Complex, Simplex, VertexId, VertexMap};

use crate::task::Task;

/// The verdict of a bounded map search.
#[derive(Clone, Debug)]
pub enum SearchResult {
    /// A carried chromatic simplicial map exists.
    Found(VertexMap),
    /// No such map exists (the search space was exhausted).
    Unsolvable,
    /// The step budget ran out before the search completed.
    Exhausted,
}

impl SearchResult {
    /// Whether a map was found.
    pub fn is_found(&self) -> bool {
        matches!(self, SearchResult::Found(_))
    }

    /// Whether unsolvability was established.
    pub fn is_unsolvable(&self) -> bool {
        matches!(self, SearchResult::Unsolvable)
    }

    /// The found map, if any.
    pub fn into_map(self) -> Option<VertexMap> {
        match self {
            SearchResult::Found(m) => Some(m),
            _ => None,
        }
    }

    /// A short machine-readable name of the verdict.
    pub fn verdict_name(&self) -> &'static str {
        match self {
            SearchResult::Found(_) => "found",
            SearchResult::Unsolvable => "unsolvable",
            SearchResult::Exhausted => "exhausted",
        }
    }
}

/// Telemetry tallies of one [`find_carried_map`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// CSP variables (used domain vertices).
    pub variables: usize,
    /// Table constraints (facets of the domain).
    pub constraints: usize,
    /// Backtracking nodes visited.
    pub nodes: usize,
    /// Candidate values pruned by generalized arc consistency.
    pub prunes: usize,
    /// Domain wipe-outs (dead ends detected by propagation).
    pub wipeouts: usize,
    /// Node budget left when the search returned (0 when exhausted).
    pub budget_remaining: usize,
    /// Subdivision depth (level) of the searched domain.
    pub depth: usize,
}

/// Process-global count of backtracking nodes across all map searches.
pub static SEARCH_NODES: act_obs::Counter = act_obs::Counter::new("mapsearch.nodes");
/// Process-global count of GAC prunes across all map searches.
pub static SEARCH_PRUNES: act_obs::Counter = act_obs::Counter::new("mapsearch.prunes");

/// Internal CSP representation: variables are used domain vertices
/// (re-indexed densely), values are output vertex ids.
struct Csp {
    /// Dense index -> domain vertex.
    vars: Vec<VertexId>,
    /// Domain vertex -> dense index.
    var_of: HashMap<VertexId, usize>,
    /// Per variable: candidate output vertices (current domains).
    domains: Vec<Vec<VertexId>>,
    /// Per facet: member variables and the precomputed allowed tuples
    /// (aligned with the member order).
    constraints: Vec<TableConstraint>,
    /// Per variable: indices of constraints it appears in.
    constraints_of: Vec<Vec<usize>>,
}

struct TableConstraint {
    members: Vec<usize>,
    tuples: Vec<Vec<VertexId>>,
}

impl Csp {
    fn build(task: &dyn Task, domain: &Complex) -> Option<Csp> {
        let outputs = task.outputs();
        let vars: Vec<VertexId> = domain.used_vertices();
        let var_of: HashMap<VertexId, usize> =
            vars.iter().enumerate().map(|(i, &v)| (v, i)).collect();

        // Initial per-vertex domains.
        let mut domains = Vec::with_capacity(vars.len());
        for &v in &vars {
            let color = domain.color(v);
            let carrier = &domain.vertex(v).base_carrier;
            let cands: Vec<VertexId> = (0..outputs.num_vertices())
                .map(VertexId::from_index)
                .filter(|&w| {
                    outputs.color(w) == color
                        && outputs.contains_simplex(&Simplex::vertex(w))
                        && task.allows(carrier, &Simplex::vertex(w))
                })
                .collect();
            if cands.is_empty() {
                return None;
            }
            domains.push(cands);
        }

        // Table constraints: per facet, enumerate assignments whose every
        // face maps to an allowed output simplex of its own carrier.
        let mut constraints = Vec::with_capacity(domain.facet_count());
        let mut constraints_of = vec![Vec::new(); vars.len()];
        for facet in domain.facets() {
            let members: Vec<usize> = facet.vertices().iter().map(|v| var_of[v]).collect();
            let mut tuples = Vec::new();
            let mut choice = vec![0usize; members.len()];
            'outer: loop {
                let assignment: Vec<VertexId> = members
                    .iter()
                    .zip(&choice)
                    .map(|(&m, &c)| domains[m][c])
                    .collect();
                if facet_image_valid(task, domain, facet, &assignment) {
                    tuples.push(assignment);
                }
                let mut i = 0;
                loop {
                    if i == members.len() {
                        break 'outer;
                    }
                    choice[i] += 1;
                    if choice[i] < domains[members[i]].len() {
                        break;
                    }
                    choice[i] = 0;
                    i += 1;
                }
            }
            if tuples.is_empty() {
                return None;
            }
            let ci = constraints.len();
            for &m in &members {
                constraints_of[m].push(ci);
            }
            constraints.push(TableConstraint { members, tuples });
        }
        Some(Csp {
            vars,
            var_of,
            domains,
            constraints,
            constraints_of,
        })
    }

    /// GAC fixpoint; prunes `domains`. Returns false on wipe-out.
    fn propagate(&mut self, seed: Option<usize>, stats: &mut SearchStats) -> bool {
        let mut queue: Vec<usize> = match seed {
            Some(v) => self.constraints_of[v].clone(),
            None => (0..self.constraints.len()).collect(),
        };
        let mut queued = vec![false; self.constraints.len()];
        for &q in &queue {
            queued[q] = true;
        }
        while let Some(ci) = queue.pop() {
            queued[ci] = false;
            let members = self.constraints[ci].members.clone();
            for (pos, &m) in members.iter().enumerate() {
                let before = self.domains[m].len();
                let dom = &self.domains;
                let supported: Vec<VertexId> = self.constraints[ci]
                    .tuples
                    .iter()
                    .filter(|t| {
                        t.iter()
                            .zip(&members)
                            .all(|(val, &mm)| dom[mm].contains(val))
                    })
                    .map(|t| t[pos])
                    .collect();
                self.domains[m].retain(|c| supported.contains(c));
                stats.prunes += before - self.domains[m].len();
                if self.domains[m].is_empty() {
                    stats.wipeouts += 1;
                    return false;
                }
                if self.domains[m].len() < before {
                    for &other in &self.constraints_of[m] {
                        if !queued[other] {
                            queued[other] = true;
                            queue.push(other);
                        }
                    }
                }
            }
        }
        true
    }
}

/// Checks that the image of every face of `facet` under the aligned
/// assignment is an output simplex allowed by the face's carrier.
fn facet_image_valid(
    task: &dyn Task,
    domain: &Complex,
    facet: &Simplex,
    assignment: &[VertexId],
) -> bool {
    let outputs = task.outputs();
    let vs = facet.vertices();
    let m = vs.len();
    debug_assert!(m <= 63);
    for mask in 1u64..(1 << m) {
        let face = Simplex::from_vertices((0..m).filter(|i| mask & (1 << i) != 0).map(|i| vs[i]));
        let image = Simplex::from_vertices(
            (0..m)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| assignment[i]),
        );
        if !outputs.contains_simplex(&image) {
            return false;
        }
        let carrier = domain.carrier_in_base(&face);
        if !task.allows(&carrier, &image) {
            return false;
        }
    }
    true
}

/// Searches for a chromatic simplicial map `φ : domain → task.outputs()`
/// carried by `Δ ∘ carrier`, where `domain` is a subdivision (possibly an
/// iterated affine task) whose base is the task's input complex.
///
/// `max_nodes` bounds the number of backtracking nodes explored;
/// [`SearchResult::Exhausted`] is returned when it runs out, so callers
/// can distinguish "no map" from "gave up".
///
/// # Panics
///
/// Panics if the domain's base complex does not match the task's input
/// complex structurally (vertex count / process count).
pub fn find_carried_map(task: &dyn Task, domain: &Complex, max_nodes: usize) -> SearchResult {
    find_carried_map_with_stats(task, domain, max_nodes).0
}

/// [`find_carried_map`], additionally returning the search telemetry
/// (nodes visited, prunes, wipe-outs, budget remaining). When a telemetry
/// sink is installed (see [`act_obs`]) the stats are also emitted as a
/// `mapsearch.done` event.
pub fn find_carried_map_with_stats(
    task: &dyn Task,
    domain: &Complex,
    max_nodes: usize,
) -> (SearchResult, SearchStats) {
    assert_eq!(
        domain.base().num_vertices(),
        task.inputs().num_vertices(),
        "domain must be a subdivision of the task's input complex"
    );
    assert_eq!(domain.num_processes(), task.num_processes());

    let span = act_obs::span("mapsearch.done");
    let mut stats = SearchStats {
        budget_remaining: max_nodes,
        depth: domain.level(),
        ..SearchStats::default()
    };
    let result = search_with_stats(task, domain, max_nodes, &mut stats);
    stats.budget_remaining = max_nodes.saturating_sub(stats.nodes);
    SEARCH_NODES.add(stats.nodes as u64);
    SEARCH_PRUNES.add(stats.prunes as u64);
    if act_obs::enabled() {
        span.finish()
            .str("verdict", result.verdict_name())
            .u64("depth", stats.depth as u64)
            .u64("variables", stats.variables as u64)
            .u64("constraints", stats.constraints as u64)
            .u64("nodes", stats.nodes as u64)
            .u64("prunes", stats.prunes as u64)
            .u64("wipeouts", stats.wipeouts as u64)
            .u64("budget_remaining", stats.budget_remaining as u64)
            .emit();
    }
    (result, stats)
}

fn search_with_stats(
    task: &dyn Task,
    domain: &Complex,
    max_nodes: usize,
    stats: &mut SearchStats,
) -> SearchResult {
    let mut csp = match Csp::build(task, domain) {
        Some(c) => c,
        None => return SearchResult::Unsolvable,
    };
    stats.variables = csp.vars.len();
    stats.constraints = csp.constraints.len();
    if !csp.propagate(None, stats) {
        return SearchResult::Unsolvable;
    }

    match search(&mut csp, stats, max_nodes) {
        Assign::Found => {
            let mut map = VertexMap::new();
            for (i, &v) in csp.vars.iter().enumerate() {
                map.set(v, csp.domains[i][0]);
            }
            debug_assert!(csp.var_of.len() == csp.vars.len());
            SearchResult::Found(map)
        }
        Assign::NoMap => SearchResult::Unsolvable,
        Assign::Budget => SearchResult::Exhausted,
    }
}

enum Assign {
    Found,
    NoMap,
    Budget,
}

fn search(csp: &mut Csp, stats: &mut SearchStats, max_nodes: usize) -> Assign {
    // Pick the unassigned variable with the smallest domain > 1.
    let var = (0..csp.domains.len())
        .filter(|&i| csp.domains[i].len() > 1)
        .min_by_key(|&i| csp.domains[i].len());
    let var = match var {
        None => return Assign::Found, // all singletons and GAC-consistent
        Some(v) => v,
    };
    stats.nodes += 1;
    if stats.nodes > max_nodes {
        return Assign::Budget;
    }
    let candidates = csp.domains[var].clone();
    for c in candidates {
        let saved = csp.domains.clone();
        csp.domains[var] = vec![c];
        if csp.propagate(Some(var), stats) {
            match search(csp, stats, max_nodes) {
                Assign::Found => return Assign::Found,
                Assign::Budget => return Assign::Budget,
                Assign::NoMap => {}
            }
        }
        csp.domains = saved;
    }
    Assign::NoMap
}

/// Independently verifies that `map` is a total chromatic simplicial map
/// from `domain` to the task's outputs, carried by `Δ ∘ carrier` on every
/// simplex (exhaustive over all faces of all facets).
pub fn verify_carried_map(task: &dyn Task, domain: &Complex, map: &VertexMap) -> bool {
    let outputs = task.outputs();
    if !map.is_total_on(domain) {
        return false;
    }
    if !map.is_chromatic(domain, outputs) {
        return false;
    }
    for facet in domain.facets() {
        for face in facet.non_empty_faces() {
            let image = match map.image(&face) {
                Some(i) => i,
                None => return false,
            };
            if !outputs.contains_simplex(&image) {
                return false;
            }
            let carrier = domain.carrier_in_base(&face);
            if !task.allows(&carrier, &image) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{consensus, SetConsensus, Task, TrivialTask};
    use act_topology::Complex;

    /// Subdivide a task's input complex m times with Chr.
    fn chr_domain(task: &dyn Task, m: usize) -> Complex {
        task.inputs().iterated_subdivision(m)
    }

    #[test]
    fn trivial_task_solvable_without_subdivision() {
        let t = TrivialTask::new(2, &[0, 1]);
        let domain = t.inputs().clone();
        let result = find_carried_map(&t, &domain, 100_000);
        let map = result.into_map().expect("trivial task is solvable");
        assert!(verify_carried_map(&t, &domain, &map));
    }

    #[test]
    fn trivial_task_solvable_after_subdivision() {
        let t = TrivialTask::new(2, &[0, 1]);
        let domain = chr_domain(&t, 1);
        let result = find_carried_map(&t, &domain, 100_000);
        let map = result.into_map().expect("still solvable after Chr");
        assert!(verify_carried_map(&t, &domain, &map));
    }

    #[test]
    fn consensus_unsolvable_wait_free_two_processes() {
        // FLP / ACT: consensus is not wait-free solvable — no chromatic
        // carried map exists from any Chr^m(I), checked for m = 1, 2.
        let t = consensus(2, &[0, 1]);
        for m in 1..=2 {
            let domain = chr_domain(&t, m);
            let result = find_carried_map(&t, &domain, 1_000_000);
            assert!(
                result.is_unsolvable(),
                "consensus must be unsolvable at m = {m}"
            );
        }
    }

    #[test]
    fn two_set_consensus_solvable_wait_free_two_processes() {
        // 2 processes, k = 2: trivially solvable (everyone decides own
        // value).
        let t = SetConsensus::new(2, 2, &[0, 1, 2]);
        let domain = chr_domain(&t, 1);
        let result = find_carried_map(&t, &domain, 100_000);
        let map = result
            .into_map()
            .expect("2-set consensus is wait-free solvable");
        assert!(verify_carried_map(&t, &domain, &map));
    }

    #[test]
    fn search_stats_match_verdicts() {
        // A found map consumes little budget and reports the CSP size.
        let t = TrivialTask::new(2, &[0, 1]);
        let domain = t.inputs().clone();
        let (result, stats) = find_carried_map_with_stats(&t, &domain, 100_000);
        assert!(result.is_found());
        assert_eq!(stats.variables, domain.used_vertices().len());
        assert_eq!(stats.constraints, domain.facet_count());
        assert_eq!(stats.depth, 0);
        assert_eq!(stats.budget_remaining, 100_000 - stats.nodes);

        // An exhausted search reports an empty budget.
        let t = consensus(2, &[0, 1]);
        let domain = chr_domain(&t, 2);
        let (result, stats) = find_carried_map_with_stats(&t, &domain, 1);
        assert_eq!(stats.depth, 2);
        if matches!(result, SearchResult::Exhausted) {
            assert_eq!(stats.budget_remaining, 0);
            assert!(stats.nodes > 1, "budget of 1 was overrun");
        }

        // An unsolvable verdict comes from propagation: prunes and
        // wipe-outs are observed.
        let t = consensus(2, &[0, 1]);
        let domain = chr_domain(&t, 1);
        let (result, stats) = find_carried_map_with_stats(&t, &domain, 1_000_000);
        assert!(result.is_unsolvable());
        assert!(stats.prunes > 0, "unsolvability requires pruning work");
    }

    #[test]
    fn exhaustion_is_reported() {
        let t = consensus(2, &[0, 1]);
        let domain = chr_domain(&t, 2);
        let result = find_carried_map(&t, &domain, 1);
        assert!(matches!(
            result,
            SearchResult::Exhausted | SearchResult::Unsolvable
        ));
    }

    #[test]
    fn three_process_two_set_consensus_wait_free_unsolvable() {
        // Herlihy–Shavit / Saks–Zaharoglou: (n−1)-set consensus is not
        // wait-free solvable. Parity-type impossibilities are invisible to
        // local consistency (plain search would have to enumerate an
        // astronomic space), so this is established with the Sperner
        // certificate on the wait-free domains Chr^m s.
        use crate::sperner::sperner_certificate;
        for m in 1..=2 {
            let domain = Complex::standard(3).iterated_subdivision(m);
            assert!(
                sperner_certificate(&domain),
                "Sperner certificate must apply at depth {m}"
            );
        }
    }

    #[test]
    fn consensus_unsolvable_wait_free_three_processes_one_round() {
        // Consensus constraints (one decided value per run) propagate
        // strongly: GAC exhausts the rainbow-restricted instance fast.
        let t = consensus(3, &[0, 1, 2]);
        let i = t.inputs();
        let rainbow = i
            .facets()
            .iter()
            .find(|f| {
                let mut vals: Vec<u64> = f.vertices().iter().map(|&v| i.vertex(v).label).collect();
                vals.sort_unstable();
                vals == vec![0, 1, 2]
            })
            .unwrap()
            .clone();
        let domain = i.sub_complex(vec![rainbow]).iterated_subdivision(1);
        let result = find_carried_map(&t, &domain, 1_000_000);
        assert!(result.is_unsolvable());
    }
}
