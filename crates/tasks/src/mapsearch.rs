//! Deciding the existence of a chromatic simplicial map carried by a
//! task's carrier map — the computational content of the (F)ACT statement
//! "`T` is solvable iff there is `ℓ` and `φ : R_A^ℓ(I) → O` carried by Δ".
//!
//! The decision procedure is a constraint search. Every used vertex of the
//! (subdivided) domain is a variable whose values are same-colored output
//! vertices; every facet contributes one table constraint whose allowed
//! tuples are precomputed. Generalized arc consistency over the tables
//! plus backtracking makes both directions — finding maps and *exhausting*
//! the space (unsolvability proofs) — practical for the paper's instances.
//!
//! The implementation is split across two private modules:
//!
//! * [`crate::csp`] — bitset domains (candidate sets as `u64`-word masks
//!   over dense per-variable value indices), a backtracking trail
//!   (removals are undone instead of domains cloned), GAC with residual
//!   supports, and parallel, signature-memoized constraint-table
//!   construction;
//! * [`crate::engine`] — the MRV backtracking search itself, serial or
//!   split across scoped workers over the root variable's values with a
//!   shared abort flag and a pooled node budget (see [`SearchConfig`]).

use act_topology::{Complex, VertexMap};

use crate::engine::{run, SearchConfig};
use crate::task::Task;

/// The verdict of a bounded map search.
#[derive(Clone, Debug)]
pub enum SearchResult {
    /// A carried chromatic simplicial map exists.
    Found(VertexMap),
    /// No such map exists (the search space was exhausted).
    Unsolvable,
    /// The step budget ran out before the search completed.
    Exhausted,
    /// The wall-clock deadline ([`SearchConfig::deadline`]) expired
    /// before the search completed. Distinct from [`Exhausted`]: the
    /// node budget may have been plentiful, the clock was not.
    ///
    /// [`Exhausted`]: SearchResult::Exhausted
    TimedOut,
}

impl SearchResult {
    /// Whether a map was found.
    pub fn is_found(&self) -> bool {
        matches!(self, SearchResult::Found(_))
    }

    /// Whether unsolvability was established.
    pub fn is_unsolvable(&self) -> bool {
        matches!(self, SearchResult::Unsolvable)
    }

    /// The found map, if any.
    pub fn into_map(self) -> Option<VertexMap> {
        match self {
            SearchResult::Found(m) => Some(m),
            _ => None,
        }
    }

    /// A short machine-readable name of the verdict.
    pub fn verdict_name(&self) -> &'static str {
        match self {
            SearchResult::Found(_) => "found",
            SearchResult::Unsolvable => "unsolvable",
            SearchResult::Exhausted => "exhausted",
            SearchResult::TimedOut => "timed-out",
        }
    }
}

/// Telemetry tallies of one [`find_carried_map`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// CSP variables (used domain vertices).
    pub variables: usize,
    /// Table constraints (facets of the domain).
    pub constraints: usize,
    /// Lex-leader symmetry-breaking constraints added on top of the
    /// facet tables (0 when the task declares no symmetries or none act
    /// on the concrete domain).
    pub symmetry_constraints: usize,
    /// Backtracking nodes visited (summed across workers).
    pub nodes: usize,
    /// Candidate values pruned by generalized arc consistency.
    pub prunes: usize,
    /// Domain wipe-outs (dead ends detected by propagation).
    pub wipeouts: usize,
    /// Node budget left when the search returned (0 when exhausted).
    pub budget_remaining: usize,
    /// Subdivision depth (level) of the searched domain.
    pub depth: usize,
    /// Search workers the root branches were split across.
    pub workers: usize,
    /// GAC residual-support checks that validated the cached tuple.
    pub residue_hits: usize,
    /// GAC residual-support checks that had to rescan the table.
    pub residue_misses: usize,
    /// Root branches recorded as nogoods: proven `NoMap` by a clean,
    /// complete refutation (never from a budget / deadline / abort cut).
    pub nogoods_recorded: usize,
    /// Root branches skipped because the shared nogood store already
    /// held a clean refutation (mostly the serial-retry path reusing
    /// work a panicked worker finished before dying).
    pub nogoods_skipped: usize,
    /// Worker panics caught and contained by the parallel engine (each
    /// one triggers a serial retry of the poisoned chunk).
    pub caught_panics: usize,
    /// Whether the run is *degraded*: some branch could not complete
    /// even after the serial retry, so its subtree was never exhausted.
    /// A degraded run never reports [`SearchResult::Unsolvable`].
    pub degraded: bool,
}

impl SearchStats {
    /// The residual-support hit rate in `[0, 1]` (0 when no check ran).
    pub fn residue_hit_rate(&self) -> f64 {
        let total = self.residue_hits + self.residue_misses;
        if total == 0 {
            0.0
        } else {
            self.residue_hits as f64 / total as f64
        }
    }

    /// Folds another worker's tallies into this one (the additive
    /// counters only; sizes, depth, and flags are the caller's).
    pub(crate) fn absorb(&mut self, other: &SearchStats) {
        self.nodes += other.nodes;
        self.prunes += other.prunes;
        self.wipeouts += other.wipeouts;
        self.residue_hits += other.residue_hits;
        self.residue_misses += other.residue_misses;
        self.nogoods_recorded += other.nogoods_recorded;
        self.nogoods_skipped += other.nogoods_skipped;
    }
}

/// Process-global count of backtracking nodes across all map searches.
pub static SEARCH_NODES: act_obs::Counter = act_obs::Counter::new("mapsearch.nodes");
/// Process-global count of GAC prunes across all map searches.
pub static SEARCH_PRUNES: act_obs::Counter = act_obs::Counter::new("mapsearch.prunes");
/// Process-global residual-support hit/miss tally across all searches.
pub static SEARCH_RESIDUE: act_obs::RateCounter = act_obs::RateCounter::new("mapsearch.residue");

/// Searches for a chromatic simplicial map `φ : domain → task.outputs()`
/// carried by `Δ ∘ carrier`, where `domain` is a subdivision (possibly an
/// iterated affine task) whose base is the task's input complex.
///
/// `max_nodes` bounds the number of backtracking nodes explored (pooled
/// across all workers); [`SearchResult::Exhausted`] is returned when it
/// runs out, so callers can distinguish "no map" from "gave up". The
/// search fans out over [`crate::engine::mapsearch_threads`] workers
/// (`RAYON_NUM_THREADS=1` forces the serial engine); verdicts are
/// identical for every thread count.
///
/// # Panics
///
/// Panics if the domain's base complex does not match the task's input
/// complex structurally (vertex count / process count).
pub fn find_carried_map(task: &dyn Task, domain: &Complex, max_nodes: usize) -> SearchResult {
    find_carried_map_with_stats(task, domain, max_nodes).0
}

/// [`find_carried_map`], additionally returning the search telemetry
/// (nodes visited, prunes, wipe-outs, budget remaining). When a telemetry
/// sink is installed (see [`act_obs`]) the stats are also emitted as a
/// `mapsearch.done` event (plus one `mapsearch.worker` event per worker).
pub fn find_carried_map_with_stats(
    task: &dyn Task,
    domain: &Complex,
    max_nodes: usize,
) -> (SearchResult, SearchStats) {
    find_carried_map_with_config(task, domain, &SearchConfig::new(max_nodes))
}

/// [`find_carried_map_with_stats`] with explicit engine knobs: the node
/// budget and the worker-thread count (see [`SearchConfig`]).
pub fn find_carried_map_with_config(
    task: &dyn Task,
    domain: &Complex,
    config: &SearchConfig,
) -> (SearchResult, SearchStats) {
    assert_eq!(
        domain.base().num_vertices(),
        task.inputs().num_vertices(),
        "domain must be a subdivision of the task's input complex"
    );
    assert_eq!(domain.num_processes(), task.num_processes());

    let span = act_obs::span("mapsearch.done");
    let mut stats = SearchStats {
        budget_remaining: config.max_nodes,
        depth: domain.level(),
        ..SearchStats::default()
    };
    let result = run(task, domain, config, &mut stats);
    stats.budget_remaining = config.max_nodes.saturating_sub(stats.nodes);
    SEARCH_NODES.add(stats.nodes as u64);
    SEARCH_PRUNES.add(stats.prunes as u64);
    SEARCH_RESIDUE.hit(stats.residue_hits as u64);
    SEARCH_RESIDUE.miss(stats.residue_misses as u64);
    if act_obs::enabled() {
        span.finish()
            .str("verdict", result.verdict_name())
            .u64("depth", stats.depth as u64)
            .u64("variables", stats.variables as u64)
            .u64("constraints", stats.constraints as u64)
            .u64("symmetry_constraints", stats.symmetry_constraints as u64)
            .u64("nodes", stats.nodes as u64)
            .u64("prunes", stats.prunes as u64)
            .u64("wipeouts", stats.wipeouts as u64)
            .u64("budget_remaining", stats.budget_remaining as u64)
            .u64("workers", stats.workers as u64)
            .u64("residue_hits", stats.residue_hits as u64)
            .u64("residue_misses", stats.residue_misses as u64)
            .f64("residue_hit_rate", stats.residue_hit_rate())
            .u64("nogoods_recorded", stats.nogoods_recorded as u64)
            .u64("nogoods_skipped", stats.nogoods_skipped as u64)
            .u64("caught_panics", stats.caught_panics as u64)
            .bool("degraded", stats.degraded)
            .emit();
    }
    (result, stats)
}

/// Independently verifies that `map` is a total chromatic simplicial map
/// from `domain` to the task's outputs, carried by `Δ ∘ carrier` on every
/// simplex (exhaustive over all faces of all facets).
pub fn verify_carried_map(task: &dyn Task, domain: &Complex, map: &VertexMap) -> bool {
    let outputs = task.outputs();
    if !map.is_total_on(domain) {
        return false;
    }
    if !map.is_chromatic(domain, outputs) {
        return false;
    }
    for facet in domain.facets() {
        for face in facet.non_empty_faces() {
            let image = match map.image(&face) {
                Some(i) => i,
                None => return false,
            };
            if !outputs.contains_simplex(&image) {
                return false;
            }
            let carrier = domain.carrier_in_base(&face);
            if !task.allows(&carrier, &image) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{consensus, SetConsensus, Task, TrivialTask};
    use act_topology::Complex;

    /// Subdivide a task's input complex m times with Chr.
    fn chr_domain(task: &dyn Task, m: usize) -> Complex {
        task.inputs().iterated_subdivision(m)
    }

    #[test]
    fn trivial_task_solvable_without_subdivision() {
        let t = TrivialTask::new(2, &[0, 1]);
        let domain = t.inputs().clone();
        let result = find_carried_map(&t, &domain, 100_000);
        let map = result.into_map().expect("trivial task is solvable");
        assert!(verify_carried_map(&t, &domain, &map));
    }

    #[test]
    fn trivial_task_solvable_after_subdivision() {
        let t = TrivialTask::new(2, &[0, 1]);
        let domain = chr_domain(&t, 1);
        let result = find_carried_map(&t, &domain, 100_000);
        let map = result.into_map().expect("still solvable after Chr");
        assert!(verify_carried_map(&t, &domain, &map));
    }

    #[test]
    fn consensus_unsolvable_wait_free_two_processes() {
        // FLP / ACT: consensus is not wait-free solvable — no chromatic
        // carried map exists from any Chr^m(I), checked for m = 1, 2.
        let t = consensus(2, &[0, 1]);
        for m in 1..=2 {
            let domain = chr_domain(&t, m);
            let result = find_carried_map(&t, &domain, 1_000_000);
            assert!(
                result.is_unsolvable(),
                "consensus must be unsolvable at m = {m}"
            );
        }
    }

    #[test]
    fn two_set_consensus_solvable_wait_free_two_processes() {
        // 2 processes, k = 2: trivially solvable (everyone decides own
        // value).
        let t = SetConsensus::new(2, 2, &[0, 1, 2]);
        let domain = chr_domain(&t, 1);
        let result = find_carried_map(&t, &domain, 100_000);
        let map = result
            .into_map()
            .expect("2-set consensus is wait-free solvable");
        assert!(verify_carried_map(&t, &domain, &map));
    }

    #[test]
    fn search_stats_match_verdicts() {
        // A found map consumes little budget and reports the CSP size.
        let t = TrivialTask::new(2, &[0, 1]);
        let domain = t.inputs().clone();
        let (result, stats) = find_carried_map_with_stats(&t, &domain, 100_000);
        assert!(result.is_found());
        assert_eq!(stats.variables, domain.used_vertices().len());
        assert_eq!(stats.constraints, domain.facet_count());
        assert_eq!(stats.depth, 0);
        assert_eq!(stats.budget_remaining, 100_000 - stats.nodes);
        assert!(stats.workers >= 1);

        // An exhausted search reports an empty budget.
        let t = consensus(2, &[0, 1]);
        let domain = chr_domain(&t, 2);
        let (result, stats) = find_carried_map_with_stats(&t, &domain, 1);
        assert_eq!(stats.depth, 2);
        if matches!(result, SearchResult::Exhausted) {
            assert_eq!(stats.budget_remaining, 0);
            assert!(stats.nodes > 1, "budget of 1 was overrun");
        }

        // An unsolvable verdict comes from propagation: prunes and
        // wipe-outs are observed.
        let t = consensus(2, &[0, 1]);
        let domain = chr_domain(&t, 1);
        let (result, stats) = find_carried_map_with_stats(&t, &domain, 1_000_000);
        assert!(result.is_unsolvable());
        assert!(stats.prunes > 0, "unsolvability requires pruning work");
    }

    #[test]
    fn exhaustion_is_reported() {
        let t = consensus(2, &[0, 1]);
        let domain = chr_domain(&t, 2);
        let result = find_carried_map(&t, &domain, 1);
        assert!(matches!(
            result,
            SearchResult::Exhausted | SearchResult::Unsolvable
        ));
    }

    #[test]
    fn three_process_two_set_consensus_wait_free_unsolvable() {
        // Herlihy–Shavit / Saks–Zaharoglou: (n−1)-set consensus is not
        // wait-free solvable. Parity-type impossibilities are invisible to
        // local consistency (plain search would have to enumerate an
        // astronomic space), so this is established with the Sperner
        // certificate on the wait-free domains Chr^m s.
        use crate::sperner::sperner_certificate;
        for m in 1..=2 {
            let domain = Complex::standard(3).iterated_subdivision(m);
            assert!(
                sperner_certificate(&domain),
                "Sperner certificate must apply at depth {m}"
            );
        }
    }

    #[test]
    fn consensus_unsolvable_wait_free_three_processes_one_round() {
        // Consensus constraints (one decided value per run) propagate
        // strongly: GAC exhausts the rainbow-restricted instance fast.
        let t = consensus(3, &[0, 1, 2]);
        let i = t.inputs();
        let rainbow = i
            .facets()
            .iter()
            .find(|f| {
                let mut vals: Vec<u64> = f.vertices().iter().map(|&v| i.vertex(v).label).collect();
                vals.sort_unstable();
                vals == vec![0, 1, 2]
            })
            .unwrap()
            .clone();
        let domain = i.sub_complex(vec![rainbow]).iterated_subdivision(1);
        let result = find_carried_map(&t, &domain, 1_000_000);
        assert!(result.is_unsolvable());
    }

    #[test]
    fn explicit_thread_counts_agree_on_verdict_and_witness_validity() {
        // The p4-style solvable instance branches, so the parallel
        // engine genuinely splits work; every thread count must return
        // the same verdict and a verifiable witness.
        let t = SetConsensus::new(2, 2, &[0, 1, 2]);
        let domain = chr_domain(&t, 1);
        for threads in [1usize, 2, 4] {
            let config = SearchConfig::serial(100_000).with_threads(threads);
            let (result, stats) = find_carried_map_with_config(&t, &domain, &config);
            let map = result.into_map().expect("solvable at every thread count");
            assert!(verify_carried_map(&t, &domain, &map));
            assert!(stats.workers >= 1 && stats.workers <= threads);
        }
        // And an unsolvable instance stays exactly unsolvable (never
        // Exhausted) under the pooled budget.
        let t = consensus(2, &[0, 1]);
        let domain = chr_domain(&t, 2);
        for threads in [1usize, 2, 4] {
            let config = SearchConfig::serial(1_000_000).with_threads(threads);
            let (result, _) = find_carried_map_with_config(&t, &domain, &config);
            assert!(result.is_unsolvable(), "threads = {threads}");
        }
    }

    #[test]
    fn symmetry_breaking_preserves_verdicts_and_witness_validity() {
        // Solvable symmetric instance: the lex-least witness survives
        // the breakers and is a genuine solution of the ORIGINAL query —
        // no un-canonicalization step exists or is needed.
        let t = SetConsensus::new(2, 2, &[0, 1, 2]);
        let domain = chr_domain(&t, 1);
        let (result, stats) = find_carried_map_with_stats(&t, &domain, 100_000);
        let map = result.into_map().expect("solvable with breakers");
        assert!(verify_carried_map(&t, &domain, &map));
        assert_eq!(stats.constraints, domain.facet_count());

        // Unsolvable symmetric instances stay exactly unsolvable, at
        // every thread count (breakers are deterministic, so the
        // determinism guarantee is untouched).
        let t = consensus(2, &[0, 1]);
        let domain = chr_domain(&t, 2);
        for threads in [1usize, 2, 4] {
            let config = SearchConfig::serial(1_000_000).with_threads(threads);
            let (result, _) = find_carried_map_with_config(&t, &domain, &config);
            assert!(result.is_unsolvable(), "threads = {threads}");
        }
    }

    #[test]
    fn witnesses_transport_along_symmetry_actions() {
        // The witness orbit: pushing a found map through a task symmetry
        // (`act_topology::transport_vertex_map`) yields another valid
        // witness of the same query — the equivalence class the
        // lex-leader breakers quotient by.
        use act_topology::{chain_action, transport_vertex_map, LabelMatching};
        let t = SetConsensus::new(2, 2, &[0, 1, 2]);
        let domain = chr_domain(&t, 1);
        let map = find_carried_map(&t, &domain, 100_000)
            .into_map()
            .expect("solvable");
        let mut transported_some = false;
        for sym in t.symmetries() {
            let in_matching = match &sym.input_labels {
                Some(m) => LabelMatching::Relabeled(m),
                None => LabelMatching::Strict,
            };
            let Some(g) = chain_action(&domain, &sym.color, in_matching) else {
                continue;
            };
            if !g.preserves_facets(&domain) {
                continue;
            }
            let out_matching = match &sym.output_labels {
                Some(m) => LabelMatching::Relabeled(m),
                None => LabelMatching::Strict,
            };
            let Some(h) = chain_action(t.outputs(), &sym.color, out_matching) else {
                continue;
            };
            let transported =
                transport_vertex_map(&map, g.level_map(domain.level()), h.inverse().level_map(0));
            assert!(
                verify_carried_map(&t, &domain, &transported),
                "the witness orbit stays inside the solution set"
            );
            transported_some = true;
        }
        assert!(transported_some, "some declared symmetry acts on Chr¹");
    }

    #[test]
    fn residue_hit_rate_is_observed_on_branching_searches() {
        let t = SetConsensus::new(2, 2, &[0, 1, 2]);
        let domain = chr_domain(&t, 1);
        let (result, stats) = find_carried_map_with_stats(&t, &domain, 1_000_000);
        assert!(result.is_found());
        assert!(
            stats.residue_hits + stats.residue_misses > 0,
            "GAC ran support checks"
        );
        let rate = stats.residue_hit_rate();
        assert!((0.0..=1.0).contains(&rate));
    }
}
