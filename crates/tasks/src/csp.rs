//! The CSP core of the carried-map search: bitset domains, a
//! backtracking trail, table constraints with GAC residual supports, and
//! parallel, memoized constraint-table construction.
//!
//! Variables are the used vertices of the (subdivided) domain complex,
//! re-indexed densely; the values of a variable are its same-colored
//! candidate output vertices, re-indexed densely per variable so that a
//! current domain is a handful of `u64` words. The search never clones
//! domains: every removal is recorded on a trail and undone on
//! backtrack. Immutable data (candidate lists, constraint tuples,
//! support lists) is built once — in parallel over facets, memoized by
//! the facet's intern-key signature — and shared by every search worker
//! behind `Arc`s; only the mutable [`State`] is cloned per worker.

use std::collections::HashMap;
use std::sync::Arc;

use act_topology::{parallel_map_ranges, Complex, ProcessId, Simplex, VertexId};

use crate::mapsearch::SearchStats;
use crate::task::Task;

/// Sentinel for "no residual support cached yet".
const NO_RESIDUE: u32 = u32::MAX;

/// Immutable tuple data of one constraint *shape*: tuples and support
/// lists in dense value-index space. Facets with equal intern-key
/// signatures (same per-position `(color, base-carrier)` pairs) admit
/// exactly the same assignments, so they share one `TupleData`.
pub(crate) struct TupleData {
    /// Facet size (number of member variables).
    pub(crate) arity: usize,
    /// Prefix offsets into the per-position value space: position `p`
    /// owns value slots `pos_off[p]..pos_off[p + 1]`; `pos_off[arity]`
    /// is the constraint's total value-slot count (its residue block
    /// size).
    pub(crate) pos_off: Vec<u32>,
    /// Allowed tuples, flattened: tuple `t` occupies
    /// `tuples[t * arity..(t + 1) * arity]`, each entry a dense value
    /// index of the member at that position.
    pub(crate) tuples: Vec<u32>,
    /// Support lists: `supports[pos_off[p] + v]` are the indices of the
    /// tuples whose position-`p` entry is value `v`.
    pub(crate) supports: Vec<Vec<u32>>,
}

impl TupleData {
    /// Number of allowed tuples.
    #[cfg(test)]
    pub(crate) fn num_tuples(&self) -> usize {
        self.tuples.len().checked_div(self.arity).unwrap_or(0)
    }
}

/// One table constraint: its member variables plus the shared tuple
/// data and the offset of its residue block in [`State::residues`].
pub(crate) struct TableConstraint {
    /// Member variables, aligned with the tuple positions.
    pub(crate) members: Vec<u32>,
    /// Shared tuple data (memoized across same-signature facets).
    pub(crate) data: Arc<TupleData>,
    /// Start of this constraint's residue block.
    pub(crate) residue_base: u32,
}

/// The immutable half of the CSP, shared by all search workers.
pub(crate) struct Tables {
    /// Dense index → domain vertex.
    pub(crate) vars: Vec<VertexId>,
    /// Per variable: candidate output vertices (dense value index →
    /// output vertex), memoized by `(color, base-carrier)`.
    pub(crate) values: Vec<Arc<Vec<VertexId>>>,
    /// Per variable: start word of its domain bitset in
    /// [`State::words`]; `word_off[vars.len()]` is the total word count.
    pub(crate) word_off: Vec<u32>,
    /// The table constraints, one per facet of the domain.
    pub(crate) constraints: Vec<TableConstraint>,
    /// Per variable: indices of constraints it appears in.
    pub(crate) constraints_of: Vec<Vec<u32>>,
    /// Total residue-slot count across all constraints.
    pub(crate) residue_len: usize,
}

/// The mutable half of the CSP: current domains (bitsets + counts), the
/// backtracking trail, and the GAC residues. Cloned once per parallel
/// search worker; never cloned per node.
#[derive(Clone)]
pub(crate) struct State {
    /// Domain bitsets, all variables concatenated (see
    /// [`Tables::word_off`]).
    pub(crate) words: Vec<u64>,
    /// Current domain size per variable.
    pub(crate) count: Vec<u32>,
    /// Removal trail: `(variable, value)` in removal order.
    pub(crate) trail: Vec<(u32, u32)>,
    /// Last witnessing tuple per constraint × position × value
    /// ([`NO_RESIDUE`] when none cached). Stale entries are sound: a
    /// residue is always re-validated against the current domains
    /// before it is trusted.
    pub(crate) residues: Vec<u32>,
    /// dom/wdeg weights: per variable, the summed weight of its
    /// constraints. Every constraint starts at weight 1; each wipe-out a
    /// constraint causes bumps all of its members. Conflict weights are
    /// *not* undone on backtrack — they are the search's memory of where
    /// the hard conflicts live, steering branching toward them.
    pub(crate) wdeg: Vec<u64>,
}

impl Tables {
    /// The word range of variable `var`'s domain bitset.
    #[inline]
    fn word_range(&self, var: usize) -> std::ops::Range<usize> {
        self.word_off[var] as usize..self.word_off[var + 1] as usize
    }

    /// Builds the initial (full) state: every candidate present, empty
    /// trail, no residues.
    fn initial_state(&self) -> State {
        let total_words = self.word_off.last().copied().unwrap_or(0) as usize;
        let mut words = vec![0u64; total_words];
        let mut count = Vec::with_capacity(self.vars.len());
        for (var, vals) in self.values.iter().enumerate() {
            let n = vals.len();
            count.push(n as u32);
            let range = self.word_range(var);
            for (i, w) in words[range].iter_mut().enumerate() {
                let lo = i * 64;
                let bits = n.saturating_sub(lo).min(64);
                *w = if bits == 64 {
                    !0u64
                } else {
                    (1u64 << bits) - 1
                };
            }
        }
        State {
            words,
            count,
            trail: Vec::new(),
            residues: vec![NO_RESIDUE; self.residue_len],
            wdeg: self
                .constraints_of
                .iter()
                .map(|cs| cs.len().max(1) as u64)
                .collect(),
        }
    }
}

impl State {
    /// Whether value `val` is in `var`'s current domain.
    #[inline]
    pub(crate) fn contains(&self, tables: &Tables, var: usize, val: u32) -> bool {
        let w = tables.word_off[var] as usize + (val / 64) as usize;
        self.words[w] & (1u64 << (val % 64)) != 0
    }

    /// Removes `val` from `var`'s domain, recording it on the trail.
    /// Must only be called for present values.
    #[inline]
    pub(crate) fn remove(&mut self, tables: &Tables, var: usize, val: u32) {
        let w = tables.word_off[var] as usize + (val / 64) as usize;
        debug_assert!(self.words[w] & (1u64 << (val % 64)) != 0);
        self.words[w] &= !(1u64 << (val % 64));
        self.count[var] -= 1;
        self.trail.push((var as u32, val));
    }

    /// Undoes every removal past `mark` (a previous `trail.len()`).
    pub(crate) fn undo_to(&mut self, tables: &Tables, mark: usize) {
        while self.trail.len() > mark {
            let Some((var, val)) = self.trail.pop() else {
                break; // unreachable: guarded by the loop condition
            };
            let w = tables.word_off[var as usize] as usize + (val / 64) as usize;
            self.words[w] |= 1u64 << (val % 64);
            self.count[var as usize] += 1;
        }
    }

    /// The current domain values of `var`, in increasing order.
    pub(crate) fn domain_values(&self, tables: &Tables, var: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count[var] as usize);
        for (i, &w) in self.words[tables.word_range(var)].iter().enumerate() {
            let mut w = w;
            while w != 0 {
                out.push((i * 64) as u32 + w.trailing_zeros());
                w &= w - 1;
            }
        }
        out
    }

    /// The single remaining value of a singleton domain.
    pub(crate) fn single_value(&self, tables: &Tables, var: usize) -> u32 {
        debug_assert_eq!(self.count[var], 1);
        for (i, &w) in self.words[tables.word_range(var)].iter().enumerate() {
            if w != 0 {
                return (i * 64) as u32 + w.trailing_zeros();
            }
        }
        unreachable!("singleton domain has a bit set")
    }

    /// Whether tuple `t` of constraint `ci` is valid under the current
    /// domains (every entry still present).
    #[inline]
    fn tuple_valid(&self, tables: &Tables, c: &TableConstraint, t: u32) -> bool {
        let arity = c.data.arity;
        let base = t as usize * arity;
        for (pos, &m) in c.members.iter().enumerate() {
            if !self.contains(tables, m as usize, c.data.tuples[base + pos]) {
                return false;
            }
        }
        true
    }
}

/// GAC fixpoint over the constraint tables, pruning `state`'s domains in
/// place (every removal lands on the trail). Seeding with a variable
/// revises only its constraints first; `None` revises everything.
/// Returns `false` on a domain wipe-out.
///
/// Per (constraint, position, value), the last witnessing tuple is
/// cached in `state.residues` and re-validated before the support lists
/// are rescanned — on the deep, repetitive subtrees of the search the
/// residue check almost always succeeds, replacing the table scan with
/// an O(arity) bit test.
pub(crate) fn propagate(
    tables: &Tables,
    state: &mut State,
    seed: Option<usize>,
    stats: &mut SearchStats,
) -> bool {
    let mut queue: Vec<u32> = match seed {
        Some(v) => tables.constraints_of[v].clone(),
        None => (0..tables.constraints.len() as u32).collect(),
    };
    let mut queued = vec![false; tables.constraints.len()];
    for &q in &queue {
        queued[q as usize] = true;
    }
    while let Some(ci) = queue.pop() {
        queued[ci as usize] = false;
        let c = &tables.constraints[ci as usize];
        for (pos, &m) in c.members.iter().enumerate() {
            let m = m as usize;
            let mut removed = false;
            for val in state.domain_values(tables, m) {
                let ridx = c.residue_base as usize + c.data.pos_off[pos] as usize + val as usize;
                let r = state.residues[ridx];
                if r != NO_RESIDUE && state.tuple_valid(tables, c, r) {
                    stats.residue_hits += 1;
                    continue;
                }
                stats.residue_misses += 1;
                let supports = &c.data.supports[c.data.pos_off[pos] as usize + val as usize];
                match supports.iter().find(|&&t| state.tuple_valid(tables, c, t)) {
                    Some(&t) => {
                        // Seed the found tuple multi-directionally: it
                        // witnesses *every* (position, value) pair it
                        // covers, so future lookups from the sibling
                        // positions start from a fresh residue instead
                        // of a table scan.
                        let base = t as usize * c.data.arity;
                        for pos2 in 0..c.data.arity {
                            let val2 = c.data.tuples[base + pos2];
                            let off2 = c.data.pos_off[pos2];
                            state.residues
                                [c.residue_base as usize + off2 as usize + val2 as usize] = t;
                        }
                    }
                    None => {
                        state.remove(tables, m, val);
                        stats.prunes += 1;
                        removed = true;
                        if state.count[m] == 0 {
                            // dom/wdeg: this constraint caused a
                            // wipe-out — bump the weight of all of its
                            // members so branching gravitates here.
                            for &cm in c.members.iter() {
                                state.wdeg[cm as usize] += 1;
                            }
                            stats.wipeouts += 1;
                            return false;
                        }
                    }
                }
            }
            if removed {
                for &other in &tables.constraints_of[m] {
                    if !queued[other as usize] {
                        queued[other as usize] = true;
                        queue.push(other);
                    }
                }
            }
        }
    }
    true
}

/// Checks that the image of every face of `facet` under the aligned
/// assignment is an output simplex allowed by the face's carrier.
pub(crate) fn facet_image_valid(
    task: &dyn Task,
    domain: &Complex,
    facet: &Simplex,
    assignment: &[VertexId],
) -> bool {
    let outputs = task.outputs();
    let vs = facet.vertices();
    let m = vs.len();
    debug_assert!(m <= 63);
    for mask in 1u64..(1 << m) {
        let face = Simplex::from_vertices((0..m).filter(|i| mask & (1 << i) != 0).map(|i| vs[i]));
        let image = Simplex::from_vertices(
            (0..m)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| assignment[i]),
        );
        if !outputs.contains_simplex(&image) {
            return false;
        }
        let carrier = domain.carrier_in_base(&face);
        if !task.allows(&carrier, &image) {
            return false;
        }
    }
    true
}

/// Enumerates the allowed tuples of one facet over the given candidate
/// lists, producing the shared [`TupleData`] (tuples in dense
/// value-index space plus support lists). Returns `None` when the facet
/// admits no assignment at all (the whole CSP is then unsatisfiable).
fn build_tuple_data(
    task: &dyn Task,
    domain: &Complex,
    facet: &Simplex,
    candidates: &[&Arc<Vec<VertexId>>],
) -> Option<Arc<TupleData>> {
    let arity = candidates.len();
    let mut pos_off = Vec::with_capacity(arity + 1);
    let mut total = 0u32;
    for c in candidates {
        pos_off.push(total);
        total += c.len() as u32;
    }
    pos_off.push(total);

    let mut tuples: Vec<u32> = Vec::new();
    let mut choice = vec![0u32; arity];
    let mut assignment = vec![VertexId::from_index(0); arity];
    'outer: loop {
        for (i, &c) in choice.iter().enumerate() {
            assignment[i] = candidates[i][c as usize];
        }
        if facet_image_valid(task, domain, facet, &assignment) {
            tuples.extend_from_slice(&choice);
        }
        let mut i = 0;
        loop {
            if i == arity {
                break 'outer;
            }
            choice[i] += 1;
            if (choice[i] as usize) < candidates[i].len() {
                break;
            }
            choice[i] = 0;
            i += 1;
        }
    }
    if tuples.is_empty() {
        return None;
    }

    let mut supports: Vec<Vec<u32>> = vec![Vec::new(); total as usize];
    for t in 0..tuples.len() / arity {
        for pos in 0..arity {
            let val = tuples[t * arity + pos];
            supports[(pos_off[pos] + val) as usize].push(t as u32);
        }
    }
    Some(Arc::new(TupleData {
        arity,
        pos_off,
        tuples,
        supports,
    }))
}

/// Builds the CSP for the carried-map search: candidate lists memoized
/// by `(color, base-carrier)`, constraint tables built concurrently over
/// facet chunks (up to `threads` workers) and memoized by the facet's
/// intern-key signature. Returns `None` when some vertex has no
/// candidate or some facet no allowed tuple — the search is then
/// unsatisfiable without visiting a single node.
pub(crate) fn build(task: &dyn Task, domain: &Complex, threads: usize) -> Option<(Tables, State)> {
    let outputs = task.outputs();
    let vars: Vec<VertexId> = domain.used_vertices();
    let var_of: HashMap<VertexId, u32> = vars
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as u32))
        .collect();

    // Candidate lists, memoized by the vertex's intern key: interned
    // subdivisions repeat (color, base-carrier) pairs across many
    // vertices, and the candidate set is a function of that key alone.
    let mut candidate_memo: HashMap<(ProcessId, Simplex), Arc<Vec<VertexId>>> = HashMap::new();
    let mut values: Vec<Arc<Vec<VertexId>>> = Vec::with_capacity(vars.len());
    for &v in &vars {
        let color = domain.color(v);
        let carrier = &domain.vertex(v).base_carrier;
        let cands = candidate_memo
            .entry((color, carrier.clone()))
            .or_insert_with(|| {
                Arc::new(
                    (0..outputs.num_vertices())
                        .map(VertexId::from_index)
                        .filter(|&w| {
                            outputs.color(w) == color
                                && outputs.contains_simplex(&Simplex::vertex(w))
                                && task.allows(carrier, &Simplex::vertex(w))
                        })
                        .collect(),
                )
            })
            .clone();
        if cands.is_empty() {
            return None;
        }
        values.push(cands);
    }

    // Constraint tables, one per facet, built concurrently in facet
    // chunks. Each chunk worker memoizes tuple data by the facet's
    // signature; the per-chunk results are merged in chunk order, so
    // the constraint list is identical for every thread count.
    let facets = domain.facets();
    let chunked: Vec<Vec<Option<TableConstraint>>> =
        parallel_map_ranges(facets.len(), threads.max(1), |range| {
            let mut memo: HashMap<Vec<(ProcessId, Simplex)>, Arc<TupleData>> = HashMap::new();
            let mut out = Vec::with_capacity(range.len());
            for facet in &facets[range] {
                let members: Vec<u32> = facet.vertices().iter().map(|v| var_of[v]).collect();
                let signature = domain.simplex_signature(facet);
                let data = match memo.get(&signature) {
                    Some(d) => Some(d.clone()),
                    None => {
                        let candidates: Vec<&Arc<Vec<VertexId>>> =
                            members.iter().map(|&m| &values[m as usize]).collect();
                        let built = build_tuple_data(task, domain, facet, &candidates);
                        if let Some(d) = &built {
                            memo.insert(signature, d.clone());
                        }
                        built
                    }
                };
                out.push(data.map(|data| TableConstraint {
                    members,
                    data,
                    residue_base: 0, // assigned after the merge
                }));
            }
            out
        });

    let mut constraints: Vec<TableConstraint> = Vec::with_capacity(facets.len());
    let mut residue_len = 0u32;
    for c in chunked.into_iter().flatten() {
        let mut c = c?;
        c.residue_base = residue_len;
        residue_len += c.data.pos_off.last().copied().unwrap_or(0);
        constraints.push(c);
    }

    let mut constraints_of = vec![Vec::new(); vars.len()];
    for (ci, c) in constraints.iter().enumerate() {
        for &m in &c.members {
            constraints_of[m as usize].push(ci as u32);
        }
    }

    let mut word_off = Vec::with_capacity(vars.len() + 1);
    let mut off = 0u32;
    for vals in &values {
        word_off.push(off);
        off += vals.len().div_ceil(64) as u32;
    }
    word_off.push(off);

    let tables = Tables {
        vars,
        values,
        word_off,
        constraints,
        constraints_of,
        residue_len: residue_len as usize,
    };
    let state = tables.initial_state();
    Some((tables, state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{consensus, SetConsensus};

    #[test]
    fn build_produces_bitset_domains_matching_candidates() {
        let t = SetConsensus::new(2, 2, &[0, 1, 2]);
        let domain = t.inputs().iterated_subdivision(1);
        let (tables, state) = build(&t, &domain, 1).expect("satisfiable");
        assert_eq!(tables.vars.len(), domain.used_vertices().len());
        assert_eq!(tables.constraints.len(), domain.facet_count());
        for c in &tables.constraints {
            assert!(c.data.num_tuples() > 0, "empty tables are rejected early");
        }
        for var in 0..tables.vars.len() {
            let vals = state.domain_values(&tables, var);
            assert_eq!(vals.len(), tables.values[var].len());
            assert_eq!(state.count[var] as usize, vals.len());
            for &val in &vals {
                assert!(state.contains(&tables, var, val));
            }
        }
    }

    #[test]
    fn trail_remove_and_undo_round_trips() {
        let t = SetConsensus::new(2, 2, &[0, 1, 2]);
        let domain = t.inputs().iterated_subdivision(1);
        let (tables, mut state) = build(&t, &domain, 1).expect("satisfiable");
        let var = (0..tables.vars.len())
            .find(|&v| state.count[v] > 1)
            .expect("some branching variable");
        let before = state.domain_values(&tables, var);
        let mark = state.trail.len();
        for &val in &before[1..] {
            state.remove(&tables, var, val);
        }
        assert_eq!(state.count[var], 1);
        assert_eq!(state.single_value(&tables, var), before[0]);
        state.undo_to(&tables, mark);
        assert_eq!(state.domain_values(&tables, var), before);
        assert_eq!(state.trail.len(), mark);
    }

    #[test]
    fn parallel_table_build_matches_serial() {
        let t = SetConsensus::new(3, 2, &[0, 1, 2]);
        let domain = t.inputs().iterated_subdivision(1);
        let (serial, _) = build(&t, &domain, 1).expect("satisfiable");
        for threads in [2usize, 4] {
            let (parallel, _) = build(&t, &domain, threads).expect("satisfiable");
            assert_eq!(serial.constraints.len(), parallel.constraints.len());
            for (a, b) in serial.constraints.iter().zip(&parallel.constraints) {
                assert_eq!(a.members, b.members);
                assert_eq!(a.data.tuples, b.data.tuples);
                assert_eq!(a.data.pos_off, b.data.pos_off);
                assert_eq!(a.residue_base, b.residue_base);
            }
        }
    }

    #[test]
    fn memoized_tables_are_shared_across_same_signature_facets() {
        // At level 1 a facet's (color, base_carrier) signature still
        // determines the facet, but from level 2 on base carriers lose
        // information and signatures repeat (e.g. every facet subdividing
        // Chr¹'s central simplex has the all-full signature); the memo
        // must make same-signature facets share their TupleData.
        let t = SetConsensus::new(2, 2, &[0, 1, 2]);
        let domain = t.inputs().iterated_subdivision(2);
        let (tables, _) = build(&t, &domain, 1).expect("satisfiable");
        let mut by_sig: HashMap<Vec<(ProcessId, Simplex)>, *const TupleData> = HashMap::new();
        let mut shared = 0usize;
        for (ci, c) in tables.constraints.iter().enumerate() {
            let sig = domain.simplex_signature(&domain.facets()[ci]);
            match by_sig.get(&sig) {
                Some(&ptr) => {
                    assert!(
                        std::ptr::eq(ptr, Arc::as_ptr(&c.data)),
                        "same signature shares data"
                    );
                    shared += 1;
                }
                None => {
                    by_sig.insert(sig, Arc::as_ptr(&c.data));
                }
            }
        }
        assert!(shared > 0, "interned subdivisions repeat signatures");
    }

    #[test]
    fn propagation_prunes_like_the_paper_instances() {
        // 2-process consensus on Chr¹: GAC alone wipes out a domain.
        let t = consensus(2, &[0, 1]);
        let domain = t.inputs().iterated_subdivision(1);
        let (tables, mut state) = build(&t, &domain, 1).expect("builds");
        let mut stats = SearchStats::default();
        assert!(!propagate(&tables, &mut state, None, &mut stats));
        assert!(stats.prunes > 0);
        assert_eq!(stats.wipeouts, 1);
    }
}
