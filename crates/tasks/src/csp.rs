//! The CSP core of the carried-map search: bitset domains, a
//! backtracking trail, table constraints with GAC residual supports, and
//! parallel, memoized constraint-table construction.
//!
//! Variables are the used vertices of the (subdivided) domain complex,
//! re-indexed densely; the values of a variable are its same-colored
//! candidate output vertices, re-indexed densely per variable so that a
//! current domain is a handful of `u64` words. The search never clones
//! domains: every removal is recorded on a trail and undone on
//! backtrack. Immutable data (candidate lists, constraint tuples,
//! support lists) is built once — in parallel over facets, memoized by
//! the facet's intern-key signature — and shared by every search worker
//! behind `Arc`s; only the mutable [`State`] is cloned per worker.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use act_topology::{
    chain_action, parallel_map_ranges, ChainAction, Complex, LabelMatching, ProcessId, Simplex,
    VertexId,
};

use crate::mapsearch::SearchStats;
use crate::task::{Task, TaskSymmetry};

/// Sentinel for "no residual support cached yet".
const NO_RESIDUE: u32 = u32::MAX;

/// Immutable tuple data of one constraint *shape*: tuples and support
/// lists in dense value-index space. Facets with equal intern-key
/// signatures (same per-position `(color, base-carrier)` pairs) admit
/// exactly the same assignments, so they share one `TupleData`.
pub(crate) struct TupleData {
    /// Facet size (number of member variables).
    pub(crate) arity: usize,
    /// Prefix offsets into the per-position value space: position `p`
    /// owns value slots `pos_off[p]..pos_off[p + 1]`; `pos_off[arity]`
    /// is the constraint's total value-slot count (its residue block
    /// size).
    pub(crate) pos_off: Vec<u32>,
    /// Allowed tuples, flattened: tuple `t` occupies
    /// `tuples[t * arity..(t + 1) * arity]`, each entry a dense value
    /// index of the member at that position.
    pub(crate) tuples: Vec<u32>,
    /// Support lists: `supports[pos_off[p] + v]` are the indices of the
    /// tuples whose position-`p` entry is value `v`.
    pub(crate) supports: Vec<Vec<u32>>,
}

impl TupleData {
    /// Number of allowed tuples.
    #[cfg(test)]
    pub(crate) fn num_tuples(&self) -> usize {
        self.tuples.len().checked_div(self.arity).unwrap_or(0)
    }
}

/// One table constraint: its member variables plus the shared tuple
/// data and the offset of its residue block in [`State::residues`].
pub(crate) struct TableConstraint {
    /// Member variables, aligned with the tuple positions.
    pub(crate) members: Vec<u32>,
    /// Shared tuple data (memoized across same-signature facets).
    pub(crate) data: Arc<TupleData>,
    /// Start of this constraint's residue block.
    pub(crate) residue_base: u32,
}

/// The immutable half of the CSP, shared by all search workers.
pub(crate) struct Tables {
    /// Dense index → domain vertex.
    pub(crate) vars: Vec<VertexId>,
    /// Per variable: candidate output vertices (dense value index →
    /// output vertex), memoized by `(color, base-carrier)`.
    pub(crate) values: Vec<Arc<Vec<VertexId>>>,
    /// Per variable: start word of its domain bitset in
    /// [`State::words`]; `word_off[vars.len()]` is the total word count.
    pub(crate) word_off: Vec<u32>,
    /// The table constraints: one per facet of the domain, followed by
    /// the symmetry-breaking (lex-leader) constraints.
    pub(crate) constraints: Vec<TableConstraint>,
    /// How many leading entries of `constraints` are facet constraints;
    /// the rest are lex-leader symmetry breakers.
    pub(crate) facet_constraints: usize,
    /// Per variable: indices of constraints it appears in.
    pub(crate) constraints_of: Vec<Vec<u32>>,
    /// Total residue-slot count across all constraints.
    pub(crate) residue_len: usize,
}

/// The mutable half of the CSP: current domains (bitsets + counts), the
/// backtracking trail, and the GAC residues. Cloned once per parallel
/// search worker; never cloned per node.
#[derive(Clone)]
pub(crate) struct State {
    /// Domain bitsets, all variables concatenated (see
    /// [`Tables::word_off`]).
    pub(crate) words: Vec<u64>,
    /// Current domain size per variable.
    pub(crate) count: Vec<u32>,
    /// Removal trail: `(variable, value)` in removal order.
    pub(crate) trail: Vec<(u32, u32)>,
    /// Last witnessing tuple per constraint × position × value
    /// ([`NO_RESIDUE`] when none cached). Stale entries are sound: a
    /// residue is always re-validated against the current domains
    /// before it is trusted.
    pub(crate) residues: Vec<u32>,
    /// dom/wdeg weights: per variable, the summed weight of its
    /// constraints. Every constraint starts at weight 1; each wipe-out a
    /// constraint causes bumps all of its members. Conflict weights are
    /// *not* undone on backtrack — they are the search's memory of where
    /// the hard conflicts live, steering branching toward them.
    pub(crate) wdeg: Vec<u64>,
}

impl Tables {
    /// The word range of variable `var`'s domain bitset.
    #[inline]
    fn word_range(&self, var: usize) -> std::ops::Range<usize> {
        self.word_off[var] as usize..self.word_off[var + 1] as usize
    }

    /// Builds the initial (full) state: every candidate present, empty
    /// trail, no residues.
    fn initial_state(&self) -> State {
        let total_words = self.word_off.last().copied().unwrap_or(0) as usize;
        let mut words = vec![0u64; total_words];
        let mut count = Vec::with_capacity(self.vars.len());
        for (var, vals) in self.values.iter().enumerate() {
            let n = vals.len();
            count.push(n as u32);
            let range = self.word_range(var);
            for (i, w) in words[range].iter_mut().enumerate() {
                let lo = i * 64;
                let bits = n.saturating_sub(lo).min(64);
                *w = if bits == 64 {
                    !0u64
                } else {
                    (1u64 << bits) - 1
                };
            }
        }
        State {
            words,
            count,
            trail: Vec::new(),
            residues: vec![NO_RESIDUE; self.residue_len],
            wdeg: self
                .constraints_of
                .iter()
                .map(|cs| cs.len().max(1) as u64)
                .collect(),
        }
    }
}

impl State {
    /// Whether value `val` is in `var`'s current domain.
    #[inline]
    pub(crate) fn contains(&self, tables: &Tables, var: usize, val: u32) -> bool {
        let w = tables.word_off[var] as usize + (val / 64) as usize;
        self.words[w] & (1u64 << (val % 64)) != 0
    }

    /// Removes `val` from `var`'s domain, recording it on the trail.
    /// Must only be called for present values.
    #[inline]
    pub(crate) fn remove(&mut self, tables: &Tables, var: usize, val: u32) {
        let w = tables.word_off[var] as usize + (val / 64) as usize;
        debug_assert!(self.words[w] & (1u64 << (val % 64)) != 0);
        self.words[w] &= !(1u64 << (val % 64));
        self.count[var] -= 1;
        self.trail.push((var as u32, val));
    }

    /// Undoes every removal past `mark` (a previous `trail.len()`).
    pub(crate) fn undo_to(&mut self, tables: &Tables, mark: usize) {
        while self.trail.len() > mark {
            let Some((var, val)) = self.trail.pop() else {
                break; // unreachable: guarded by the loop condition
            };
            let w = tables.word_off[var as usize] as usize + (val / 64) as usize;
            self.words[w] |= 1u64 << (val % 64);
            self.count[var as usize] += 1;
        }
    }

    /// The current domain values of `var`, in increasing order.
    pub(crate) fn domain_values(&self, tables: &Tables, var: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count[var] as usize);
        for (i, &w) in self.words[tables.word_range(var)].iter().enumerate() {
            let mut w = w;
            while w != 0 {
                out.push((i * 64) as u32 + w.trailing_zeros());
                w &= w - 1;
            }
        }
        out
    }

    /// The single remaining value of a singleton domain.
    pub(crate) fn single_value(&self, tables: &Tables, var: usize) -> u32 {
        debug_assert_eq!(self.count[var], 1);
        for (i, &w) in self.words[tables.word_range(var)].iter().enumerate() {
            if w != 0 {
                return (i * 64) as u32 + w.trailing_zeros();
            }
        }
        unreachable!("singleton domain has a bit set")
    }

    /// Whether tuple `t` of constraint `ci` is valid under the current
    /// domains (every entry still present).
    #[inline]
    fn tuple_valid(&self, tables: &Tables, c: &TableConstraint, t: u32) -> bool {
        let arity = c.data.arity;
        let base = t as usize * arity;
        for (pos, &m) in c.members.iter().enumerate() {
            if !self.contains(tables, m as usize, c.data.tuples[base + pos]) {
                return false;
            }
        }
        true
    }
}

/// GAC fixpoint over the constraint tables, pruning `state`'s domains in
/// place (every removal lands on the trail). Seeding with a variable
/// revises only its constraints first; `None` revises everything.
/// Returns `false` on a domain wipe-out.
///
/// Per (constraint, position, value), the last witnessing tuple is
/// cached in `state.residues` and re-validated before the support lists
/// are rescanned — on the deep, repetitive subtrees of the search the
/// residue check almost always succeeds, replacing the table scan with
/// an O(arity) bit test.
pub(crate) fn propagate(
    tables: &Tables,
    state: &mut State,
    seed: Option<usize>,
    stats: &mut SearchStats,
) -> bool {
    let mut queue: Vec<u32> = match seed {
        Some(v) => tables.constraints_of[v].clone(),
        None => (0..tables.constraints.len() as u32).collect(),
    };
    let mut queued = vec![false; tables.constraints.len()];
    for &q in &queue {
        queued[q as usize] = true;
    }
    while let Some(ci) = queue.pop() {
        queued[ci as usize] = false;
        let c = &tables.constraints[ci as usize];
        for (pos, &m) in c.members.iter().enumerate() {
            let m = m as usize;
            let mut removed = false;
            for val in state.domain_values(tables, m) {
                let ridx = c.residue_base as usize + c.data.pos_off[pos] as usize + val as usize;
                let r = state.residues[ridx];
                if r != NO_RESIDUE && state.tuple_valid(tables, c, r) {
                    stats.residue_hits += 1;
                    continue;
                }
                stats.residue_misses += 1;
                let supports = &c.data.supports[c.data.pos_off[pos] as usize + val as usize];
                match supports.iter().find(|&&t| state.tuple_valid(tables, c, t)) {
                    Some(&t) => {
                        // Seed the found tuple multi-directionally: it
                        // witnesses *every* (position, value) pair it
                        // covers, so future lookups from the sibling
                        // positions start from a fresh residue instead
                        // of a table scan.
                        let base = t as usize * c.data.arity;
                        for pos2 in 0..c.data.arity {
                            let val2 = c.data.tuples[base + pos2];
                            let off2 = c.data.pos_off[pos2];
                            state.residues
                                [c.residue_base as usize + off2 as usize + val2 as usize] = t;
                        }
                    }
                    None => {
                        state.remove(tables, m, val);
                        stats.prunes += 1;
                        removed = true;
                        if state.count[m] == 0 {
                            // dom/wdeg: this constraint caused a
                            // wipe-out — bump the weight of all of its
                            // members so branching gravitates here.
                            for &cm in c.members.iter() {
                                state.wdeg[cm as usize] += 1;
                            }
                            stats.wipeouts += 1;
                            return false;
                        }
                    }
                }
            }
            if removed {
                for &other in &tables.constraints_of[m] {
                    if !queued[other as usize] {
                        queued[other as usize] = true;
                        queue.push(other);
                    }
                }
            }
        }
    }
    true
}

/// Checks that the image of every face of `facet` under the aligned
/// assignment is an output simplex allowed by the face's carrier.
pub(crate) fn facet_image_valid(
    task: &dyn Task,
    domain: &Complex,
    facet: &Simplex,
    assignment: &[VertexId],
) -> bool {
    let outputs = task.outputs();
    let vs = facet.vertices();
    let m = vs.len();
    debug_assert!(m <= 63);
    for mask in 1u64..(1 << m) {
        let face = Simplex::from_vertices((0..m).filter(|i| mask & (1 << i) != 0).map(|i| vs[i]));
        let image = Simplex::from_vertices(
            (0..m)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| assignment[i]),
        );
        if !outputs.contains_simplex(&image) {
            return false;
        }
        let carrier = domain.carrier_in_base(&face);
        if !task.allows(&carrier, &image) {
            return false;
        }
    }
    true
}

/// Enumerates the allowed tuples of one facet over the given candidate
/// lists, producing the shared [`TupleData`] (tuples in dense
/// value-index space plus support lists). Returns `None` when the facet
/// admits no assignment at all (the whole CSP is then unsatisfiable).
fn build_tuple_data(
    task: &dyn Task,
    domain: &Complex,
    facet: &Simplex,
    candidates: &[&Arc<Vec<VertexId>>],
) -> Option<Arc<TupleData>> {
    let arity = candidates.len();
    let mut pos_off = Vec::with_capacity(arity + 1);
    let mut total = 0u32;
    for c in candidates {
        pos_off.push(total);
        total += c.len() as u32;
    }
    pos_off.push(total);

    let mut tuples: Vec<u32> = Vec::new();
    let mut choice = vec![0u32; arity];
    let mut assignment = vec![VertexId::from_index(0); arity];
    'outer: loop {
        for (i, &c) in choice.iter().enumerate() {
            assignment[i] = candidates[i][c as usize];
        }
        if facet_image_valid(task, domain, facet, &assignment) {
            tuples.extend_from_slice(&choice);
        }
        let mut i = 0;
        loop {
            if i == arity {
                break 'outer;
            }
            choice[i] += 1;
            if (choice[i] as usize) < candidates[i].len() {
                break;
            }
            choice[i] = 0;
            i += 1;
        }
    }
    if tuples.is_empty() {
        return None;
    }

    let mut supports: Vec<Vec<u32>> = vec![Vec::new(); total as usize];
    for t in 0..tuples.len() / arity {
        for pos in 0..arity {
            let val = tuples[t * arity + pos];
            supports[(pos_off[pos] + val) as usize].push(t as u32);
        }
    }
    Some(Arc::new(TupleData {
        arity,
        pos_off,
        tuples,
        supports,
    }))
}

/// The depth-1 lex-leader symmetry breakers derived from the task's
/// declared symmetries: removals from variable 0's domain (unary
/// constraints) plus binary table constraints.
struct LexBreak {
    /// The pivot variable the breakers anchor at (position 0 of the
    /// lex order).
    pivot: usize,
    /// Value indices to remove from the pivot's initial domain.
    removals: Vec<u32>,
    /// Binary constraints `(members, tuple data)` over `(pivot, u)`.
    constraints: Vec<(Vec<u32>, Arc<TupleData>)>,
}

/// Lifts each declared [`TaskSymmetry`] to the concrete search domain
/// and output complex (skipping any that does not act on both) and emits
/// the first position of the lex-leader constraint `A ≤_lex g(A)` for
/// a fixed variable order: `A(v₀) ≤ π_O(A(π_D⁻¹(v₀)))`, compared by
/// output-vertex index. The order anchors at a deterministic *pivot*
/// `v₀` — the variable with the largest candidate list (lowest index on
/// ties), where a single inequality excises the most assignments;
/// corner variables with singleton domains would make every breaker
/// vacuous. When `π_D` fixes `v₀` this is a unary filter; otherwise a
/// binary table constraint. Both are *implied* by the full
/// lex-leader constraint, which the lex-least solution of every orbit
/// satisfies — so satisfiability is preserved, every surviving witness
/// is a genuine solution of the original query (no un-canonicalization
/// step is needed), and unsolvable instances stay unsolvable.
///
/// For a genuine symmetry the candidate lists themselves are
/// equivariant (`π_O` maps `u`'s candidates bijectively onto `v₀`'s),
/// so a breaker can never be empty and the unary filter can never wipe
/// variable 0 out; either would only arise from a bogus declaration,
/// and is skipped rather than trusted as an unsolvability proof.
fn lex_leader_constraints(
    task: &dyn Task,
    domain: &Complex,
    vars: &[VertexId],
    var_of: &HashMap<VertexId, u32>,
    values: &[Arc<Vec<VertexId>>],
) -> LexBreak {
    let mut lex = LexBreak {
        pivot: 0,
        removals: Vec::new(),
        constraints: Vec::new(),
    };
    let symmetries = task.symmetries();
    if symmetries.is_empty() || vars.is_empty() {
        return lex;
    }
    let pivot = (0..vars.len())
        .max_by(|&a, &b| values[a].len().cmp(&values[b].len()).then(b.cmp(&a)))
        .unwrap_or(0);
    lex.pivot = pivot;
    let outputs = task.outputs();
    let top = domain.level();
    let v0 = vars[pivot];
    let d0 = &values[pivot];
    let mut keep = vec![true; d0.len()];
    let mut seen: HashSet<(u32, Vec<u32>)> = HashSet::new();
    for sym in &symmetries {
        let Some((dom_action, out_action)) = lift_symmetry(sym, domain, outputs) else {
            continue;
        };
        // u = π_D⁻¹(v₀): scan the top-level map for v₀'s preimage.
        let Some(u) = dom_action
            .level_map(top)
            .iter()
            .position(|&img| img == v0)
            .map(VertexId::from_index)
        else {
            continue; // v₀ outside the action's range (defensive)
        };
        if u == v0 {
            for (a, &w) in d0.iter().enumerate() {
                if out_action.apply_vertex(0, w).index() < w.index() {
                    keep[a] = false;
                }
            }
            continue;
        }
        let Some(&mu) = var_of.get(&u) else { continue };
        let du = &values[mu as usize];
        let images: Vec<usize> = du
            .iter()
            .map(|&w| out_action.apply_vertex(0, w).index())
            .collect();
        let mut tuples: Vec<u32> = Vec::new();
        for (a, &wa) in d0.iter().enumerate() {
            for (b, &img) in images.iter().enumerate() {
                if wa.index() <= img {
                    tuples.extend_from_slice(&[a as u32, b as u32]);
                }
            }
        }
        if tuples.is_empty() {
            continue; // only a bogus declaration gets here
        }
        if tuples.len() == 2 * d0.len() * du.len() {
            continue; // vacuous: every pair allowed
        }
        if !seen.insert((mu, tuples.clone())) {
            continue; // duplicate breaker from another group element
        }
        let pos_off = vec![0, d0.len() as u32, (d0.len() + du.len()) as u32];
        let mut supports: Vec<Vec<u32>> = vec![Vec::new(); d0.len() + du.len()];
        for t in 0..tuples.len() / 2 {
            supports[tuples[t * 2] as usize].push(t as u32);
            supports[d0.len() + tuples[t * 2 + 1] as usize].push(t as u32);
        }
        lex.constraints.push((
            vec![pivot as u32, mu],
            Arc::new(TupleData {
                arity: 2,
                pos_off,
                tuples,
                supports,
            }),
        ));
    }
    if keep.iter().any(|&k| k) {
        lex.removals = (0..d0.len() as u32)
            .filter(|&a| !keep[a as usize])
            .collect();
    }
    lex
}

/// Checks that a declared symmetry genuinely acts on the concrete search
/// domain and the output complex: both color-permutation lifts must
/// exist ([`chain_action`]) and map the respective facet sets onto
/// themselves.
fn lift_symmetry(
    sym: &TaskSymmetry,
    domain: &Complex,
    outputs: &Complex,
) -> Option<(ChainAction, ChainAction)> {
    let in_matching = match &sym.input_labels {
        Some(m) => LabelMatching::Relabeled(m),
        None => LabelMatching::Strict,
    };
    let dom_action = chain_action(domain, &sym.color, in_matching)?;
    if !dom_action.preserves_facets(domain) {
        return None;
    }
    let out_matching = match &sym.output_labels {
        Some(m) => LabelMatching::Relabeled(m),
        None => LabelMatching::Strict,
    };
    let out_action = chain_action(outputs, &sym.color, out_matching)?;
    if !out_action.preserves_facets(outputs) {
        return None;
    }
    Some((dom_action, out_action))
}

/// Builds the CSP for the carried-map search: candidate lists memoized
/// by `(color, base-carrier)`, constraint tables built concurrently over
/// facet chunks (up to `threads` workers) and memoized by the facet's
/// intern-key signature, plus depth-1 lex-leader symmetry breakers for
/// the task's declared symmetries. Returns `None` when some vertex has
/// no candidate or some facet no allowed tuple — the search is then
/// unsatisfiable without visiting a single node.
pub(crate) fn build(task: &dyn Task, domain: &Complex, threads: usize) -> Option<(Tables, State)> {
    let outputs = task.outputs();
    let vars: Vec<VertexId> = domain.used_vertices();
    let var_of: HashMap<VertexId, u32> = vars
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as u32))
        .collect();

    // Candidate lists, memoized by the vertex's intern key: interned
    // subdivisions repeat (color, base-carrier) pairs across many
    // vertices, and the candidate set is a function of that key alone.
    let mut candidate_memo: HashMap<(ProcessId, Simplex), Arc<Vec<VertexId>>> = HashMap::new();
    let mut values: Vec<Arc<Vec<VertexId>>> = Vec::with_capacity(vars.len());
    for &v in &vars {
        let color = domain.color(v);
        let carrier = &domain.vertex(v).base_carrier;
        let cands = candidate_memo
            .entry((color, carrier.clone()))
            .or_insert_with(|| {
                Arc::new(
                    (0..outputs.num_vertices())
                        .map(VertexId::from_index)
                        .filter(|&w| {
                            outputs.color(w) == color
                                && outputs.contains_simplex(&Simplex::vertex(w))
                                && task.allows(carrier, &Simplex::vertex(w))
                        })
                        .collect(),
                )
            })
            .clone();
        if cands.is_empty() {
            return None;
        }
        values.push(cands);
    }

    // Constraint tables, one per facet, built concurrently in facet
    // chunks. Each chunk worker memoizes tuple data by the facet's
    // signature; the per-chunk results are merged in chunk order, so
    // the constraint list is identical for every thread count.
    let facets = domain.facets();
    let chunked: Vec<Vec<Option<TableConstraint>>> =
        parallel_map_ranges(facets.len(), threads.max(1), |range| {
            let mut memo: HashMap<Vec<(ProcessId, Simplex)>, Arc<TupleData>> = HashMap::new();
            let mut out = Vec::with_capacity(range.len());
            for facet in &facets[range] {
                let members: Vec<u32> = facet.vertices().iter().map(|v| var_of[v]).collect();
                let signature = domain.simplex_signature(facet);
                let data = match memo.get(&signature) {
                    Some(d) => Some(d.clone()),
                    None => {
                        let candidates: Vec<&Arc<Vec<VertexId>>> =
                            members.iter().map(|&m| &values[m as usize]).collect();
                        let built = build_tuple_data(task, domain, facet, &candidates);
                        if let Some(d) = &built {
                            memo.insert(signature, d.clone());
                        }
                        built
                    }
                };
                out.push(data.map(|data| TableConstraint {
                    members,
                    data,
                    residue_base: 0, // assigned after the merge
                }));
            }
            out
        });

    let mut constraints: Vec<TableConstraint> = Vec::with_capacity(facets.len());
    let mut residue_len = 0u32;
    for c in chunked.into_iter().flatten() {
        let mut c = c?;
        c.residue_base = residue_len;
        residue_len += c.data.pos_off.last().copied().unwrap_or(0);
        constraints.push(c);
    }
    let facet_constraints = constraints.len();

    // Symmetry breaking: only the lex-least witness of each solution
    // orbit survives, so equivalent subtrees are pruned instead of
    // re-searched. Lex breakers propagate through the same GAC machinery
    // as the facet tables.
    let lex = lex_leader_constraints(task, domain, &vars, &var_of, &values);
    for (members, data) in lex.constraints {
        let residue_base = residue_len;
        residue_len += data.pos_off.last().copied().unwrap_or(0);
        constraints.push(TableConstraint {
            members,
            data,
            residue_base,
        });
    }

    let mut constraints_of = vec![Vec::new(); vars.len()];
    for (ci, c) in constraints.iter().enumerate() {
        for &m in &c.members {
            constraints_of[m as usize].push(ci as u32);
        }
    }

    let mut word_off = Vec::with_capacity(vars.len() + 1);
    let mut off = 0u32;
    for vals in &values {
        word_off.push(off);
        off += vals.len().div_ceil(64) as u32;
    }
    word_off.push(off);

    let tables = Tables {
        vars,
        values,
        word_off,
        constraints,
        facet_constraints,
        constraints_of,
        residue_len: residue_len as usize,
    };
    let mut state = tables.initial_state();
    // Unary lex filters land on the trail at the root, where nothing
    // ever backtracks past them.
    for val in lex.removals {
        state.remove(&tables, lex.pivot, val);
    }
    Some((tables, state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{consensus, SetConsensus};

    #[test]
    fn build_produces_bitset_domains_matching_candidates() {
        let t = SetConsensus::new(2, 2, &[0, 1, 2]);
        let domain = t.inputs().iterated_subdivision(1);
        let (tables, state) = build(&t, &domain, 1).expect("satisfiable");
        assert_eq!(tables.vars.len(), domain.used_vertices().len());
        assert_eq!(tables.facet_constraints, domain.facet_count());
        assert!(tables.constraints.len() >= tables.facet_constraints);
        for c in &tables.constraints {
            assert!(c.data.num_tuples() > 0, "empty tables are rejected early");
        }
        let mut narrowed = 0usize;
        for var in 0..tables.vars.len() {
            let vals = state.domain_values(&tables, var);
            // Only the lex pivot may have been narrowed by unary filters.
            assert!(!vals.is_empty());
            assert!(vals.len() <= tables.values[var].len());
            narrowed += usize::from(vals.len() < tables.values[var].len());
            assert_eq!(state.count[var] as usize, vals.len());
            for &val in &vals {
                assert!(state.contains(&tables, var, val));
            }
        }
        assert!(narrowed <= 1, "unary lex filters touch only the pivot");
    }

    #[test]
    fn trail_remove_and_undo_round_trips() {
        let t = SetConsensus::new(2, 2, &[0, 1, 2]);
        let domain = t.inputs().iterated_subdivision(1);
        let (tables, mut state) = build(&t, &domain, 1).expect("satisfiable");
        let var = (0..tables.vars.len())
            .find(|&v| state.count[v] > 1)
            .expect("some branching variable");
        let before = state.domain_values(&tables, var);
        let mark = state.trail.len();
        for &val in &before[1..] {
            state.remove(&tables, var, val);
        }
        assert_eq!(state.count[var], 1);
        assert_eq!(state.single_value(&tables, var), before[0]);
        state.undo_to(&tables, mark);
        assert_eq!(state.domain_values(&tables, var), before);
        assert_eq!(state.trail.len(), mark);
    }

    #[test]
    fn parallel_table_build_matches_serial() {
        let t = SetConsensus::new(3, 2, &[0, 1, 2]);
        let domain = t.inputs().iterated_subdivision(1);
        let (serial, _) = build(&t, &domain, 1).expect("satisfiable");
        for threads in [2usize, 4] {
            let (parallel, _) = build(&t, &domain, threads).expect("satisfiable");
            assert_eq!(serial.constraints.len(), parallel.constraints.len());
            for (a, b) in serial.constraints.iter().zip(&parallel.constraints) {
                assert_eq!(a.members, b.members);
                assert_eq!(a.data.tuples, b.data.tuples);
                assert_eq!(a.data.pos_off, b.data.pos_off);
                assert_eq!(a.residue_base, b.residue_base);
            }
        }
    }

    #[test]
    fn memoized_tables_are_shared_across_same_signature_facets() {
        // At level 1 a facet's (color, base_carrier) signature still
        // determines the facet, but from level 2 on base carriers lose
        // information and signatures repeat (e.g. every facet subdividing
        // Chr¹'s central simplex has the all-full signature); the memo
        // must make same-signature facets share their TupleData.
        let t = SetConsensus::new(2, 2, &[0, 1, 2]);
        let domain = t.inputs().iterated_subdivision(2);
        let (tables, _) = build(&t, &domain, 1).expect("satisfiable");
        let mut by_sig: HashMap<Vec<(ProcessId, Simplex)>, *const TupleData> = HashMap::new();
        let mut shared = 0usize;
        for (ci, c) in tables.constraints[..tables.facet_constraints]
            .iter()
            .enumerate()
        {
            let sig = domain.simplex_signature(&domain.facets()[ci]);
            match by_sig.get(&sig) {
                Some(&ptr) => {
                    assert!(
                        std::ptr::eq(ptr, Arc::as_ptr(&c.data)),
                        "same signature shares data"
                    );
                    shared += 1;
                }
                None => {
                    by_sig.insert(sig, Arc::as_ptr(&c.data));
                }
            }
        }
        assert!(shared > 0, "interned subdivisions repeat signatures");
    }

    #[test]
    fn lex_breakers_are_emitted_and_nonempty_for_symmetric_tasks() {
        // consensus(2, [0,1]) declares both the pure color swap and the
        // diagonal (color, value) swap; the concrete Chr¹ pseudosphere
        // domain admits both actions, so at least one breaker (unary or
        // binary) must survive, and every binary breaker must keep at
        // least one tuple (candidate lists are equivariant).
        let t = consensus(2, &[0, 1]);
        assert!(!t.symmetries().is_empty());
        let domain = t.inputs().iterated_subdivision(1);
        let (tables, state) = build(&t, &domain, 1).expect("builds");
        let breakers = &tables.constraints[tables.facet_constraints..];
        let pivot = (0..tables.vars.len())
            .max_by(|&a, &b| {
                tables.values[a]
                    .len()
                    .cmp(&tables.values[b].len())
                    .then(b.cmp(&a))
            })
            .unwrap();
        let filtered = tables.values[pivot].len() - state.count[pivot] as usize;
        assert!(breakers.len() + filtered > 0, "some breaker must be active");
        for c in breakers {
            assert_eq!(c.data.arity, 2);
            assert_eq!(c.members[0] as usize, pivot, "breakers anchor at the pivot");
            assert!(c.data.num_tuples() > 0);
        }
        assert!(
            state.count[pivot] > 0,
            "unary filters never wipe the pivot out"
        );
    }

    #[test]
    fn propagation_prunes_like_the_paper_instances() {
        // 2-process consensus on Chr¹: GAC alone wipes out a domain.
        let t = consensus(2, &[0, 1]);
        let domain = t.inputs().iterated_subdivision(1);
        let (tables, mut state) = build(&t, &domain, 1).expect("builds");
        let mut stats = SearchStats::default();
        assert!(!propagate(&tables, &mut state, None, &mut stats));
        assert!(stats.prunes > 0);
        assert_eq!(stats.wipeouts, 1);
    }
}
