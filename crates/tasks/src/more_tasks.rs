//! Further classic tasks: adopt-commit and (generalized) simplex
//! agreement — both used as additional calibration points for the
//! carried-map solver.

use act_topology::{ColorSet, Complex, ProcessId, Simplex, VertexId};

use crate::task::{pseudosphere, Task};

/// Flags of an adopt-commit output.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AcFlag {
    /// The process adopted the value (agreement not yet reached).
    Adopt,
    /// The process committed to the value.
    Commit,
}

/// The adopt-commit task: processes propose values and output
/// `(flag, value)` pairs with
///
/// * **validity** — output values were proposed by participants;
/// * **agreement** — if some process commits `v`, every output value is
///   `v`;
/// * **convergence** — if all participants propose the same `v`, every
///   output is `(commit, v)`.
///
/// Wait-free solvable (it is the conciliator half of round-based
/// consensus); the solver finds the map and the tests pin the minimal
/// subdivision depth.
#[derive(Clone, Debug)]
pub struct AdoptCommit {
    n: usize,
    values: Vec<u64>,
    inputs: Complex,
    outputs: Complex,
}

/// Encodes `(flag, value)` as a vertex label.
pub fn encode_ac(flag: AcFlag, value: u64) -> u64 {
    match flag {
        AcFlag::Adopt => 2 * value,
        AcFlag::Commit => 2 * value + 1,
    }
}

/// Decodes a vertex label back to `(flag, value)`.
pub fn decode_ac(label: u64) -> (AcFlag, u64) {
    if label.is_multiple_of(2) {
        (AcFlag::Adopt, label / 2)
    } else {
        (AcFlag::Commit, label / 2)
    }
}

impl AdoptCommit {
    /// Creates the adopt-commit task over `n` processes and the given
    /// (deduplicated) proposal values.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two distinct values are supplied.
    pub fn new(n: usize, values: &[u64]) -> AdoptCommit {
        let mut distinct = values.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(
            distinct.len() >= 2,
            "adopt-commit needs at least two values"
        );
        let inputs = pseudosphere(n, &distinct);
        // Output complex: every combination of (flag, value) per process
        // satisfying the agreement condition.
        let labels: Vec<u64> = distinct
            .iter()
            .flat_map(|&v| [encode_ac(AcFlag::Adopt, v), encode_ac(AcFlag::Commit, v)])
            .collect();
        let all = pseudosphere(n, &labels);
        // Restrict facets to agreement-consistent combinations.
        let facets: Vec<Simplex> = all
            .facets()
            .iter()
            .filter(|f| {
                let outs: Vec<(AcFlag, u64)> = f
                    .vertices()
                    .iter()
                    .map(|&v| decode_ac(all.vertex(v).label))
                    .collect();
                let committed: Vec<u64> = outs
                    .iter()
                    .filter(|(fl, _)| *fl == AcFlag::Commit)
                    .map(|&(_, v)| v)
                    .collect();
                committed
                    .first()
                    .is_none_or(|&c| outs.iter().all(|&(_, v)| v == c))
            })
            .cloned()
            .collect();
        let outputs = all.sub_complex(facets);
        AdoptCommit {
            n,
            values: distinct,
            inputs,
            outputs,
        }
    }
}

impl Task for AdoptCommit {
    fn name(&self) -> String {
        format!(
            "adopt-commit ({} processes, {} values)",
            self.n,
            self.values.len()
        )
    }

    fn num_processes(&self) -> usize {
        self.n
    }

    fn inputs(&self) -> &Complex {
        &self.inputs
    }

    fn outputs(&self) -> &Complex {
        &self.outputs
    }

    fn allows(&self, input: &Simplex, output: &Simplex) -> bool {
        let proposed: Vec<u64> = input
            .vertices()
            .iter()
            .map(|&v| self.inputs.vertex(v).label)
            .collect();
        let outs: Vec<(AcFlag, u64)> = output
            .vertices()
            .iter()
            .map(|&v| decode_ac(self.outputs.vertex(v).label))
            .collect();
        // Validity.
        if !outs.iter().all(|&(_, v)| proposed.contains(&v)) {
            return false;
        }
        // Agreement: a committed value forces all values.
        if let Some(&c) = outs
            .iter()
            .filter(|(f, _)| *f == AcFlag::Commit)
            .map(|(_, v)| v)
            .next()
        {
            if !outs.iter().all(|&(_, v)| v == c) {
                return false;
            }
        }
        // Convergence: unanimous inputs force unanimous commits. (Checked
        // against the *carrier*: the processes this output's carrier saw.)
        let unanimous = proposed.windows(2).all(|w| w[0] == w[1]);
        if unanimous {
            let v = proposed[0];
            if !outs.iter().all(|&(f, val)| f == AcFlag::Commit && val == v) {
                return false;
            }
        }
        true
    }
}

/// Generalized simplex agreement at depth `m`: processes start on the
/// standard simplex and must converge on a simplex of `Chr^m s`
/// respecting carriers. The identity map solves it from exactly `m`
/// subdivisions — a calibration task for the solver.
#[derive(Clone, Debug)]
pub struct SimplexAgreement {
    n: usize,
    m: usize,
    inputs: Complex,
    outputs: Complex,
    /// For each output vertex (by index), the colors of its carrier in `s`.
    carrier_colors: Vec<ColorSet>,
}

impl SimplexAgreement {
    /// Creates simplex agreement on `Chr^m s` for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `m` is 0.
    pub fn new(n: usize, m: usize) -> SimplexAgreement {
        assert!(m >= 1, "simplex agreement needs at least one subdivision");
        let subdivided = Complex::standard(n).iterated_subdivision(m);
        // Flatten Chr^m s into a level-0 labeled complex: label = vertex
        // index in the subdivision.
        let verts: Vec<(ProcessId, u64)> = (0..subdivided.num_vertices())
            .map(|i| (subdivided.color(VertexId::from_index(i)), i as u64))
            .collect();
        let facets: Vec<Vec<usize>> = subdivided
            .facets()
            .iter()
            .map(|f| f.vertices().iter().map(|v| v.index()).collect())
            .collect();
        let carrier_colors = (0..subdivided.num_vertices())
            .map(|i| subdivided.base_colors_of_vertex(VertexId::from_index(i)))
            .collect();
        let outputs = Complex::from_labeled_vertices(n, verts, facets);
        SimplexAgreement {
            n,
            m,
            inputs: Complex::standard(n),
            outputs,
            carrier_colors,
        }
    }

    /// The subdivision depth.
    pub fn depth(&self) -> usize {
        self.m
    }
}

impl Task for SimplexAgreement {
    fn name(&self) -> String {
        format!("simplex agreement on Chr^{} (n = {})", self.m, self.n)
    }

    fn num_processes(&self) -> usize {
        self.n
    }

    fn inputs(&self) -> &Complex {
        &self.inputs
    }

    fn outputs(&self) -> &Complex {
        &self.outputs
    }

    fn allows(&self, input: &Simplex, output: &Simplex) -> bool {
        // Carrier inclusion: the output simplex's carrier colors must be
        // participants.
        let participants = self.inputs.colors(input);
        output
            .vertices()
            .iter()
            .all(|&v| self.carrier_colors[v.index()].is_subset_of(participants))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapsearch::{find_carried_map, verify_carried_map};

    #[test]
    fn encode_decode_roundtrip() {
        for v in 0..10 {
            for f in [AcFlag::Adopt, AcFlag::Commit] {
                assert_eq!(decode_ac(encode_ac(f, v)), (f, v));
            }
        }
    }

    #[test]
    fn adopt_commit_output_complex_is_agreement_consistent() {
        let t = AdoptCommit::new(2, &[0, 1]);
        for f in t.outputs().facets() {
            let outs: Vec<(AcFlag, u64)> = f
                .vertices()
                .iter()
                .map(|&v| decode_ac(t.outputs().vertex(v).label))
                .collect();
            if let Some(&(_, c)) = outs.iter().find(|(fl, _)| *fl == AcFlag::Commit) {
                assert!(outs.iter().all(|&(_, v)| v == c));
            }
        }
    }

    #[test]
    fn adopt_commit_not_solvable_without_communication() {
        // Depth 0 (the raw inputs) cannot solve adopt-commit: a process
        // alone must commit its own value (convergence on its solo
        // carrier), and two solo commits of different values violate
        // agreement on the full facet.
        let t = AdoptCommit::new(2, &[0, 1]);
        let domain = t.inputs().clone();
        let result = find_carried_map(&t, &domain, 100_000);
        assert!(result.is_unsolvable());
    }

    #[test]
    fn adopt_commit_wait_free_solvable() {
        // One immediate-snapshot round cannot solve it either (commit
        // decisions need to see who saw whom twice); two rounds suffice.
        let t = AdoptCommit::new(2, &[0, 1]);
        let d1 = t.inputs().iterated_subdivision(1);
        let r1 = find_carried_map(&t, &d1, 1_000_000);
        let d2 = t.inputs().iterated_subdivision(2);
        let r2 = find_carried_map(&t, &d2, 5_000_000);
        // Pin the observed depths: the classical 2-round structure.
        match (r1.is_found(), r2.is_found()) {
            (true, _) => {
                let map = r1.into_map().unwrap();
                assert!(verify_carried_map(&t, &d1, &map));
            }
            (false, true) => {
                let map = r2.into_map().unwrap();
                assert!(verify_carried_map(&t, &d2, &map));
            }
            other => panic!("adopt-commit must be wait-free solvable, got {other:?}"),
        }
    }

    #[test]
    fn simplex_agreement_solved_by_identity_at_matching_depth() {
        for m in 1..=2 {
            let t = SimplexAgreement::new(2, m);
            let domain = t.inputs().iterated_subdivision(m);
            let result = find_carried_map(&t, &domain, 1_000_000);
            let map = result
                .into_map()
                .unwrap_or_else(|| panic!("simplex agreement solvable at depth {m}"));
            assert!(verify_carried_map(&t, &domain, &map));
        }
    }

    #[test]
    fn simplex_agreement_unsolvable_below_depth() {
        // Chr² agreement cannot be solved from a single subdivision: the
        // domain has too few vertices per region to hit every required
        // carrier (checked exactly by exhaustion for n = 2).
        let t = SimplexAgreement::new(2, 2);
        let domain = t.inputs().iterated_subdivision(1);
        let result = find_carried_map(&t, &domain, 2_000_000);
        assert!(result.is_unsolvable());
    }

    #[test]
    fn three_process_simplex_agreement_depth_one() {
        let t = SimplexAgreement::new(3, 1);
        let domain = t.inputs().iterated_subdivision(1);
        let result = find_carried_map(&t, &domain, 2_000_000);
        let map = result.into_map().expect("identity exists");
        assert!(verify_carried_map(&t, &domain, &map));
    }
}
