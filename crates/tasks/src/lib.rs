//! Distributed tasks and the carried-map decision procedure for the FACT
//! reproduction.
//!
//! * [`Task`] — tasks `(I, O, Δ)` over chromatic complexes, with
//!   [`SetConsensus`] (including [`consensus`]), [`TrivialTask`],
//!   [`LeaderElection`] and the [`pseudosphere`] input builder;
//! * [`find_carried_map`] — decides the existence of a chromatic
//!   simplicial map `φ : domain → O` carried by `Δ` (the right-hand side
//!   of the ACT/FACT equivalences), via backtracking with generalized arc
//!   consistency; [`verify_carried_map`] re-checks any found map
//!   exhaustively.
//!
//! # Quickstart
//!
//! ```
//! use act_tasks::{consensus, find_carried_map, Task};
//!
//! // FLP through the topological lens: no chromatic carried map exists
//! // from Chr(I) for 2-process consensus.
//! let t = consensus(2, &[0, 1]);
//! let domain = t.inputs().iterated_subdivision(1);
//! assert!(find_carried_map(&t, &domain, 1_000_000).is_unsolvable());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod csp;
mod engine;
mod mapsearch;
mod more_tasks;
mod sperner;
mod task;

pub use engine::{chaos, mapsearch_threads, SearchConfig, ENGINE_DEGRADED, ENGINE_SCHEMA_VERSION};
pub use mapsearch::{
    find_carried_map, find_carried_map_with_config, find_carried_map_with_stats,
    verify_carried_map, SearchResult, SearchStats, SEARCH_NODES, SEARCH_PRUNES, SEARCH_RESIDUE,
};
pub use more_tasks::{decode_ac, encode_ac, AcFlag, AdoptCommit, SimplexAgreement};
pub use sperner::{
    first_color_labeling, is_subdivided_simplex, own_color_labeling, rainbow_facets,
    sperner_certificate, SpernerLabeling,
};
pub use task::{
    consensus, participants_of, pseudosphere, LeaderElection, SetConsensus, Task, TaskSymmetry,
    TrivialTask,
};
