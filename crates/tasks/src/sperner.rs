//! Sperner-lemma impossibility certificates.
//!
//! Backtracking can *find* maps, and exhausts small unsolvable instances,
//! but parity-type impossibilities (the heart of the ACT lower bounds) are
//! invisible to local consistency: the search space explodes. For the key
//! case — `(n−1)`-set consensus over the rainbow input — unsolvability
//! follows from the chromatic Sperner lemma, whose *preconditions* are
//! checkable on the concrete domain complex:
//!
//! 1. the domain is a pure `(n−1)`-dimensional chromatic pseudomanifold
//!    subdividing the input simplex: every `(n−2)`-face lies in exactly
//!    two facets, except boundary faces (those whose carrier misses some
//!    process), which lie in exactly one;
//! 2. any carried map induces a Sperner labeling: a vertex's decided value
//!    is a proposal of its carrier, i.e. a *color of its carrier*.
//!
//! Under (1) and (2), Sperner's lemma yields an odd — hence non-zero —
//! number of rainbow facets (all `n` values decided), which violates
//! `(n−1)`-agreement. So no carried map exists, at *any* subdivision
//! depth whose domain satisfies (1).
//!
//! The checker also computationally confirms the parity statement itself
//! on sampled labelings (every valid Sperner labeling we generate has an
//! odd number of rainbow facets), tying the certificate back to an
//! executable check.

use std::collections::HashMap;

use act_topology::{ColorSet, Complex, ProcessId, Simplex};

/// Whether `domain` is a pure chromatic `(n−1)`-pseudomanifold whose
/// boundary faces are exactly those with incomplete carriers — the shape
/// of a genuine subdivision of the standard simplex (precondition of the
/// Sperner certificate).
pub fn is_subdivided_simplex(domain: &Complex) -> bool {
    let n = domain.num_processes();
    if !domain.is_pure() || domain.dim() != n as isize - 1 || !domain.is_chromatic() {
        return false;
    }
    // Count facet incidences of every (n−2)-face.
    let mut incidence: HashMap<Simplex, usize> = HashMap::new();
    for facet in domain.facets() {
        for face in facet.non_empty_faces() {
            if face.dim() == n as isize - 2 {
                *incidence.entry(face).or_insert(0) += 1;
            }
        }
    }
    let full = ColorSet::full(n);
    incidence.iter().all(|(face, &count)| {
        let boundary = domain.carrier_colors(face) != full;
        if boundary {
            count == 1
        } else {
            count == 2
        }
    })
}

/// A Sperner labeling of the domain: one process (color) per vertex,
/// constrained to the colors of the vertex's carrier.
pub type SpernerLabeling = HashMap<usize, ProcessId>;

/// Generates the "first-color" Sperner labeling (every vertex labeled with
/// the smallest color of its carrier) — a canonical valid labeling used to
/// exercise the parity check.
pub fn first_color_labeling(domain: &Complex) -> SpernerLabeling {
    domain
        .used_vertices()
        .into_iter()
        .map(|v| {
            let carrier = domain.base_colors_of_vertex(v);
            (v.index(), carrier.min().expect("carriers are non-empty"))
        })
        .collect()
}

/// The "own-color-if-possible" labeling: a vertex takes its own color when
/// the carrier contains it (always true for subdivisions), making every
/// facet rainbow — the other extreme of the spectrum.
pub fn own_color_labeling(domain: &Complex) -> SpernerLabeling {
    domain
        .used_vertices()
        .into_iter()
        .map(|v| (v.index(), domain.color(v)))
        .collect()
}

/// Counts the rainbow facets (all `n` labels distinct) of a labeling.
///
/// # Panics
///
/// Panics if a used vertex has no label or a label violates the Sperner
/// condition (label not a carrier color).
pub fn rainbow_facets(domain: &Complex, labeling: &SpernerLabeling) -> usize {
    let n = domain.num_processes();
    for v in domain.used_vertices() {
        let label = labeling[&v.index()];
        assert!(
            domain.base_colors_of_vertex(v).contains(label),
            "labeling violates the Sperner condition at vertex {v:?}"
        );
    }
    domain
        .facets()
        .iter()
        .filter(|f| {
            let labels: ColorSet = f.vertices().iter().map(|&v| labeling[&v.index()]).collect();
            labels.len() == n
        })
        .count()
}

/// The Sperner certificate: `true` when the domain satisfies the
/// pseudomanifold precondition, so that **every** carried map for
/// `(n−1)`-set consensus on the rainbow input is impossible (any such map
/// would be a Sperner labeling with zero rainbow facets, contradicting the
/// lemma's odd count).
///
/// As an executable sanity check, the canonical labelings are also
/// verified to have an odd number of rainbow facets.
pub fn sperner_certificate(domain: &Complex) -> bool {
    if !is_subdivided_simplex(domain) {
        return false;
    }
    let first = rainbow_facets(domain, &first_color_labeling(domain));
    let own = rainbow_facets(domain, &own_color_labeling(domain));
    debug_assert_eq!(
        first % 2,
        1,
        "Sperner parity violated by first-color labeling"
    );
    debug_assert_eq!(own % 2, 1, "Sperner parity violated by own-color labeling");
    first % 2 == 1 && own % 2 == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;

    #[test]
    fn standard_simplex_is_a_subdivided_simplex() {
        for n in 2..=4 {
            assert!(is_subdivided_simplex(&Complex::standard(n)));
        }
    }

    #[test]
    fn chr_iterates_stay_pseudomanifolds() {
        for n in 2..=3 {
            for m in 1..=2 {
                let c = Complex::standard(n).iterated_subdivision(m);
                assert!(is_subdivided_simplex(&c), "Chr^{m} of s, n = {n}");
            }
        }
    }

    #[test]
    fn proper_subcomplexes_are_rejected() {
        let chr = Complex::standard(3).chromatic_subdivision();
        // Drop one facet: some interior edge now has incidence 1.
        let most: Vec<_> = chr.facets().iter().skip(1).cloned().collect();
        let sub = chr.sub_complex(most);
        assert!(!is_subdivided_simplex(&sub));
    }

    #[test]
    fn sperner_parity_holds_for_canonical_labelings() {
        for n in 2..=3 {
            for m in 1..=2 {
                let c = Complex::standard(n).iterated_subdivision(m);
                let first = rainbow_facets(&c, &first_color_labeling(&c));
                let own = rainbow_facets(&c, &own_color_labeling(&c));
                assert_eq!(first % 2, 1, "n = {n}, m = {m}");
                assert_eq!(own % 2, 1, "n = {n}, m = {m}");
                // Own-color labels make every facet rainbow.
                assert_eq!(own, c.facet_count());
            }
        }
    }

    #[test]
    fn sperner_parity_holds_for_random_labelings() {
        // The lemma quantifies over all labelings; sample many random ones.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
        for n in 2..=3 {
            let c = Complex::standard(n).iterated_subdivision(2);
            for _ in 0..100 {
                let labeling: SpernerLabeling = c
                    .used_vertices()
                    .into_iter()
                    .map(|v| {
                        let carrier: Vec<ProcessId> = c.base_colors_of_vertex(v).iter().collect();
                        let pick = carrier[rng.gen_range(0..carrier.len())];
                        (v.index(), pick)
                    })
                    .collect();
                let rainbow = rainbow_facets(&c, &labeling);
                assert_eq!(rainbow % 2, 1, "odd rainbow count, n = {n}");
            }
        }
    }

    #[test]
    fn certificate_accepts_subdivisions() {
        let c = Complex::standard(3).iterated_subdivision(1);
        assert!(sperner_certificate(&c));
    }
}
