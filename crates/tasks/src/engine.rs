//! The map-search engine: trail-backtracking conflict-directed dom/wdeg
//! search over the bitset CSP of [`crate::csp`], run serially or fanned
//! out over scoped worker threads that split the root variable's
//! candidate values.
//!
//! Branching minimizes `domain size / conflict weight` ([`pick_branch_var`]):
//! every constraint starts at weight 1, and each wipe-out a constraint
//! causes bumps all of its members, so the search gravitates toward the
//! variables implicated in past conflicts. With no conflicts seen the
//! rule degrades to plain MRV. Root branches cleanly refuted (`NoMap`,
//! never a budget/deadline cut) are recorded in a shared nogood store so
//! the serial retry of a panicked chunk never redoes finished work.
//!
//! # Parallel protocol
//!
//! After the root GAC fixpoint, the engine picks the same dom/wdeg
//! variable the serial search would branch on first and
//! partitions its values into contiguous chunks, one per worker
//! (reusing [`act_topology::parallel_map_ranges_catch`], the subdivision
//! engine's deterministic fork/join with panic containment). Each worker
//! clones the mutable CSP state once, searches its branches in value
//! order, and:
//!
//! * checks a shared `AtomicBool` *found/abort* flag at every node,
//!   stopping early once any worker has a witness;
//! * draws every node from a shared atomic *budget pool* of
//!   `max_nodes`, so the whole parallel search is bounded exactly like
//!   the serial one;
//! * checks the wall-clock deadline (when [`SearchConfig::deadline`] is
//!   set) at every node, aborting the whole fan-out into
//!   [`SearchResult::TimedOut`] when it expires;
//! * on success, records `(branch index, witness)` in a shared slot
//!   that keeps the **lowest branch index** — the deterministic rule
//!   for which worker's witness is returned.
//!
//! # Graceful degradation
//!
//! A panicking worker poisons only its own chunk: the panic is caught at
//! the fork/join boundary, an `engine.degraded` event is emitted, and the
//! engine retries the chunk's branches serially on the calling thread
//! (each retry itself under `catch_unwind`). A branch that completes on
//! retry contributes to the verdict exactly as if its worker had never
//! panicked; a branch that cannot complete even serially marks the run
//! *degraded* ([`SearchStats::degraded`]), and a degraded run never
//! claims `Unsolvable` — the strongest verdict it can report without a
//! witness is [`SearchResult::Exhausted`], because some subtree was
//! never exhausted.
//!
//! Verdicts are deterministic across thread counts: `Found` iff some
//! branch has a solution, `Unsolvable` iff every branch exhausts its
//! subtree with no map (no worker ran out of budget or time, and no
//! branch was lost to a panic), `Exhausted`/`TimedOut` otherwise.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use act_topology::{parallel_map_ranges_catch, subdivision_threads, Complex, VertexMap};

use crate::csp::{build, propagate, State, Tables};
use crate::mapsearch::{SearchResult, SearchStats};
use crate::task::Task;

/// Tuning knobs of one map search.
#[derive(Clone, Copy, Debug)]
pub struct SearchConfig {
    /// Node budget shared by all workers (the atomic pool).
    pub max_nodes: usize,
    /// Worker threads the root branches are split across.
    pub threads: usize,
    /// Optional wall-clock deadline for the whole search. When it
    /// expires the engine aborts every worker and returns
    /// [`SearchResult::TimedOut`] (distinct from the node-budget
    /// [`SearchResult::Exhausted`]). `None` (the default) disables the
    /// watchdog; verdicts are then time-independent.
    pub deadline: Option<Duration>,
}

impl SearchConfig {
    /// A config using the environment's thread count
    /// ([`mapsearch_threads`]).
    pub fn new(max_nodes: usize) -> SearchConfig {
        SearchConfig {
            max_nodes,
            threads: mapsearch_threads(),
            deadline: None,
        }
    }

    /// A single-threaded config (the serial engine).
    pub fn serial(max_nodes: usize) -> SearchConfig {
        SearchConfig {
            max_nodes,
            threads: 1,
            deadline: None,
        }
    }

    /// Overrides the thread count.
    pub fn with_threads(mut self, threads: usize) -> SearchConfig {
        self.threads = threads.max(1);
        self
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> SearchConfig {
        self.deadline = Some(deadline);
        self
    }
}

/// The number of worker threads map searches fan out to: the same
/// `RAYON_NUM_THREADS`-honouring count as the subdivision engine
/// (`RAYON_NUM_THREADS=1` forces the serial engine).
pub fn mapsearch_threads() -> usize {
    subdivision_threads()
}

/// Process-global count of parallel map searches that caught a worker
/// panic and entered degraded mode (telemetry; see [`act_obs::Counter`]).
pub static ENGINE_DEGRADED: act_obs::Counter = act_obs::Counter::new("engine.degraded_total");

/// Version stamp of the search engine's *observable semantics*: the
/// verdict vocabulary, the deterministic witness rule (lowest branch
/// index), and the carried-map encoding. Persistent verdict stores key
/// entries by it, so bump it whenever a change could make a previously
/// stored verdict or witness disagree with what the engine would compute
/// today — stale entries then become clean cache misses instead of
/// wrong answers.
///
/// History: 1 = plain MRV branching; 2 = conflict-directed dom/wdeg
/// branching with multi-directional residues (different witnesses for
/// the same solvable instance); 3 = lex-leader symmetry breaking over
/// the task's declared symmetries (only the lex-least witness of each
/// solution orbit survives, so witnesses for symmetric instances moved
/// again).
pub const ENGINE_SCHEMA_VERSION: u32 = 3;

/// Deterministic fault-injection hooks for the parallel engine, used by
/// the chaos suite: arm a root-branch index and the next parallel map
/// search panics when a worker reaches that branch. The hooks only fire
/// on the parallel fan-out (workers and their serial retries), never on
/// the plain serial engine, so a serial baseline run is always clean.
pub mod chaos {
    use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

    const OFF: u8 = 0;
    const ONCE: u8 = 1;
    const ALWAYS: u8 = 2;

    static MODE: AtomicU8 = AtomicU8::new(OFF);
    static BRANCH: AtomicUsize = AtomicUsize::new(usize::MAX);

    /// Arms a one-shot panic: the first worker to reach root branch
    /// `branch` panics, then the hook disarms itself — so the engine's
    /// serial retry of the poisoned chunk succeeds (recovery path).
    pub fn panic_once_on_branch(branch: usize) {
        BRANCH.store(branch, Ordering::SeqCst);
        MODE.store(ONCE, Ordering::SeqCst);
    }

    /// Arms a persistent panic: every attempt at root branch `branch`,
    /// including serial retries, panics until [`disarm`] is called
    /// (degraded path — the branch can never complete).
    pub fn panic_always_on_branch(branch: usize) {
        BRANCH.store(branch, Ordering::SeqCst);
        MODE.store(ALWAYS, Ordering::SeqCst);
    }

    /// Disarms the hook.
    pub fn disarm() {
        MODE.store(OFF, Ordering::SeqCst);
        BRANCH.store(usize::MAX, Ordering::SeqCst);
    }

    /// Called by the parallel engine at the start of every root branch.
    pub(crate) fn maybe_panic(branch: usize) {
        if BRANCH.load(Ordering::SeqCst) != branch {
            return;
        }
        match MODE.load(Ordering::SeqCst) {
            ALWAYS => panic!("chaos: injected worker panic at root branch {branch}"),
            // The compare-exchange guarantees exactly one panic even if
            // several workers race to the armed branch.
            ONCE if MODE
                .compare_exchange(ONCE, OFF, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok() =>
            {
                panic!("chaos: injected worker panic at root branch {branch}");
            }
            _ => {}
        }
    }
}

/// Shared node-budget pool: every node, on every worker, draws one unit.
struct BudgetPool {
    remaining: AtomicUsize,
}

impl BudgetPool {
    fn new(max_nodes: usize) -> BudgetPool {
        BudgetPool {
            remaining: AtomicUsize::new(max_nodes),
        }
    }

    /// Draws one node from the pool; `false` means the budget ran out
    /// (the node is still counted by the caller, mirroring the serial
    /// engine's "the overrunning node is observed" accounting).
    fn charge(&self) -> bool {
        self.remaining
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
            .is_ok()
    }
}

/// The run-wide limits every worker checks at each node: the pooled
/// budget, the shared abort flag, and the wall-clock deadline.
struct Limits<'a> {
    pool: &'a BudgetPool,
    abort: &'a AtomicBool,
    timed_out: &'a AtomicBool,
    deadline: Option<Instant>,
}

impl Limits<'_> {
    /// Charges one node against the deadline and the budget pool,
    /// reporting the overrun kind when either is exceeded.
    fn charge(&self) -> Option<Assign> {
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.timed_out.store(true, Ordering::Relaxed);
                self.abort.store(true, Ordering::Relaxed);
                return Some(Assign::TimedOut);
            }
        }
        if !self.pool.charge() {
            return Some(Assign::Budget);
        }
        None
    }

    /// What an abort observed mid-search means: a deadline expiry
    /// anywhere turns the whole run into a timeout; otherwise some
    /// worker found a witness.
    fn abort_kind(&self) -> Assign {
        if self.timed_out.load(Ordering::Relaxed) {
            Assign::TimedOut
        } else {
            Assign::Aborted
        }
    }
}

/// Outcome of one (sub)search.
enum Assign {
    Found,
    NoMap,
    Budget,
    TimedOut,
    Aborted,
}

/// Picks the unassigned variable minimizing `count / wdeg` — classic
/// conflict-directed dom/wdeg branching. Compared by cross-multiplication
/// (`count[a]·wdeg[b] < count[b]·wdeg[a]`) so no floats are involved;
/// ties break on the lower index, which keeps the pick deterministic and
/// degrades to plain MRV while no conflicts have been seen (all weights
/// equal). `None` means every domain is a singleton.
fn pick_branch_var(tables: &Tables, state: &State) -> Option<usize> {
    (0..tables.vars.len())
        .filter(|&i| state.count[i] > 1)
        .min_by(|&a, &b| {
            let lhs = state.count[a] as u64 * state.wdeg[b];
            let rhs = state.count[b] as u64 * state.wdeg[a];
            lhs.cmp(&rhs).then(a.cmp(&b))
        })
}

/// Recursive dom/wdeg backtracking over the shared tables. Leaves the
/// state fully assigned on [`Assign::Found`].
fn search(tables: &Tables, state: &mut State, stats: &mut SearchStats, limits: &Limits) -> Assign {
    if limits.abort.load(Ordering::Relaxed) {
        return limits.abort_kind();
    }
    let var = match pick_branch_var(tables, state) {
        None => return Assign::Found, // all singletons and GAC-consistent
        Some(v) => v,
    };
    stats.nodes += 1;
    if let Some(overrun) = limits.charge() {
        return overrun;
    }
    for val in state.domain_values(tables, var) {
        let mark = state.trail.len();
        assign(tables, state, var, val);
        if propagate(tables, state, Some(var), stats) {
            match search(tables, state, stats, limits) {
                Assign::Found => return Assign::Found,
                Assign::Budget => return Assign::Budget,
                Assign::TimedOut => return Assign::TimedOut,
                Assign::Aborted => return Assign::Aborted,
                Assign::NoMap => {}
            }
        }
        state.undo_to(tables, mark);
    }
    Assign::NoMap
}

/// Narrows `var` to exactly `val`, trailing every other removal.
fn assign(tables: &Tables, state: &mut State, var: usize, val: u32) {
    for other in state.domain_values(tables, var) {
        if other != val {
            state.remove(tables, var, other);
        }
    }
}

/// Reads the witnessing map out of a fully assigned state.
fn extract_map(tables: &Tables, state: &State) -> VertexMap {
    let mut map = VertexMap::new();
    for (i, &v) in tables.vars.iter().enumerate() {
        let val = state.single_value(tables, i);
        map.set(v, tables.values[i][val as usize]);
    }
    map
}

/// Records a witness under the lowest-branch-index rule, recovering the
/// slot if a panicking worker poisoned the mutex (the data is a plain
/// `Option` the winner fully overwrites, so a poisoned lock is safe to
/// re-enter).
fn record_witness(best: &Mutex<Option<(usize, VertexMap)>>, branch: usize, map: VertexMap) {
    let mut slot = best.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    if slot.as_ref().is_none_or(|(b, _)| branch < *b) {
        *slot = Some((branch, map));
    }
}

/// Shared nogood store of root branch *values* proven `NoMap` by a
/// clean, complete refutation (a root-level wipe-out or an exhausted
/// subtree — never a budget, deadline, or abort cut, which leave the
/// subtree unexplored). A recorded value may be skipped soundly by any
/// later attempt at the same branch: the serial retry of a panicked
/// chunk reuses the branches its worker finished before dying. The set
/// is keyed by value, not branch index, so it stays meaningful across
/// the retry's re-enumeration. Poisoned-lock recovery matches
/// [`record_witness`]: the set only ever grows by completed insertions.
struct NogoodStore {
    refuted: Mutex<HashSet<u32>>,
}

impl NogoodStore {
    fn new() -> NogoodStore {
        NogoodStore {
            refuted: Mutex::new(HashSet::new()),
        }
    }

    fn contains(&self, val: u32) -> bool {
        self.refuted
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .contains(&val)
    }

    fn record(&self, val: u32) {
        self.refuted
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .insert(val);
    }
}

/// Per-worker report for telemetry and verdict aggregation.
struct WorkerReport {
    id: usize,
    stats: SearchStats,
    reason: &'static str,
    budget_ran_out: bool,
}

fn emit_worker_event(report: &WorkerReport) {
    if act_obs::enabled() {
        act_obs::event("mapsearch.worker")
            .u64("worker", report.id as u64)
            .u64("nodes", report.stats.nodes as u64)
            .u64("prunes", report.stats.prunes as u64)
            .u64("wipeouts", report.stats.wipeouts as u64)
            .u64("residue_hits", report.stats.residue_hits as u64)
            .u64("residue_misses", report.stats.residue_misses as u64)
            .u64("nogoods_recorded", report.stats.nogoods_recorded as u64)
            .u64("nogoods_skipped", report.stats.nogoods_skipped as u64)
            .str("reason", report.reason)
            .emit();
    }
}

/// Runs the full search (build → root GAC → serial or parallel
/// backtracking), accumulating telemetry into `stats`.
pub(crate) fn run(
    task: &dyn Task,
    domain: &Complex,
    config: &SearchConfig,
    stats: &mut SearchStats,
) -> SearchResult {
    let threads = config.threads.max(1);
    let started = Instant::now();
    let deadline = config.deadline.map(|d| started + d);
    // The calling thread always does at least the build and root GAC;
    // the parallel path overrides this with the real fan-out width.
    stats.workers = 1;
    let (tables, mut root) = match build(task, domain, threads) {
        Some(b) => b,
        None => return SearchResult::Unsolvable,
    };
    stats.variables = tables.vars.len();
    stats.constraints = tables.facet_constraints;
    stats.symmetry_constraints = tables.constraints.len() - tables.facet_constraints;
    if !propagate(&tables, &mut root, None, stats) {
        return SearchResult::Unsolvable;
    }

    let pool = BudgetPool::new(config.max_nodes);
    let abort = AtomicBool::new(false);
    let timed_out = AtomicBool::new(false);
    let limits = Limits {
        pool: &pool,
        abort: &abort,
        timed_out: &timed_out,
        deadline,
    };

    // The root branching variable: the serial search's first dom/wdeg
    // pick (which at the root, before any conflict, is the MRV pick).
    let split = match pick_branch_var(&tables, &root) {
        None => {
            // GAC alone solved it.
            stats.workers = 1;
            return SearchResult::Found(extract_map(&tables, &root));
        }
        Some(v) => v,
    };

    let branches = root.domain_values(&tables, split);
    let workers = threads.min(branches.len());
    if workers <= 1 {
        // Serial engine: one worker owns the whole tree.
        stats.workers = 1;
        let result = match search(&tables, &mut root, stats, &limits) {
            Assign::Found => SearchResult::Found(extract_map(&tables, &root)),
            Assign::NoMap => SearchResult::Unsolvable,
            Assign::Budget => SearchResult::Exhausted,
            Assign::TimedOut => SearchResult::TimedOut,
            Assign::Aborted => unreachable!("serial search only aborts via the deadline"),
        };
        emit_worker_event(&WorkerReport {
            id: 0,
            stats: *stats,
            reason: result.verdict_name(),
            budget_ran_out: matches!(result, SearchResult::Exhausted),
        });
        emit_deadline_event(&timed_out, started);
        return result;
    }

    // Parallel engine: contiguous branch chunks, one scoped worker each.
    // The winning witness is the one from the lowest branch index that
    // reported Found — a deterministic rule given the reported set.
    let best: Mutex<Option<(usize, VertexMap)>> = Mutex::new(None);
    let nogoods = NogoodStore::new();
    let worker_id = AtomicUsize::new(0);
    let chunk_results = parallel_map_ranges_catch(branches.len(), workers, |range| {
        let id = worker_id.fetch_add(1, Ordering::Relaxed);
        let mut state = root.clone();
        let mut wstats = SearchStats::default();
        let mut reason = "no-map";
        let mut budget_ran_out = false;
        for b in range {
            chaos::maybe_panic(b);
            if abort.load(Ordering::Relaxed) {
                if reason == "no-map" {
                    reason = match limits.abort_kind() {
                        Assign::TimedOut => "timed-out",
                        _ => "aborted",
                    };
                }
                break;
            }
            if nogoods.contains(branches[b]) {
                wstats.nogoods_skipped += 1;
                continue;
            }
            let mark = state.trail.len();
            assign(&tables, &mut state, split, branches[b]);
            let refuted = if propagate(&tables, &mut state, Some(split), &mut wstats) {
                match search(&tables, &mut state, &mut wstats, &limits) {
                    Assign::Found => {
                        let map = extract_map(&tables, &state);
                        record_witness(&best, b, map);
                        abort.store(true, Ordering::Relaxed);
                        reason = "found";
                        break;
                    }
                    Assign::Budget => {
                        reason = "exhausted";
                        budget_ran_out = true;
                        break;
                    }
                    Assign::TimedOut => {
                        reason = "timed-out";
                        break;
                    }
                    Assign::Aborted => {
                        reason = "aborted";
                        break;
                    }
                    Assign::NoMap => true,
                }
            } else {
                // A root-level wipe-out refutes the branch outright.
                true
            };
            if refuted {
                nogoods.record(branches[b]);
                wstats.nogoods_recorded += 1;
            }
            state.undo_to(&tables, mark);
        }
        let report = WorkerReport {
            id,
            stats: wstats,
            reason,
            budget_ran_out,
        };
        emit_worker_event(&report);
        report
    });

    // Aggregate the chunks; a panicked chunk is retried serially here on
    // the calling thread, branch by branch, each retry contained by its
    // own catch_unwind (a fresh state clone per branch keeps a mid-search
    // panic from corrupting the next branch's domains).
    let mut reports: Vec<WorkerReport> = Vec::with_capacity(chunk_results.len());
    let mut lost_branches = 0usize;
    for (range, chunk) in chunk_results {
        match chunk {
            Ok(report) => reports.push(report),
            Err(message) => {
                stats.caught_panics += 1;
                ENGINE_DEGRADED.add(1);
                if act_obs::enabled() {
                    act_obs::event("engine.degraded")
                        .u64("chunk_start", range.start as u64)
                        .u64("chunk_end", range.end as u64)
                        .str("error", &message)
                        .emit();
                }
                let id = worker_id.fetch_add(1, Ordering::Relaxed);
                let mut wstats = SearchStats::default();
                let mut reason = "no-map";
                let mut budget_ran_out = false;
                for b in range {
                    if abort.load(Ordering::Relaxed) {
                        if reason == "no-map" {
                            reason = match limits.abort_kind() {
                                Assign::TimedOut => "timed-out",
                                _ => "aborted",
                            };
                        }
                        break;
                    }
                    // The panicked worker may have cleanly refuted this
                    // branch before dying — its nogood spares the retry.
                    if nogoods.contains(branches[b]) {
                        wstats.nogoods_skipped += 1;
                        continue;
                    }
                    let attempt = catch_unwind(AssertUnwindSafe(|| {
                        chaos::maybe_panic(b);
                        let mut state = root.clone();
                        let mut bstats = SearchStats::default();
                        assign(&tables, &mut state, split, branches[b]);
                        let outcome = if propagate(&tables, &mut state, Some(split), &mut bstats) {
                            search(&tables, &mut state, &mut bstats, &limits)
                        } else {
                            Assign::NoMap
                        };
                        let map = match outcome {
                            Assign::Found => Some(extract_map(&tables, &state)),
                            _ => None,
                        };
                        (outcome, map, bstats)
                    }));
                    match attempt {
                        Err(_) => {
                            // The branch cannot complete even serially:
                            // its subtree was never exhausted, so the
                            // run is degraded.
                            lost_branches += 1;
                        }
                        Ok((outcome, map, bstats)) => {
                            wstats.absorb(&bstats);
                            if matches!(outcome, Assign::NoMap) {
                                nogoods.record(branches[b]);
                                wstats.nogoods_recorded += 1;
                            }
                            match outcome {
                                Assign::Found => {
                                    if let Some(map) = map {
                                        record_witness(&best, b, map);
                                    }
                                    abort.store(true, Ordering::Relaxed);
                                    reason = "found";
                                    break;
                                }
                                Assign::Budget => {
                                    reason = "exhausted";
                                    budget_ran_out = true;
                                    break;
                                }
                                Assign::TimedOut => {
                                    reason = "timed-out";
                                    break;
                                }
                                Assign::Aborted => {
                                    reason = "aborted";
                                    break;
                                }
                                Assign::NoMap => {}
                            }
                        }
                    }
                }
                let report = WorkerReport {
                    id,
                    stats: wstats,
                    reason,
                    budget_ran_out,
                };
                emit_worker_event(&report);
                reports.push(report);
            }
        }
    }

    stats.workers = reports.len();
    stats.degraded = lost_branches > 0;
    let mut any_exhausted = false;
    for r in &reports {
        stats.absorb(&r.stats);
        any_exhausted |= r.budget_ran_out;
    }
    emit_deadline_event(&timed_out, started);
    let witness = best
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    if let Some((_, map)) = witness {
        SearchResult::Found(map)
    } else if timed_out.load(Ordering::Relaxed) {
        SearchResult::TimedOut
    } else if any_exhausted || lost_branches > 0 {
        // No worker aborted without cause (abort is only ever set by a
        // Found or a deadline), so a missing witness with complete
        // branches means exhaustive unsolvability — but a degraded run
        // lost a subtree and must not claim it.
        SearchResult::Exhausted
    } else {
        SearchResult::Unsolvable
    }
}

/// Emits the `engine.deadline` event when the watchdog fired.
fn emit_deadline_event(timed_out: &AtomicBool, started: Instant) {
    if timed_out.load(Ordering::Relaxed) && act_obs::enabled() {
        act_obs::event("engine.deadline")
            .u64("elapsed_us", started.elapsed().as_micros() as u64)
            .emit();
    }
}
