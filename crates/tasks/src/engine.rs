//! The map-search engine: trail-backtracking MRV search over the bitset
//! CSP of [`crate::csp`], run serially or fanned out over scoped worker
//! threads that split the root variable's candidate values.
//!
//! # Parallel protocol
//!
//! After the root GAC fixpoint, the engine picks the same
//! smallest-domain variable the serial search would branch on first and
//! partitions its values into contiguous chunks, one per worker
//! (reusing [`act_topology::parallel_map_ranges`], the subdivision
//! engine's deterministic fork/join). Each worker clones the mutable
//! CSP state once, searches its branches in value order, and:
//!
//! * checks a shared `AtomicBool` *found/abort* flag at every node,
//!   stopping early once any worker has a witness;
//! * draws every node from a shared atomic *budget pool* of
//!   `max_nodes`, so the whole parallel search is bounded exactly like
//!   the serial one;
//! * on success, records `(branch index, witness)` in a shared slot
//!   that keeps the **lowest branch index** — the deterministic rule
//!   for which worker's witness is returned.
//!
//! Verdicts are deterministic across thread counts: `Found` iff some
//! branch has a solution, `Unsolvable` iff every branch exhausts its
//! subtree with no map (no worker ran out of budget), `Exhausted`
//! otherwise.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use act_topology::{parallel_map_ranges, subdivision_threads, Complex, VertexMap};

use crate::csp::{build, propagate, State, Tables};
use crate::mapsearch::{SearchResult, SearchStats};
use crate::task::Task;

/// Tuning knobs of one map search.
#[derive(Clone, Copy, Debug)]
pub struct SearchConfig {
    /// Node budget shared by all workers (the atomic pool).
    pub max_nodes: usize,
    /// Worker threads the root branches are split across.
    pub threads: usize,
}

impl SearchConfig {
    /// A config using the environment's thread count
    /// ([`mapsearch_threads`]).
    pub fn new(max_nodes: usize) -> SearchConfig {
        SearchConfig {
            max_nodes,
            threads: mapsearch_threads(),
        }
    }

    /// A single-threaded config (the serial engine).
    pub fn serial(max_nodes: usize) -> SearchConfig {
        SearchConfig {
            max_nodes,
            threads: 1,
        }
    }

    /// Overrides the thread count.
    pub fn with_threads(mut self, threads: usize) -> SearchConfig {
        self.threads = threads.max(1);
        self
    }
}

/// The number of worker threads map searches fan out to: the same
/// `RAYON_NUM_THREADS`-honouring count as the subdivision engine
/// (`RAYON_NUM_THREADS=1` forces the serial engine).
pub fn mapsearch_threads() -> usize {
    subdivision_threads()
}

/// Shared node-budget pool: every node, on every worker, draws one unit.
struct BudgetPool {
    remaining: AtomicUsize,
}

impl BudgetPool {
    fn new(max_nodes: usize) -> BudgetPool {
        BudgetPool {
            remaining: AtomicUsize::new(max_nodes),
        }
    }

    /// Draws one node from the pool; `false` means the budget ran out
    /// (the node is still counted by the caller, mirroring the serial
    /// engine's "the overrunning node is observed" accounting).
    fn charge(&self) -> bool {
        self.remaining
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
            .is_ok()
    }
}

/// Outcome of one (sub)search.
enum Assign {
    Found,
    NoMap,
    Budget,
    Aborted,
}

/// Recursive MRV backtracking over the shared tables. Leaves the state
/// fully assigned on [`Assign::Found`].
fn search(
    tables: &Tables,
    state: &mut State,
    stats: &mut SearchStats,
    pool: &BudgetPool,
    abort: &AtomicBool,
) -> Assign {
    if abort.load(Ordering::Relaxed) {
        return Assign::Aborted;
    }
    // Pick the unassigned variable with the smallest domain > 1.
    let var = (0..tables.vars.len())
        .filter(|&i| state.count[i] > 1)
        .min_by_key(|&i| state.count[i]);
    let var = match var {
        None => return Assign::Found, // all singletons and GAC-consistent
        Some(v) => v,
    };
    stats.nodes += 1;
    if !pool.charge() {
        return Assign::Budget;
    }
    for val in state.domain_values(tables, var) {
        let mark = state.trail.len();
        assign(tables, state, var, val);
        if propagate(tables, state, Some(var), stats) {
            match search(tables, state, stats, pool, abort) {
                Assign::Found => return Assign::Found,
                Assign::Budget => return Assign::Budget,
                Assign::Aborted => return Assign::Aborted,
                Assign::NoMap => {}
            }
        }
        state.undo_to(tables, mark);
    }
    Assign::NoMap
}

/// Narrows `var` to exactly `val`, trailing every other removal.
fn assign(tables: &Tables, state: &mut State, var: usize, val: u32) {
    for other in state.domain_values(tables, var) {
        if other != val {
            state.remove(tables, var, other);
        }
    }
}

/// Reads the witnessing map out of a fully assigned state.
fn extract_map(tables: &Tables, state: &State) -> VertexMap {
    let mut map = VertexMap::new();
    for (i, &v) in tables.vars.iter().enumerate() {
        let val = state.single_value(tables, i);
        map.set(v, tables.values[i][val as usize]);
    }
    map
}

/// Per-worker report for telemetry and verdict aggregation.
struct WorkerReport {
    id: usize,
    stats: SearchStats,
    reason: &'static str,
    budget_ran_out: bool,
}

fn emit_worker_event(report: &WorkerReport) {
    if act_obs::enabled() {
        act_obs::event("mapsearch.worker")
            .u64("worker", report.id as u64)
            .u64("nodes", report.stats.nodes as u64)
            .u64("prunes", report.stats.prunes as u64)
            .u64("wipeouts", report.stats.wipeouts as u64)
            .u64("residue_hits", report.stats.residue_hits as u64)
            .u64("residue_misses", report.stats.residue_misses as u64)
            .str("reason", report.reason)
            .emit();
    }
}

/// Runs the full search (build → root GAC → serial or parallel
/// backtracking), accumulating telemetry into `stats`.
pub(crate) fn run(
    task: &dyn Task,
    domain: &Complex,
    config: &SearchConfig,
    stats: &mut SearchStats,
) -> SearchResult {
    let threads = config.threads.max(1);
    // The calling thread always does at least the build and root GAC;
    // the parallel path overrides this with the real fan-out width.
    stats.workers = 1;
    let (tables, mut root) = match build(task, domain, threads) {
        Some(b) => b,
        None => return SearchResult::Unsolvable,
    };
    stats.variables = tables.vars.len();
    stats.constraints = tables.constraints.len();
    if !propagate(&tables, &mut root, None, stats) {
        return SearchResult::Unsolvable;
    }

    let pool = BudgetPool::new(config.max_nodes);
    let abort = AtomicBool::new(false);

    // The root branching variable: the serial search's first MRV pick.
    let split = (0..tables.vars.len())
        .filter(|&i| root.count[i] > 1)
        .min_by_key(|&i| root.count[i]);
    let split = match split {
        None => {
            // GAC alone solved it.
            stats.workers = 1;
            return SearchResult::Found(extract_map(&tables, &root));
        }
        Some(v) => v,
    };

    let branches = root.domain_values(&tables, split);
    let workers = threads.min(branches.len());
    if workers <= 1 {
        // Serial engine: one worker owns the whole tree.
        stats.workers = 1;
        let result = match search(&tables, &mut root, stats, &pool, &abort) {
            Assign::Found => SearchResult::Found(extract_map(&tables, &root)),
            Assign::NoMap => SearchResult::Unsolvable,
            Assign::Budget => SearchResult::Exhausted,
            Assign::Aborted => unreachable!("serial search never aborts"),
        };
        emit_worker_event(&WorkerReport {
            id: 0,
            stats: *stats,
            reason: result.verdict_name(),
            budget_ran_out: matches!(result, SearchResult::Exhausted),
        });
        return result;
    }

    // Parallel engine: contiguous branch chunks, one scoped worker each.
    // The winning witness is the one from the lowest branch index that
    // reported Found — a deterministic rule given the reported set.
    let best: Mutex<Option<(usize, VertexMap)>> = Mutex::new(None);
    let worker_id = AtomicUsize::new(0);
    let reports: Vec<WorkerReport> = parallel_map_ranges(branches.len(), workers, |range| {
        let id = worker_id.fetch_add(1, Ordering::Relaxed);
        let mut state = root.clone();
        let mut wstats = SearchStats::default();
        let mut reason = "no-map";
        let mut budget_ran_out = false;
        for b in range {
            if abort.load(Ordering::Relaxed) {
                if reason == "no-map" {
                    reason = "aborted";
                }
                break;
            }
            let mark = state.trail.len();
            assign(&tables, &mut state, split, branches[b]);
            if propagate(&tables, &mut state, Some(split), &mut wstats) {
                match search(&tables, &mut state, &mut wstats, &pool, &abort) {
                    Assign::Found => {
                        let map = extract_map(&tables, &state);
                        let mut slot = best.lock().expect("witness slot poisoned");
                        if slot.as_ref().is_none_or(|(bb, _)| b < *bb) {
                            *slot = Some((b, map));
                        }
                        abort.store(true, Ordering::Relaxed);
                        reason = "found";
                        break;
                    }
                    Assign::Budget => {
                        reason = "exhausted";
                        budget_ran_out = true;
                        break;
                    }
                    Assign::Aborted => {
                        reason = "aborted";
                        break;
                    }
                    Assign::NoMap => {}
                }
            }
            state.undo_to(&tables, mark);
        }
        let report = WorkerReport {
            id,
            stats: wstats,
            reason,
            budget_ran_out,
        };
        emit_worker_event(&report);
        report
    });

    stats.workers = reports.len();
    let mut any_exhausted = false;
    for r in &reports {
        stats.nodes += r.stats.nodes;
        stats.prunes += r.stats.prunes;
        stats.wipeouts += r.stats.wipeouts;
        stats.residue_hits += r.stats.residue_hits;
        stats.residue_misses += r.stats.residue_misses;
        any_exhausted |= r.budget_ran_out;
    }
    if let Some((_, map)) = best.into_inner().expect("witness slot poisoned") {
        SearchResult::Found(map)
    } else if any_exhausted {
        SearchResult::Exhausted
    } else {
        // No witness and no worker aborted (abort is only ever set by a
        // Found), so every branch was exhausted exactly.
        SearchResult::Unsolvable
    }
}
