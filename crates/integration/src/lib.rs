//! Integration-test shell crate; the tests live in the repository-root `tests/` directory.
